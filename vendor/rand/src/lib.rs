//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses — seedable
//! `StdRng`, `Rng::gen_range` over integer and float ranges, `gen_bool`,
//! `gen` — on top of the splitmix64/xoshiro256** generators. The stream
//! differs from upstream `StdRng` (which is ChaCha12), but every consumer in
//! this workspace only relies on determinism for a fixed seed, not on a
//! specific stream.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Mirrors `rand::SeedableRng` for the subset the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed, as recommended by the xoshiro
        // authors for state initialisation.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256 { s }
    }
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of the generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Values `Rng::gen` can produce, mirroring the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Mirrors `rand::Rng` for the subset the workspace uses.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Mirrors `rand::rngs`.
pub mod rngs {
    /// The standard generator. Upstream this is ChaCha12; the stand-in uses
    /// xoshiro256**, which is equally deterministic for a fixed seed.
    pub type StdRng = super::Xoshiro256;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
