//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in an environment without access to crates.io, so the
//! real `serde`/`serde_derive` cannot be fetched. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations — no
//! code path actually serialises anything yet — so the derives expand to
//! nothing. Swapping the `[workspace.dependencies]` entries back to the
//! registry crates restores full serde behaviour without touching any source
//! file.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
