//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Nothing in the
//! workspace performs actual serialisation yet; when it does, point the
//! `[workspace.dependencies]` entry back at the registry crate.

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirrors `serde::de` far enough for common `use serde::de::DeserializeOwned`
/// imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirrors `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
