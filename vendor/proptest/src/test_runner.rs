//! Test-runner configuration and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Mirrors `proptest::test_runner::Config` (re-exported from the prelude as
/// `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A failed test case, carried through `prop_assert!` early returns.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator for case number `case`.
///
/// Fixed seeds keep the suite reproducible in CI; distinct per-case seeds
/// still explore `cases` different inputs per property.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xC0FF_EE00_u64 ^ (u64::from(case) << 1))
}

/// Identity helper pinning a case-runner closure's argument type to the
/// strategy's `Value`, so the `proptest!` macro's closure type-checks
/// against the concrete generated-tuple type (plain `|values: &_|` closures
/// leave the argument as an unconstrained inference variable inside generic
/// property bodies).
pub fn case_runner<S, F>(_strategy: &S, f: F) -> F
where
    S: crate::strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// Greedily shrinks a failing input to a minimal failing input.
///
/// Starting from `initial` (which must fail), repeatedly asks the strategy
/// for simpler candidates ([`crate::strategy::Strategy::simplify`]) and
/// adopts the first candidate that still fails, until no proposed candidate
/// fails or `budget` re-runs are exhausted. Used by the `proptest!` macro;
/// exposed so the shrinking loop itself is unit-testable.
pub fn shrink<S, F>(strategy: &S, initial: S::Value, mut fails: F, budget: usize) -> S::Value
where
    S: crate::strategy::Strategy,
    F: FnMut(&S::Value) -> bool,
{
    let mut best = initial;
    let mut remaining = budget;
    loop {
        let mut improved = false;
        for candidate in strategy.simplify(&best) {
            if remaining == 0 {
                return best;
            }
            remaining -= 1;
            if fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}
