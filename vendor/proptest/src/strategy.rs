//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat_map: f }
    }

    /// Keeps only values satisfying `predicate`, retrying a bounded number of
    /// times before panicking (the stand-in has no global rejection budget).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, predicate }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.flat_map)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive inputs: {}", self.whence)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_combinators_stay_in_bounds() {
        let mut rng = case_rng(0);
        let strat = (1u32..=8, 2u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((3..=12).contains(&v));
        }
    }

    #[test]
    fn flat_map_feeds_the_inner_strategy() {
        let mut rng = case_rng(1);
        let strat = (1u32..10).prop_flat_map(|lo| (Just(lo), lo..10).prop_map(|(lo, hi)| (lo, hi)));
        for _ in 0..200 {
            let (lo, hi) = strat.new_value(&mut rng);
            assert!(lo <= hi && hi < 10);
        }
    }

    #[test]
    fn filter_rejects_until_satisfied() {
        let mut rng = case_rng(2);
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut rng) % 2, 0);
        }
    }
}
