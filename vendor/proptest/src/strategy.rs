//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy`.
///
/// Shrinking is supported through [`Strategy::simplify`]: given a failing
/// value, a strategy proposes a bounded set of strictly simpler candidates
/// (integers move toward the lower bound, vectors drop or simplify
/// elements). The `proptest!` macro greedily re-runs the failing property on
/// the candidates until no simpler failing input exists, so failures are
/// reported minimal. Combinators that cannot invert their mapping
/// (`prop_map`, `prop_flat_map`) simply propose nothing.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly simpler variants of a generated value, simplest
    /// first. The default proposes nothing (no shrinking).
    fn simplify(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat_map: f }
    }

    /// Keeps only values satisfying `predicate`, retrying a bounded number of
    /// times before panicking (the stand-in has no global rejection budget).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, predicate }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.flat_map)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive inputs: {}", self.whence)
    }

    fn simplify(&self, value: &S::Value) -> Vec<S::Value> {
        // Simplify through the source, keeping only admissible values.
        self.source.simplify(value).into_iter().filter(|v| (self.predicate)(v)).collect()
    }
}

/// Integer shrink candidates toward `lo`: the bound itself, then the
/// midpoint, then the predecessor — enough for the greedy loop to converge
/// to the minimal failing value in O(log range) adopted steps.
fn shrink_toward<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + std::ops::Add<Output = T>
        + std::ops::Sub<Output = T>
        + std::ops::Div<Output = T>
        + From<u8>,
{
    let mut out = Vec::new();
    if value <= lo {
        return out;
    }
    out.push(lo);
    let one = T::from(1u8);
    let two = T::from(2u8);
    let mid = lo + (value - lo) / two;
    if mid > lo && mid < value {
        out.push(mid);
    }
    let pred = value - one;
    if pred > lo && !out.contains(&pred) {
        out.push(pred);
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn simplify(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn simplify(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }

            fn simplify(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.simplify(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_combinators_stay_in_bounds() {
        let mut rng = case_rng(0);
        let strat = (1u32..=8, 2u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((3..=12).contains(&v));
        }
    }

    #[test]
    fn flat_map_feeds_the_inner_strategy() {
        let mut rng = case_rng(1);
        let strat = (1u32..10).prop_flat_map(|lo| (Just(lo), lo..10).prop_map(|(lo, hi)| (lo, hi)));
        for _ in 0..200 {
            let (lo, hi) = strat.new_value(&mut rng);
            assert!(lo <= hi && hi < 10);
        }
    }

    #[test]
    fn filter_rejects_until_satisfied() {
        let mut rng = case_rng(2);
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn range_simplify_proposes_bound_midpoint_and_predecessor() {
        assert_eq!((0u32..100).simplify(&80), vec![0, 40, 79]);
        assert_eq!((10u32..=100).simplify(&12), vec![10, 11]);
        assert_eq!((0u32..100).simplify(&0), Vec::<u32>::new());
        assert_eq!((0u32..100).simplify(&1), vec![0]);
        assert_eq!((-8i32..8).simplify(&4), vec![-8, -2, 3]);
    }

    #[test]
    fn shrink_finds_the_minimal_failing_integer() {
        // Fails iff v >= 5: the minimal failing input is exactly 5.
        let minimal = crate::test_runner::shrink(&(0u32..1000), 871, |v| *v >= 5, 1000);
        assert_eq!(minimal, 5);
        // A failure at the lower bound shrinks to the bound itself.
        let minimal = crate::test_runner::shrink(&(3u32..1000), 700, |_| true, 1000);
        assert_eq!(minimal, 3);
    }

    #[test]
    fn tuples_shrink_component_wise() {
        let strat = (0u32..100, 0u32..100);
        // Fails iff the first component is >= 5 — the second is noise and
        // shrinks to its lower bound.
        let minimal = crate::test_runner::shrink(&strat, (83, 64), |&(a, _)| a >= 5, 2000);
        assert_eq!(minimal, (5, 0));
    }

    #[test]
    fn filter_simplify_respects_the_predicate() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        assert!(strat.simplify(&80).iter().all(|v| v % 2 == 0));
        // Greedy bound/midpoint descent through the parity filter lands on
        // 10 (the odd predecessor candidates are rejected): still a small,
        // admissible failing value.
        let minimal = crate::test_runner::shrink(&strat, 80, |v| *v >= 7, 1000);
        assert_eq!(minimal, 10);
        assert!(minimal % 2 == 0 && minimal >= 7);
    }

    #[test]
    fn map_does_not_shrink() {
        let strat = (0u32..100).prop_map(|v| v + 1);
        assert!(strat.simplify(&50).is_empty());
    }
}
