//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }

    fn simplify(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop to the minimum length, halve, then
        // remove single elements (front to back).
        if value.len() > self.size.min {
            out.push(value[..self.size.min].to_vec());
            let half = (value.len() / 2).max(self.size.min);
            if half < value.len() && half > self.size.min {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks keep the shape and simplify one slot.
        for (i, elem) in value.iter().enumerate() {
            for candidate in self.element.simplify(elem) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = case_rng(3);
        let fixed = vec(0u32..5, 6);
        assert_eq!(fixed.new_value(&mut rng).len(), 6);
        let ranged = vec(0u32..5, 2..5);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_simplify_never_goes_below_the_minimum_length() {
        let strat = vec(0u32..10, 2..=4);
        for cand in strat.simplify(&alloc(&[5, 7, 9])) {
            assert!(cand.len() >= 2, "{cand:?}");
        }
        // Fixed-length vectors only shrink element-wise.
        let fixed = vec(0u32..10, 3);
        assert!(fixed.simplify(&alloc(&[5, 7, 9])).iter().all(|c| c.len() == 3));
    }

    #[test]
    fn shrink_minimises_length_then_elements() {
        let strat = vec(0u32..100, 0..10);
        // Fails iff the vector has >= 3 elements: minimal case is three
        // zeros (length cannot drop further, elements shrink to the bound).
        let minimal = crate::test_runner::shrink(
            &strat,
            alloc(&[40, 2, 99, 7, 13, 25]),
            |v| v.len() >= 3,
            5000,
        );
        assert_eq!(minimal, alloc(&[0, 0, 0]));
        // Fails iff any element is >= 10: one minimal offending element
        // survives.
        let minimal = crate::test_runner::shrink(
            &strat,
            alloc(&[40, 2, 99]),
            |v| v.iter().any(|&x| x >= 10),
            5000,
        );
        assert_eq!(minimal, alloc(&[10]));
    }

    fn alloc(v: &[u32]) -> Vec<u32> {
        v.to_vec()
    }
}
