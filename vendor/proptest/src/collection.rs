//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = case_rng(3);
        let fixed = vec(0u32..5, 6);
        assert_eq!(fixed.new_value(&mut rng).len(), 6);
        let ranged = vec(0u32..5, 2..5);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
