//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Strategy generating any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
