//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by the workspace's property
//! suites: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! strategies for integer ranges, tuples, [`strategy::Just`], `any`,
//! [`collection::vec`] and [`option::of`], plus the `proptest!` /
//! `prop_assert*!` macros. Inputs are drawn from a deterministic per-case
//! generator, so failures are reproducible run to run; the stand-in does not
//! shrink counterexamples (it reports the failing input as generated).

#![deny(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs every test case of a `proptest!` block.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// (In a test module each function carries `#[test]` as usual; the attribute
/// is omitted here only so the doctest can call the generated function.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)*);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(case);
                    let values = $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let ($($arg,)*) = values.clone();
                    let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {case}/{total} failed: {e}\n    input: {values:?}",
                            case = case,
                            total = config.cases,
                            e = e,
                            values = values
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Fails the current test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Skips the current test case when the assumption does not hold.
///
/// The stand-in treats a failed assumption as a silently passing case (the
/// real proptest resamples; without shrinking the difference is only in the
/// effective case count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
