//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by the workspace's property
//! suites: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! strategies for integer ranges, tuples, [`strategy::Just`], `any`,
//! [`collection::vec`] and [`option::of`], plus the `proptest!` /
//! `prop_assert*!` macros. Inputs are drawn from a deterministic per-case
//! generator, so failures are reproducible run to run.
//!
//! Failing cases are **shrunk** before being reported: integer inputs move
//! toward their range's lower bound and vectors drop/simplify elements
//! (greedy first-failing-candidate descent, see
//! [`test_runner::shrink`]), so the panic message carries a minimal failing
//! input next to the originally generated one. Combinators that cannot
//! invert their mapping (`prop_map`, `prop_flat_map`) do not shrink.

#![deny(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs every test case of a `proptest!` block.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// (In a test module each function carries `#[test]` as usual; the attribute
/// is omitted here only so the doctest can call the generated function.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)*);
                let run_case = $crate::test_runner::case_runner(&strategies, |values| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(values);
                    $body
                    ::std::result::Result::Ok(())
                });
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(case);
                    let values = $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    if let ::std::result::Result::Err(e) = run_case(&values) {
                        // Shrink to a minimal failing input before reporting.
                        let minimal = $crate::test_runner::shrink(
                            &strategies,
                            values.clone(),
                            |candidate| run_case(candidate).is_err(),
                            1000,
                        );
                        let minimal_err = run_case(&minimal)
                            .err()
                            .unwrap_or_else(|| $crate::test_runner::TestCaseError::fail(e.to_string()));
                        panic!(
                            "proptest case {case}/{total} failed: {e}\n    minimal input: {minimal:?}\n    as generated: {values:?}",
                            case = case,
                            total = config.cases,
                            e = minimal_err,
                            minimal = minimal,
                            values = values
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Fails the current test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Skips the current test case when the assumption does not hold.
///
/// The stand-in treats a failed assumption as a silently passing case (the
/// real proptest resamples; the difference is only in the effective case
/// count). During shrinking this also means candidates violating the
/// assumption read as passing and are never adopted.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod shrink_reporting_tests {
    /// The macro must report the shrunk counterexample, not just the
    /// generated one.
    #[test]
    fn failing_properties_report_a_minimal_input() {
        crate::proptest! {
            #![proptest_config(crate::test_runner::Config::with_cases(8))]
            fn fails_at_five_and_up(v in 0u32..1000) {
                crate::prop_assert!(v < 5, "v = {} reached 5", v);
            }
        }
        let panic =
            std::panic::catch_unwind(fails_at_five_and_up).expect_err("the property must fail");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| panic.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            message.contains("minimal input: (5,)"),
            "shrinking must reach the minimal counterexample 5: {message}"
        );
        assert!(message.contains("as generated:"), "{message}");
    }
}
