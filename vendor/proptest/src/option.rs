//! `Option` strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Match proptest's default: Some three times out of four, so the
        // interesting branch dominates.
        if rng.gen_bool(0.75) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }

    fn simplify(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match value {
            None => Vec::new(),
            Some(v) => {
                std::iter::once(None).chain(self.inner.simplify(v).into_iter().map(Some)).collect()
            }
        }
    }
}

/// Strategy yielding `None` or `Some(value)` with `value` from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
