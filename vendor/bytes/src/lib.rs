//! Offline stand-in for `bytes`.
//!
//! `Bytes`/`BytesMut`/`BufMut` backed by a plain `Vec<u8>` — no refcounted
//! sharing, no split/advance machinery, just the buffer-building subset the
//! bitstream container uses.

#![deny(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer, mirroring `bytes::Bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the buffer into its backing vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Buffer-writing trait, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u32_le(1);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(&frozen[..4], &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(&frozen[4..], &1u32.to_le_bytes());
    }

    #[test]
    fn bytes_from_vec_and_back() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
    }
}
