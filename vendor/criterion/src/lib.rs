//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling and running without the registry crate:
//! each `bench_function` runs its routine for a handful of timed iterations
//! and prints a single mean-time line. There is no statistical analysis, no
//! warm-up scheduling and no HTML report — this is a smoke-and-ballpark
//! harness until the real criterion can be vendored in full.

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark. Small on purpose: the SDR instances take
/// seconds per solve and the stand-in optimises for "runs everywhere"
/// over statistical power.
const ITERATIONS: u32 = 3;

/// Mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; the stand-in has no
    /// command-line options.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), f);
        self
    }
}

/// Mirrors `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in always runs
    /// [`ITERATIONS`] iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, mut f: F) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    f(&mut bencher);
    let label = if group.is_empty() { id.0.clone() } else { format!("{group}/{}", id.0) };
    if bencher.iterations == 0 {
        println!("bench {label:<50} (routine never called)");
    } else {
        let mean = bencher.elapsed / bencher.iterations;
        println!("bench {label:<50} mean {mean:>12.3?} ({} iters)", bencher.iterations);
    }
}

/// Mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over the stand-in's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Mirrors `criterion::BatchSize`; ignored by the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Mirrors `criterion_group!`: bundles bench functions into one group
/// function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`: runs the given groups from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, ITERATIONS);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, ITERATIONS);
    }
}
