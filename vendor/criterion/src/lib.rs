//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling and running without the registry crate:
//! each `bench_function` times its routine over a configurable number of
//! samples and prints mean / p50 / p95. [`sample_size`] is honoured, every
//! per-iteration duration is kept, and the summary statistics are exposed
//! through [`summarize`] / [`SampleStats`] so bench binaries can write
//! machine-readable artefacts from the same numbers. There is still no
//! warm-up scheduling, outlier classification or HTML report — this is a
//! statistics-bearing smoke harness until the real criterion can be
//! vendored in full.
//!
//! [`sample_size`]: BenchmarkGroup::sample_size

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark unless overridden with
/// [`BenchmarkGroup::sample_size`]. Small on purpose: the SDR instances take
/// seconds per solve and the stand-in optimises for "runs everywhere" over
/// statistical power.
const DEFAULT_SAMPLE_SIZE: u32 = 3;

/// Summary statistics over one benchmark's per-iteration samples.
///
/// Percentiles use the nearest-rank definition on the sorted samples, so
/// `p50`/`p95` are always durations that actually occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of samples.
    pub n: usize,
    /// Sum of all samples.
    pub total: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest rank).
    pub p50: Duration,
    /// 95th percentile (nearest rank).
    pub p95: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl SampleStats {
    /// The all-zero statistics of an empty sample set.
    pub fn empty() -> SampleStats {
        SampleStats {
            n: 0,
            total: Duration::ZERO,
            mean: Duration::ZERO,
            p50: Duration::ZERO,
            p95: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        }
    }
}

/// Computes [`SampleStats`] over a sample set (all-zero when empty).
pub fn summarize(samples: &[Duration]) -> SampleStats {
    if samples.is_empty() {
        return SampleStats::empty();
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    // Nearest-rank percentile: the smallest sample with at least p% of the
    // set at or below it.
    let pct = |p: u32| {
        let rank = (p as usize * sorted.len()).div_ceil(100);
        sorted[rank.max(1) - 1]
    };
    SampleStats {
        n: sorted.len(),
        total,
        mean: total / sorted.len() as u32,
        p50: pct(50),
        p95: pct(95),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
    }
}

/// Summary statistics over dimensionless integer samples (frame counts,
/// latencies in frames, queue depths — anything that is not a wall-clock
/// duration). The integer twin of [`SampleStats`], with the same
/// nearest-rank percentile definition, used by the sweep harness to keep
/// its aggregates exactly representable (and therefore byte-stable in
/// reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountStats {
    /// Number of samples.
    pub n: usize,
    /// Sum of all samples.
    pub total: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl CountStats {
    /// The all-zero statistics of an empty sample set.
    pub fn empty() -> CountStats {
        CountStats { n: 0, total: 0, p50: 0, p95: 0, min: 0, max: 0 }
    }

    /// Arithmetic mean as a float (the one derived quantity that is not an
    /// integer; total/n is exact, so callers that need byte-stable output
    /// can render `total` and `n` instead).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total as f64 / self.n as f64
        }
    }
}

/// Computes [`CountStats`] over integer samples (all-zero when empty).
pub fn summarize_counts(samples: &[u64]) -> CountStats {
    if samples.is_empty() {
        return CountStats::empty();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pct = |p: u32| {
        let rank = (p as usize * sorted.len()).div_ceil(100);
        sorted[rank.max(1) - 1]
    };
    CountStats {
        n: sorted.len(),
        total: sorted.iter().sum(),
        p50: pct(50),
        p95: pct(95),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
    }
}

/// Mirrors `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; the stand-in has no
    /// command-line options.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Sets the default sample count for benchmarks run on this criterion.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = (n.max(1)).min(u32::MAX as usize) as u32;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), self.sample_size, f);
        self
    }
}

/// Mirrors `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n.max(1)).min(u32::MAX as usize) as u32;
        self
    }

    /// Accepted for API compatibility; the stand-in runs a fixed sample
    /// count instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, sample_size: u32, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), target: sample_size };
    f(&mut bencher);
    let label = if group.is_empty() { id.0.clone() } else { format!("{group}/{}", id.0) };
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (routine never called)");
    } else {
        let s = summarize(&bencher.samples);
        println!(
            "bench {label:<50} mean {:>11.3?}  p50 {:>11.3?}  p95 {:>11.3?} ({} samples)",
            s.mean, s.p50, s.p95, s.n
        );
    }
}

/// Mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: u32,
}

impl Bencher {
    /// Times `routine` once per configured sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// The per-iteration samples collected so far.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// Mirrors `criterion::BatchSize`; ignored by the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Mirrors `criterion_group!`: bundles bench functions into one group
/// function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`: runs the given groups from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_honours_the_sample_size() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 10);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, DEFAULT_SAMPLE_SIZE);
    }

    #[test]
    fn summarize_uses_nearest_rank_percentiles() {
        let ms = Duration::from_millis;
        // 1..=20 ms: p50 is the 10th sample (10ms), p95 the 19th (19ms).
        let samples: Vec<Duration> = (1..=20).map(ms).collect();
        let s = summarize(&samples);
        assert_eq!(s.n, 20);
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p95, ms(19));
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(20));
        assert_eq!(s.mean, ms(10) + Duration::from_micros(500));
        assert_eq!(summarize(&[]), SampleStats::empty());
    }

    #[test]
    fn single_sample_is_its_own_percentiles() {
        let one = [Duration::from_millis(7)];
        let s = summarize(&one);
        assert_eq!((s.p50, s.p95, s.mean), (one[0], one[0], one[0]));
    }

    #[test]
    fn count_stats_mirror_duration_stats() {
        let samples: Vec<u64> = (1..=20).collect();
        let s = summarize_counts(&samples);
        assert_eq!(s.n, 20);
        assert_eq!(s.total, 210);
        assert_eq!(s.p50, 10);
        assert_eq!(s.p95, 19);
        assert_eq!((s.min, s.max), (1, 20));
        assert_eq!(s.mean(), 10.5);
        assert_eq!(summarize_counts(&[]), CountStats::empty());
        assert_eq!(CountStats::empty().mean(), 0.0);
        // Order must not matter.
        let shuffled = [20u64, 3, 7, 1, 19];
        let a = summarize_counts(&shuffled);
        let mut sorted = shuffled.to_vec();
        sorted.sort_unstable();
        assert_eq!(a, summarize_counts(&sorted));
    }
}
