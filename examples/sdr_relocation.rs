//! The paper's case study end to end: floorplan the SDR design on the
//! Virtex-5 FX70T, reserve free-compatible areas for the relocatable regions
//! (SDR2), and compare against the relocation-unaware baselines.
//!
//! Run with: `cargo run --release --example sdr_relocation`

use relocfp::baselines::engines::full_registry;
use relocfp::prelude::*;
use rfp_floorplan::render::render_ascii;
use rfp_workloads::{sdr2_problem, sdr_problem, sdr_region_table};

fn main() {
    println!("SDR design (Table I):");
    for row in sdr_region_table() {
        println!(
            "  {:<18} {:>3} CLB  {:>2} BRAM  {:>2} DSP  -> {:>5} frames",
            row.name, row.clb_tiles, row.bram_tiles, row.dsp_tiles, row.frames
        );
    }

    // Every engine — exact and baseline alike — speaks the same
    // `FloorplanEngine::solve(request, control)` contract.
    let registry = full_registry();
    let ctl = SolveControl::default();

    // Relocation-unaware baselines on the plain SDR instance.
    let sdr = sdr_problem();
    let plain_req = SolveRequest::new(sdr.clone()).with_time_limit(60.0);
    for (label, id) in [
        ("[8]-style tessellation baseline", "tessellation"),
        ("[9]-style simulated annealing  ", "annealing"),
    ] {
        let outcome = registry.get(id).expect("registered").solve(&plain_req, &ctl);
        match outcome.metrics {
            Some(m) => println!("\n{label} : {:>5} wasted frames", m.wasted_frames),
            None => println!("\n{label} : no floorplan ({})", outcome.status),
        }
    }
    let plain = registry.get("combinatorial").expect("registered").solve(&plain_req, &ctl);
    println!(
        "[10]  (PA without relocation)   : {:>5} wasted frames",
        plain.metrics.expect("SDR is feasible").wasted_frames
    );

    // The relocation-aware solve on SDR2 as a portfolio race: all five
    // engines start, the first proven result cancels the rest (the
    // relocation-unaware baselines drop out as infeasible).
    let problem = sdr2_problem();
    let race = Portfolio::from_registry(&registry)
        .race(&SolveRequest::new(problem.clone()).with_time_limit(120.0));
    for entry in &race.entries {
        println!(
            "  raced {:<14} -> {}{}",
            entry.engine,
            entry.outcome.status,
            if entry.outcome.stats.cancelled { " (cancelled)" } else { "" }
        );
    }
    let winner = race.winning_entry().expect("SDR2 is feasible");
    let report_fp = winner.outcome.floorplan.clone().expect("winner carries a floorplan");
    let report_metrics = winner.outcome.metrics.expect("metrics accompany floorplans");
    println!(
        "PA on SDR2 (won by `{}`)         : {:>5} wasted frames, {} free-compatible areas\n",
        winner.engine, report_metrics.wasted_frames, report_metrics.fc_found
    );
    println!("{}", render_ascii(&problem, &report_fp));

    // Every reserved area really is a legal relocation target: prove it by
    // generating a bitstream for each relocatable region and relocating it.
    let partition = &problem.partition;
    let occupied = report_fp.occupied();
    let mut memory = ConfigMemory::new();
    for (idx, rect) in report_fp.regions.iter().enumerate() {
        let name = &problem.regions[idx].name;
        let bs = Bitstream::generate(partition, name, *rect, idx as u64).expect("legal area");
        memory.program(name, &bs).expect("no conflicts in a valid floorplan");
    }
    for (idx, rect) in report_fp.regions.iter().enumerate() {
        let name = &problem.regions[idx].name;
        let targets = report_fp.fc_for_region(idx);
        if targets.is_empty() {
            continue;
        }
        let bs = Bitstream::generate(partition, name, *rect, idx as u64).expect("legal area");
        for target in &targets {
            let relocated = relocate(partition, &bs, *target)
                .expect("reserved areas are compatible by construction");
            assert!(relocated.verify().is_ok());
            // The reserved area is free: nothing else occupies it.
            assert!(occupied.iter().filter(|o| o.overlaps(target)).count() == 1);
        }
        println!(
            "{name}: bitstream of {} frames relocatable to {} reserved area(s)",
            bs.n_frames(),
            targets.len()
        );
    }
    println!(
        "\ntotal configuration frames written to the simulated memory: {}",
        memory.frames_written()
    );
}
