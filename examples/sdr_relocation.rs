//! The paper's case study end to end: floorplan the SDR design on the
//! Virtex-5 FX70T, reserve free-compatible areas for the relocatable regions
//! (SDR2), and compare against the relocation-unaware baselines.
//!
//! Run with: `cargo run --release --example sdr_relocation`

use relocfp::baselines::{tessellation_floorplan, AnnealingFloorplanner, TessellationConfig};
use relocfp::prelude::*;
use rfp_floorplan::render::render_ascii;
use rfp_workloads::{sdr2_problem, sdr_problem, sdr_region_table};

fn main() {
    println!("SDR design (Table I):");
    for row in sdr_region_table() {
        println!(
            "  {:<18} {:>3} CLB  {:>2} BRAM  {:>2} DSP  -> {:>5} frames",
            row.name, row.clb_tiles, row.bram_tiles, row.dsp_tiles, row.frames
        );
    }

    // Relocation-unaware baselines on the plain SDR instance.
    let sdr = sdr_problem();
    let tess = tessellation_floorplan(&sdr, &TessellationConfig::default())
        .expect("tessellation places the SDR design");
    println!(
        "\n[8]-style tessellation baseline : {:>5} wasted frames",
        tess.metrics(&sdr).wasted_frames
    );
    if let Ok(sa) = AnnealingFloorplanner::default().solve(&sdr) {
        println!(
            "[9]-style simulated annealing   : {:>5} wasted frames",
            sa.metrics(&sdr).wasted_frames
        );
    }
    let plain = Floorplanner::new(FloorplannerConfig::combinatorial().with_time_limit(60.0))
        .solve_report(&sdr)
        .expect("SDR is feasible");
    println!("[10]  (PA without relocation)   : {:>5} wasted frames", plain.metrics.wasted_frames);

    // The relocation-aware floorplanner on SDR2.
    let problem = sdr2_problem();
    let report = Floorplanner::new(FloorplannerConfig::combinatorial().with_time_limit(120.0))
        .solve_report(&problem)
        .expect("SDR2 is feasible");
    println!(
        "PA on SDR2 (2 areas/relocatable) : {:>5} wasted frames, {} free-compatible areas\n",
        report.metrics.wasted_frames, report.metrics.fc_found
    );
    println!("{}", render_ascii(&problem, &report.floorplan));

    // Every reserved area really is a legal relocation target: prove it by
    // generating a bitstream for each relocatable region and relocating it.
    let partition = &problem.partition;
    let occupied = report.floorplan.occupied();
    let mut memory = ConfigMemory::new();
    for (idx, rect) in report.floorplan.regions.iter().enumerate() {
        let name = &problem.regions[idx].name;
        let bs = Bitstream::generate(partition, name, *rect, idx as u64).expect("legal area");
        memory.program(name, &bs).expect("no conflicts in a valid floorplan");
    }
    for (idx, rect) in report.floorplan.regions.iter().enumerate() {
        let name = &problem.regions[idx].name;
        let targets = report.floorplan.fc_for_region(idx);
        if targets.is_empty() {
            continue;
        }
        let bs = Bitstream::generate(partition, name, *rect, idx as u64).expect("legal area");
        for target in &targets {
            let relocated = relocate(partition, &bs, *target)
                .expect("reserved areas are compatible by construction");
            assert!(relocated.verify().is_ok());
            // The reserved area is free: nothing else occupies it.
            assert!(occupied.iter().filter(|o| o.overlaps(target)).count() == 1);
        }
        println!(
            "{name}: bitstream of {} frames relocatable to {} reserved area(s)",
            bs.n_frames(),
            targets.len()
        );
    }
    println!(
        "\ntotal configuration frames written to the simulated memory: {}",
        memory.frames_written()
    );
}
