//! Quickstart: describe a device, describe regions, reserve a relocation
//! target, solve, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use relocfp::prelude::*;
use rfp_floorplan::render::render_ascii;

fn main() {
    // 1. Describe a columnar device: 12 resource columns, 4 tile rows,
    //    BRAM columns at 4 and 9, a DSP column at 6, and a hard block.
    let mut builder = DeviceBuilder::new("demo-device");
    let clb = builder.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
    let bram = builder.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
    let dsp = builder.tile_type("DSP", ResourceVec::new(0, 0, 1), 28);
    builder.rows(4);
    for col in 1..=12u32 {
        match col {
            4 | 9 => builder.column(bram),
            6 => builder.column(dsp),
            _ => builder.column(clb),
        };
    }
    builder.hard_block("PCIe", Rect::new(11, 1, 2, 1));
    let device = builder.build().expect("valid device description");

    // 2. Run the columnar partitioning of Section III.
    let partition = columnar_partition(&device).expect("device is columnar");
    println!(
        "Device `{}`: {} columns x {} rows, {} columnar portions, {} forbidden area(s)",
        device.name,
        device.cols(),
        device.rows(),
        partition.n_portions(),
        partition.forbidden.len()
    );

    // 3. Describe the reconfigurable regions and their connectivity.
    let mut problem = FloorplanProblem::new(partition);
    let fir = problem.add_region(RegionSpec::new("FIR filter", vec![(clb, 6), (dsp, 2)]));
    let fft = problem.add_region(RegionSpec::new("FFT", vec![(clb, 8), (bram, 2)]));
    let crc = problem.add_region(RegionSpec::new("CRC offload", vec![(clb, 3)]));
    problem.connect_chain(&[fir, fft, crc], 32.0);

    // 4. Ask for one free-compatible area for the CRC offload module
    //    (relocation as a constraint, Section IV) and one *optional* area for
    //    the FFT (relocation as a metric, Section V).
    problem.request_relocation(RelocationRequest::constraint(crc, 1));
    problem.request_relocation(RelocationRequest::metric(fft, 1, 2.0));

    // 5. Solve through the engine registry (the same call path the `rfp`
    //    CLI and the portfolio use) and validate.
    let registry = EngineRegistry::builtin();
    let engine = registry.get("combinatorial").expect("builtin engine");
    let outcome = engine.solve(&SolveRequest::new(problem.clone()), &SolveControl::default());
    let floorplan = outcome.floorplan.expect("the instance is feasible");
    let metrics = outcome.metrics.expect("metrics accompany floorplans");
    let issues = floorplan.validate(&problem);
    assert!(issues.is_empty(), "the floorplanner must return a valid floorplan: {issues:?}");

    println!("\n{}", render_ascii(&problem, &floorplan));
    println!(
        "wasted frames = {}, wire length = {:.0}, free-compatible areas = {}/{}, proven optimal = {}",
        metrics.wasted_frames,
        metrics.wirelength,
        metrics.fc_found,
        metrics.fc_requested,
        outcome.status == OutcomeStatus::Proven,
    );

    // 6. Problems and floorplans serialise to a versioned JSON format, so
    //    the same instance can be solved from the command line:
    //    `rfp solve --engine combinatorial quickstart.problem.json`.
    let json = relocfp::floorplan::jsonio::write_problem(&problem);
    println!("\nJSON problem document: {} bytes (try `rfp solve` on it)", json.len());
}
