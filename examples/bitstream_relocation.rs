//! Bitstream relocation in isolation: generate a partial bitstream for one
//! area of the Virtex-5 FX70T, enumerate every compatible target, relocate
//! the bitstream with the software filter (address rewrite + CRC recompute)
//! and program the simulated configuration memory — including the failure
//! cases the free-compatible-area machinery exists to prevent.
//!
//! Run with: `cargo run --release --example bitstream_relocation`

use relocfp::prelude::*;

fn main() {
    let device = xc5vfx70t();
    let partition = fabric_partition(&device).expect("device model is consistent");

    // A module occupying 3 CLB columns + the first BRAM column, 2 rows high.
    let source = Rect::new(1, 1, 4, 2);
    let module =
        Bitstream::generate(&partition, "turbo-decoder", source, 0xC0FFEE).expect("legal area");
    println!(
        "module `{}` @ {}: {} frames, {} payload bytes, crc {:#010x}",
        module.module,
        module.area,
        module.n_frames(),
        module.payload_bytes(),
        module.crc
    );

    // Where can it go? (Definition .2: compatible and not overlapping.)
    let occupied = vec![source];
    let targets = enumerate_free_compatible(&partition, &source, &occupied);
    println!("free-compatible targets on the idle device: {}", targets.len());
    for t in targets.iter().take(5) {
        println!("  candidate target {t}");
    }

    // Relocate to the first target and program both locations.
    let mut memory = ConfigMemory::new();
    memory.program("turbo-decoder", &module).unwrap();
    let target = targets.first().copied().expect("the FX70T has room");
    let relocated = relocate(&partition, &module, target).expect("compatible target");
    println!(
        "relocated to {}: addresses rewritten, payload identical, new crc {:#010x}",
        relocated.area, relocated.crc
    );
    memory.program("turbo-decoder", &relocated).unwrap();
    assert_eq!(memory.area_of("turbo-decoder"), Some(target));

    // Relocation into a non-compatible area is refused by the filter.
    let bad = Rect::new(source.x + 1, source.y, source.w, source.h);
    match relocate(&partition, &module, bad) {
        Err(e) => println!("relocation to {bad} correctly refused: {e}"),
        Ok(_) => unreachable!("the shifted area has a different column-type sequence"),
    }

    // Overlapping configurations are caught by the configuration memory.
    let squatter = Bitstream::generate(&partition, "squatter", target, 1).unwrap();
    match memory.program("squatter", &squatter) {
        Err(e) => println!("conflicting configuration correctly refused: {e}"),
        Ok(()) => unreachable!("the target is owned by the relocated module"),
    }
}
