//! Design-space exploration on synthetic workloads: sweep the number of
//! requested free-compatible areas and the device size, and watch how wasted
//! frames and solve time respond — the axis the paper explores between SDR,
//! SDR2 and SDR3, extended to parameterised instances.
//!
//! Run with: `cargo run --release --example design_space`

use relocfp::prelude::*;
use rfp_device::SyntheticSpec;
use rfp_workloads::generator::WorkloadSpec;

fn solve(problem: &FloorplanProblem) -> Option<(u64, usize, f64)> {
    let registry = EngineRegistry::builtin();
    let engine = registry.get("combinatorial").expect("builtin engine");
    let req = SolveRequest::new(problem.clone()).with_time_limit(20.0);
    let outcome = engine.solve(&req, &SolveControl::default());
    let m = outcome.metrics?;
    Some((m.wasted_frames, m.fc_found, outcome.stats.solve_seconds))
}

fn main() {
    println!("Sweep 1: free-compatible areas requested per relocatable region");
    println!("(device 24x6, 5 regions, 2 relocatable — the SDR->SDR2->SDR3 axis)\n");
    println!("{:<10} {:>14} {:>10} {:>10}", "fc/region", "wasted frames", "fc found", "seconds");
    for fc in 0..=3u32 {
        let spec = WorkloadSpec {
            n_regions: 5,
            utilisation: 0.35,
            device: SyntheticSpec {
                cols: 24,
                rows: 6,
                bram_every: 5,
                dsp_every: 9,
                ..Default::default()
            },
            fc_per_region: fc,
            relocatable_regions: 2,
            ..WorkloadSpec::default()
        };
        let problem = spec.generate().problem;
        match solve(&problem) {
            Some((waste, found, secs)) => {
                println!("{:<10} {:>14} {:>10} {:>10.2}", fc, waste, found, secs)
            }
            None => println!("{:<10} {:>14}", fc, "infeasible / limit"),
        }
    }

    println!("\nSweep 2: device width at fixed utilisation (4 regions, 1 area each)\n");
    println!("{:<10} {:>14} {:>10} {:>10}", "columns", "wasted frames", "fc found", "seconds");
    for cols in [16u32, 24, 32, 48] {
        let spec = WorkloadSpec {
            n_regions: 4,
            utilisation: 0.3,
            device: SyntheticSpec {
                cols,
                rows: 6,
                bram_every: 5,
                dsp_every: 9,
                ..Default::default()
            },
            fc_per_region: 1,
            relocatable_regions: 4,
            ..WorkloadSpec::default()
        };
        let problem = spec.generate().problem;
        match solve(&problem) {
            Some((waste, found, secs)) => {
                println!("{:<10} {:>14} {:>10} {:>10.2}", cols, waste, found, secs)
            }
            None => println!("{:<10} {:>14}", cols, "infeasible / limit"),
        }
    }
}
