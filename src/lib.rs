//! # relocfp — relocation-aware floorplanning for partially-reconfigurable FPGAs
//!
//! This is the facade crate of the workspace: it re-exports the public API of
//! every sub-crate so applications can depend on a single crate. The
//! workspace reproduces the system of
//!
//! > M. Rabozzi, R. Cattaneo, T. Becker, W. Luk, M. D. Santambrogio,
//! > *"Relocation-aware Floorplanning for Partially-Reconfigurable
//! > FPGA-based Systems"*, IPDPSW 2015.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`device`] | `rfp-device` | FPGA device model, columnar partitioning, area compatibility |
//! | [`milp`] | `rfp-milp` | from-scratch LP/MILP solver (simplex + branch and bound) |
//! | [`floorplan`] | `rfp-floorplan` | the relocation-aware floorplanner (O, HO, combinatorial) |
//! | [`baselines`] | `rfp-baselines` | tessellation ([8]-style) and simulated annealing ([9]-style) |
//! | [`bitstream`] | `rfp-bitstream` | synthetic partial bitstreams, CRC-32, relocation filter |
//! | [`runtime`] | `rfp-runtime` | online reconfiguration simulator: event streams, incremental placement, defragmentation |
//! | [`service`] | `rfp-service` | queue-worker solve service: job queue, worker pool, cross-request outcome cache, `rfp serve` protocol |
//! | [`trace`] | `rfp-trace` | zero-dep structured tracing and metrics: logical-clock span trees, counters, histograms, deterministic `rfp-trace` v1 JSON |
//! | [`workloads`] | `rfp-workloads` | the SDR case study (Table I), synthetic generators and defragmentation traces |
//! | [`sweep`] | `rfp-sweep` | Monte-Carlo fleet sweeps: parameter grids, worker-pool runner, deterministic percentile reports |
//!
//! ## Quick start
//!
//! Solving goes through the engine-agnostic API: look an engine up in the
//! [`floorplan::engine::EngineRegistry`] (or race several with
//! [`floorplan::portfolio::Portfolio`]) and hand it a cancellable
//! [`floorplan::engine::SolveRequest`]. The `rfp` CLI (`rfp solve`,
//! `validate`, `engines`, `convert`) drives the same path from versioned
//! JSON problem files ([`floorplan::jsonio`]).
//!
//! ```
//! use relocfp::prelude::*;
//!
//! // The SDR2 instance of the paper: two free-compatible areas for every
//! // relocatable region of the SDR design on a Virtex-5 FX70T.
//! let problem = relocfp::workloads::sdr2_problem();
//! let registry = relocfp::baselines::engines::full_registry();
//! let outcome = registry
//!     .get("combinatorial")
//!     .expect("registered engine")
//!     .solve(
//!         &SolveRequest::new(problem.clone()).with_time_limit(60.0),
//!         &SolveControl::default(),
//!     );
//! let floorplan = outcome.floorplan.expect("SDR2 is feasible");
//! assert!(floorplan.validate(&problem).is_empty());
//! assert_eq!(floorplan.fc_found(), 6);
//! ```

pub use rfp_baselines as baselines;
pub use rfp_bitstream as bitstream;
pub use rfp_device as device;
pub use rfp_floorplan as floorplan;
pub use rfp_milp as milp;
pub use rfp_runtime as runtime;
pub use rfp_service as service;
pub use rfp_sweep as sweep;
pub use rfp_trace as trace;
pub use rfp_workloads as workloads;

/// One-stop import of the most used types.
pub mod prelude {
    pub use rfp_bitstream::{relocate, Bitstream, ConfigMemory};
    pub use rfp_device::{
        areas_compatible, columnar_partition, enumerate_free_compatible, fabric_partition,
        fabric_partition_with_boundaries, xc5vfx70t, Device, DeviceBuilder, FabricPartition,
        Rect, ResourceVec,
    };
    pub use rfp_floorplan::prelude::*;
    pub use rfp_milp::prelude::*;
    pub use rfp_runtime::{
        simulate, DefragPolicy, OnlineConfig, OnlineFloorplanner, Scenario, SimReport,
    };
    pub use rfp_service::{JobSpec, ServiceConfig, SolveService};
    pub use rfp_sweep::{run_sweep, SweepGrid, SweepOptions, SweepReport};
}
