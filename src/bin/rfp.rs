//! `rfp` — the relocation-aware floorplanning CLI.
//!
//! Drives the engine registry from versioned JSON problem files
//! (`rfp_floorplan::jsonio`):
//!
//! ```text
//! rfp engines                                   list the registered engines
//! rfp convert sdr2 --out sdr2.problem.json      emit a built-in instance as JSON
//! rfp convert --to bin p.json --out p.rfpb      transcode json <-> binary
//! rfp solve --engine milp problem.json          solve with one engine
//! rfp solve --portfolio problem.json            race every engine, first proof wins
//! rfp validate problem.json floorplan.json      re-check a floorplan independently
//! rfp simulate scenario.rfpb                    play an online reconfiguration stream
//! rfp sweep --grid grid.json --workers 4        Monte-Carlo fleet sweep
//! rfp serve --jobs jobs.jsonl                   run an NDJSON job stream through
//!                                               the queue-worker solve service
//! rfp solve --trace t.json problem.json         record an rfp-trace document
//! rfp trace summarize t.json                    render a recorded trace
//! ```
//!
//! `solve` and `simulate` route through the same `rfp-service` queue-worker
//! layer that `serve` hosts: `solve` submits a single job, `simulate` wires
//! the service in as the online simulator's [`SolveDispatcher`] so repeated
//! escalation re-solves warm-start from the cross-request outcome cache.
//! `sweep` expands an `rfp-sweep-grid` document into hundreds of seeded
//! simulations over a worker pool and aggregates per-cell percentiles into
//! a report that is byte-identical at every `--workers` value.
//!
//! Every input that names a problem, floorplan or scenario accepts both the
//! JSON v1 documents and their `rfpb` binary twins — the format is sniffed
//! from the magic bytes, never the file name.
//!
//! Exit codes: `0` success, `1` usage/IO/format error (or failed jobs for
//! `serve`), `2` infeasible (or floorplan invalid for `validate`, constraint
//! violations for `simulate`/`sweep`), `3` budget exhausted before a
//! floorplan was found.

use relocfp::floorplan::engine::{EngineRegistry, OutcomeStatus, SolveRequest};
use relocfp::floorplan::placement::Floorplan;
use relocfp::floorplan::problem::FloorplanProblem;
use relocfp::floorplan::{binio, jsonio};
use relocfp::runtime::{
    read_scenario, read_scenario_bin, simulate_with_dispatcher, write_scenario, write_scenario_bin,
    DefragPolicy, OnlineConfig, Scenario, SCENARIO_FORMAT,
};
use relocfp::service::{serve, EngineChoice, JobSpec, ServeConfig, ServiceConfig, SolveService};
use relocfp::sweep::{read_grid, run_sweep, SweepGrid, SweepOptions};
use rfp_workloads::generator::WorkloadSpec;
use rfp_workloads::DefragWorkloadSpec;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  rfp engines [--json]
  rfp solve [--engine ID | --portfolio[=ID,ID,...]] [--time-limit SECS]
            [--node-limit N] [--threads N] [--out FILE] [--trace FILE]
            [--quiet] PROBLEM
  rfp validate PROBLEM FLOORPLAN
  rfp simulate [--policy aware|oblivious|no_break] [--engine ID] [--threshold F]
               [--time-limit SECS] [--report FILE] [--trace FILE] [--quiet]
               SCENARIO
  rfp sweep [--grid FILE] [--workers N] [--out FILE] [--trace FILE] [--quiet]
  rfp serve [--workers N] [--engine ID] [--no-cache] [--jobs FILE] [--out FILE]
            [--trace FILE]
  rfp trace summarize FILE
  rfp convert [--to json|bin] [--out FILE] INSTANCE
      INSTANCE: sdr | sdr2 | sdr3 | synthetic[:SEED[:REGIONS]]
              | smoke | defrag[:SEED[:MODULES]] | a problem/floorplan/scenario file

Problems, floorplans and scenarios use the versioned JSON formats of the
jsonio v1 family (rfp-problem / rfp-floorplan / rfp-scenario) or their rfpb
binary twins; every PROBLEM/FLOORPLAN/SCENARIO input sniffs the format from
the magic bytes, and `convert --to` transcodes between the two. `simulate`
writes an rfp-sim-report document. `sweep` expands an rfp-sweep-grid file
(default: the built-in smoke grid) into seeded simulations across a worker
pool; its rfp-sweep-report output is byte-identical at every --workers
value. `serve` reads one JSON job per line (verbs: submit, status, cancel,
stats, shutdown) from stdin or --jobs FILE and answers with one JSON
response per line; with --jobs the whole stream is queued before the workers
start, so responses are deterministic. `--trace FILE` writes an rfp-trace v1
document (logical-clock span trees, counters, histograms; wall-clock-free,
so traces of deterministic runs are byte-stable) which `rfp trace summarize`
renders as per-track tables.";

fn fail(msg: impl AsRef<str>) -> ExitCode {
    eprintln!("rfp: {}", msg.as_ref());
    ExitCode::from(1)
}

fn registry() -> EngineRegistry {
    rfp_baselines::engines::full_registry()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn write_output(out: Option<&str>, content: &str) -> Result<(), String> {
    write_output_bytes(out, content.as_bytes())
}

fn write_output_bytes(out: Option<&str>, content: &[u8]) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
        None => {
            use std::io::Write as _;
            std::io::stdout().write_all(content).map_err(|e| format!("cannot write stdout: {e}"))
        }
    }
}

fn utf8(path: &str, bytes: Vec<u8>) -> Result<String, String> {
    String::from_utf8(bytes).map_err(|_| format!("`{path}`: neither rfpb binary nor UTF-8 JSON"))
}

/// Reads a problem from JSON or `rfpb` binary, sniffing the magic bytes.
fn read_problem_any(path: &str) -> Result<FloorplanProblem, String> {
    let bytes = read_bytes(path)?;
    if binio::is_binary(&bytes) {
        binio::read_problem_bin(&bytes).map_err(|e| format!("`{path}`: {e}"))
    } else {
        jsonio::read_problem(&utf8(path, bytes)?).map_err(|e| format!("`{path}`: {e}"))
    }
}

/// Reads a floorplan from JSON or `rfpb` binary, sniffing the magic bytes.
fn read_floorplan_any(path: &str) -> Result<Floorplan, String> {
    let bytes = read_bytes(path)?;
    if binio::is_binary(&bytes) {
        binio::read_floorplan_bin(&bytes).map_err(|e| format!("`{path}`: {e}"))
    } else {
        jsonio::read_floorplan(&utf8(path, bytes)?).map_err(|e| format!("`{path}`: {e}"))
    }
}

/// Reads a scenario from JSON or `rfpb` binary, sniffing the magic bytes.
fn read_scenario_any(path: &str) -> Result<Scenario, String> {
    let bytes = read_bytes(path)?;
    if binio::is_binary(&bytes) {
        read_scenario_bin(&bytes).map_err(|e| format!("`{path}`: {e}"))
    } else {
        read_scenario(&utf8(path, bytes)?).map_err(|e| format!("`{path}`: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("engines") => cmd_engines(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn cmd_engines(args: &[String]) -> ExitCode {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            a => return fail(format!("unknown argument `{a}`\n{USAGE}")),
        }
    }
    let registry = registry();
    if json {
        // Machine-readable registry dump, in registration order (the order
        // `EngineChoice::Default` and an unrestricted `--portfolio` use).
        let mut s = String::from("[");
        for (i, engine) in registry.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n  {{\"id\":\"{}\",\"parallel\":{},\"description\":\"{}\"}}",
                jsonio::escape(engine.id()),
                engine.parallel(),
                jsonio::escape(engine.description()),
            ));
        }
        s.push_str("\n]\n");
        print!("{s}");
    } else {
        for engine in registry.iter() {
            let threads = if engine.parallel() { "parallel" } else { "serial  " };
            println!("{:<14} {threads}  {}", engine.id(), engine.description());
        }
    }
    ExitCode::SUCCESS
}

/// Writes the collector's drained trace document (CLI `--trace FILE`).
fn write_trace(path: &str, collector: &relocfp::trace::Collector) -> Result<(), String> {
    std::fs::write(path, collector.drain().to_json())
        .map_err(|e| format!("cannot write `{path}`: {e}"))
}

struct SolveArgs {
    engine: Option<String>,
    portfolio: Option<Vec<String>>,
    time_limit: f64,
    node_limit: u64,
    threads: usize,
    out: Option<String>,
    trace: Option<String>,
    quiet: bool,
    problem_path: String,
}

fn parse_solve_args(args: &[String]) -> Result<SolveArgs, String> {
    let mut parsed = SolveArgs {
        engine: None,
        portfolio: None,
        time_limit: 0.0,
        node_limit: 0,
        threads: 0,
        out: None,
        trace: None,
        quiet: false,
        problem_path: String::new(),
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--engine" => parsed.engine = Some(take_value("--engine")?),
            "--portfolio" => parsed.portfolio = Some(Vec::new()),
            a if a.starts_with("--portfolio=") => {
                let ids = a["--portfolio=".len()..]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                parsed.portfolio = Some(ids);
            }
            "--time-limit" => {
                let v = take_value("--time-limit")?;
                parsed.time_limit = v.parse().map_err(|_| format!("invalid --time-limit `{v}`"))?;
            }
            "--node-limit" => {
                let v = take_value("--node-limit")?;
                parsed.node_limit = v.parse().map_err(|_| format!("invalid --node-limit `{v}`"))?;
            }
            "--threads" => {
                let v = take_value("--threads")?;
                parsed.threads = match v.parse() {
                    Ok(n) if (1..=256).contains(&n) => n,
                    _ => return Err(format!("invalid --threads `{v}` (1 - 256)")),
                };
            }
            "--out" | "-o" => parsed.out = Some(take_value("--out")?),
            "--trace" => parsed.trace = Some(take_value("--trace")?),
            "--quiet" | "-q" => parsed.quiet = true,
            a if a.starts_with('-') => return Err(format!("unknown option `{a}`")),
            a => positional.push(a.to_string()),
        }
    }
    match positional.as_slice() {
        [path] => parsed.problem_path = path.clone(),
        [] => return Err("missing PROBLEM.json argument".to_string()),
        more => return Err(format!("unexpected extra arguments: {more:?}")),
    }
    if parsed.engine.is_some() && parsed.portfolio.is_some() {
        return Err("--engine and --portfolio are mutually exclusive".to_string());
    }
    Ok(parsed)
}

fn cmd_solve(args: &[String]) -> ExitCode {
    let parsed = match parse_solve_args(args) {
        Ok(p) => p,
        Err(e) => return fail(format!("{e}\n{USAGE}")),
    };
    let problem = match read_problem_any(&parsed.problem_path) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if let Err(e) = problem.validate() {
        return fail(format!("`{}`: invalid problem: {e}", parsed.problem_path));
    }

    let registry = registry();
    // Fail fast on unknown engine ids — a usage error (exit 1), not an
    // infeasible job outcome.
    if let Some(ids) = &parsed.portfolio {
        for id in ids {
            if registry.get(id).is_none() {
                return fail(format!("unknown engine `{id}` in --portfolio"));
            }
        }
    } else if let Some(id) = &parsed.engine {
        if registry.get(id).is_none() {
            let known = registry.ids().join(", ");
            return fail(format!("unknown engine `{id}` (known: {known})"));
        }
    }

    let mut req = SolveRequest::new(problem);
    if parsed.time_limit > 0.0 {
        req = req.with_time_limit(parsed.time_limit);
    }
    if parsed.node_limit > 0 {
        req = req.with_node_limit(parsed.node_limit);
    }
    if parsed.threads > 0 {
        req = req.with_threads(parsed.threads);
    }

    // One job through the same queue-worker service `rfp serve` hosts. A
    // portfolio job races the requested engines (or every registered one):
    // the exact engines prove and cancel the heuristics; heuristics only win
    // on objective when nobody proves within the budget.
    let choice = match (&parsed.engine, &parsed.portfolio) {
        (Some(id), _) => EngineChoice::Engine(id.clone()),
        (None, Some(ids)) => EngineChoice::Portfolio(ids.clone()),
        (None, None) => EngineChoice::Default,
    };
    // With --trace, everything below runs inside a "main"-track scope: the
    // service worker moves each job onto its own `job#####` track, so the
    // CLI span only brackets submit/join. Scope before span: drop order
    // closes the span first, then flushes the scope.
    let collector = parsed.trace.as_ref().map(|_| relocfp::trace::Collector::new());
    let trace_scope = collector.as_ref().map(|c| c.install("main"));
    let cli_span = relocfp::trace::span("cli.solve");

    let service = SolveService::new(
        registry,
        ServiceConfig {
            workers: 1,
            trace: collector.as_ref().map(|c| c.handle()),
            ..ServiceConfig::default()
        },
    );
    let id = service.submit(JobSpec::new(req).with_engine(choice));
    let result = service.join(id).expect("submitted ids are joinable");

    drop(cli_span);
    drop(trace_scope);
    if let (Some(path), Some(collector)) = (&parsed.trace, &collector) {
        if let Err(e) = write_trace(path, collector) {
            return fail(e);
        }
    }

    let (engine_label, outcome) = (result.engine, result.outcome);
    if let (false, Some(race)) = (parsed.quiet, &result.race) {
        for entry in &race.entries {
            eprintln!(
                "  {:<14} {:<16} {:>8.2}s  nodes {}{}",
                entry.engine,
                entry.outcome.status.to_string(),
                entry.outcome.stats.solve_seconds,
                entry.outcome.stats.nodes,
                if entry.outcome.stats.cancelled { "  (cancelled)" } else { "" },
            );
        }
    }

    if !parsed.quiet {
        let threads = match outcome.stats.threads {
            0 | 1 => String::new(),
            n => format!(", {n} threads"),
        };
        eprintln!(
            "rfp: {engine_label}: {} in {:.2}s ({} nodes{threads})",
            outcome.status, outcome.stats.solve_seconds, outcome.stats.nodes
        );
        if let Some(m) = &outcome.metrics {
            eprintln!(
                "rfp: wasted frames {}, wire length {:.1}, free-compatible areas {}/{}",
                m.wasted_frames, m.wirelength, m.fc_found, m.fc_requested
            );
        }
    }
    match &outcome.floorplan {
        Some(fp) => {
            let rendered = jsonio::write_floorplan(fp);
            match write_output(parsed.out.as_deref(), &rendered) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        None => {
            eprintln!("rfp: no floorplan: {}", outcome.detail.as_deref().unwrap_or("(no detail)"));
            ExitCode::from(if outcome.status == OutcomeStatus::BudgetExhausted { 3 } else { 2 })
        }
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let [problem_path, floorplan_path] = args else {
        return fail(format!("validate needs PROBLEM and FLOORPLAN files\n{USAGE}"));
    };
    let problem = match read_problem_any(problem_path) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    if let Err(e) = problem.validate() {
        return fail(format!("`{problem_path}`: invalid problem: {e}"));
    }
    let floorplan = match read_floorplan_any(floorplan_path) {
        Ok(fp) => fp,
        Err(e) => return fail(e),
    };
    let issues = floorplan.validate(&problem);
    if issues.is_empty() {
        let m = floorplan.metrics(&problem);
        println!(
            "valid: wasted frames {}, wire length {:.1}, free-compatible areas {}/{}",
            m.wasted_frames, m.wirelength, m.fc_found, m.fc_requested
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("invalid floorplan ({} issue(s)):", issues.len());
        for issue in &issues {
            eprintln!("  - {issue}");
        }
        ExitCode::from(2)
    }
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let mut config = OnlineConfig::default();
    let mut report_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut quiet = false;
    let mut scenario_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--policy" => {
                let v = match take_value("--policy") {
                    Ok(v) => v,
                    Err(e) => return fail(e),
                };
                match DefragPolicy::from_id(&v) {
                    Some(p) => config.policy = p,
                    None => {
                        return fail(format!("unknown policy `{v}` (aware | oblivious | no_break)"))
                    }
                }
            }
            "--engine" => match take_value("--engine") {
                Ok(v) => config.engine = v,
                Err(e) => return fail(e),
            },
            "--threshold" => {
                let v = match take_value("--threshold") {
                    Ok(v) => v,
                    Err(e) => return fail(e),
                };
                match v.parse::<f64>() {
                    Ok(t) if (0.0..=1.0).contains(&t) => config.defrag_threshold = t,
                    _ => return fail(format!("invalid --threshold `{v}` (0.0 - 1.0)")),
                }
            }
            "--time-limit" => {
                let v = match take_value("--time-limit") {
                    Ok(v) => v,
                    Err(e) => return fail(e),
                };
                match v.parse::<f64>() {
                    Ok(secs) if secs.is_finite() && secs > 0.0 => {
                        config.engine_time_limit = secs;
                    }
                    _ => return fail(format!("invalid --time-limit `{v}` (positive seconds)")),
                }
            }
            "--report" => match take_value("--report") {
                Ok(v) => report_path = Some(v),
                Err(e) => return fail(e),
            },
            "--trace" => match take_value("--trace") {
                Ok(v) => trace_path = Some(v),
                Err(e) => return fail(e),
            },
            "--quiet" | "-q" => quiet = true,
            a if a.starts_with('-') => return fail(format!("unknown option `{a}`")),
            a => {
                if scenario_path.replace(a.to_string()).is_some() {
                    return fail(format!("more than one SCENARIO.json given\n{USAGE}"));
                }
            }
        }
    }
    let Some(scenario_path) = scenario_path else {
        return fail(format!("missing SCENARIO argument\n{USAGE}"));
    };
    let scenario = match read_scenario_any(&scenario_path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    // With --trace, the simulation loop runs on the "main" track while the
    // service worker puts each escalation re-solve on its own job track.
    let collector = trace_path.as_ref().map(|_| relocfp::trace::Collector::new());
    let trace_scope = collector.as_ref().map(|c| c.install("main"));
    let cli_span = relocfp::trace::span("cli.simulate");
    // Escalation re-solves go through a solve service: repeated escalations
    // over similar live-module sets warm-start from the outcome cache.
    let service = Arc::new(SolveService::new(
        registry(),
        ServiceConfig {
            workers: 1,
            default_engine: config.engine.clone(),
            trace: collector.as_ref().map(|c| c.handle()),
            ..Default::default()
        },
    ));
    let sim = simulate_with_dispatcher(&scenario, &config, service.clone());
    drop(cli_span);
    drop(trace_scope);
    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        if let Err(e) = write_trace(path, collector) {
            return fail(e);
        }
    }
    let report = match sim {
        Ok(r) => r,
        Err(e) => return fail(format!("`{scenario_path}`: {e}")),
    };
    if !quiet {
        eprintln!("rfp: {}", report.summary());
        let (hits, warm, misses) = service.cache_counters();
        if hits + warm + misses > 0 {
            eprintln!("rfp: solve cache: {hits} hit(s), {warm} warm-start(s), {misses} miss(es)");
        }
        for e in report.events.iter().filter(|e| !e.violations.is_empty()) {
            for v in &e.violations {
                eprintln!("rfp: violation at t={}: {v}", e.time);
            }
        }
    }
    let rendered = report.to_json();
    if let Err(e) = write_output(report_path.as_deref(), &rendered) {
        return fail(e);
    }
    ExitCode::from(if report.violations() > 0 { 2 } else { 0 })
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServeConfig::default();
    let mut jobs_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => {
                let v = match take_value("--workers") {
                    Ok(v) => v,
                    Err(e) => return fail(e),
                };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => config.workers = n,
                    _ => return fail(format!("invalid --workers `{v}` (positive integer)")),
                }
            }
            "--engine" => match take_value("--engine") {
                Ok(v) => config.default_engine = v,
                Err(e) => return fail(e),
            },
            "--no-cache" => config.cache = false,
            "--jobs" => match take_value("--jobs") {
                Ok(v) => jobs_path = Some(v),
                Err(e) => return fail(e),
            },
            "--out" | "-o" => match take_value("--out") {
                Ok(v) => out_path = Some(v),
                Err(e) => return fail(e),
            },
            "--trace" => match take_value("--trace") {
                Ok(v) => trace_path = Some(v),
                Err(e) => return fail(e),
            },
            a => return fail(format!("unknown argument `{a}`\n{USAGE}")),
        }
    }
    let registry = registry();
    if registry.get(&config.default_engine).is_none() {
        let known = registry.ids().join(", ");
        return fail(format!("unknown engine `{}` (known: {known})", config.default_engine));
    }
    // A jobs file is a complete, finite stream: queue everything before the
    // workers start, so the response order (and the golden files CI diffs
    // against) is deterministic. Stdin is interactive — dispatch live.
    config.deferred = jobs_path.is_some();
    // Counters-only keeps memory bounded however long the session runs,
    // while still powering the `stats` verb (live counter snapshots) and an
    // end-of-session `--trace` dump.
    let collector = relocfp::trace::Collector::counters_only();
    config.trace = Some(collector.handle());

    let mut rendered: Vec<u8> = Vec::new();
    let summary = {
        let stdout = std::io::stdout();
        let mut output: Box<dyn std::io::Write> =
            if out_path.is_some() { Box::new(&mut rendered) } else { Box::new(stdout.lock()) };
        let served = match &jobs_path {
            Some(path) => match read_file(path) {
                Ok(doc) => serve(&mut doc.as_bytes(), &mut output, registry, &config),
                Err(e) => return fail(e),
            },
            None => {
                let stdin = std::io::stdin();
                serve(&mut stdin.lock(), &mut output, registry, &config)
            }
        };
        match served {
            Ok(s) => s,
            Err(e) => return fail(format!("serve failed: {e}")),
        }
    };
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            return fail(format!("cannot write `{path}`: {e}"));
        }
    }
    if let Some(path) = &trace_path {
        if let Err(e) = write_trace(path, &collector) {
            return fail(e);
        }
    }
    eprintln!("rfp: served {} job(s), {} error(s)", summary.jobs, summary.errors);
    ExitCode::from(if summary.errors > 0 { 1 } else { 0 })
}

/// Flattens a span forest into `(name, calls, total logical length)` rows,
/// first-seen order.
fn aggregate_spans(spans: &[relocfp::trace::Span], agg: &mut Vec<(String, u64, u64)>) {
    for span in spans {
        match agg.iter_mut().find(|(name, _, _)| name == &span.name) {
            Some((_, calls, logical)) => {
                *calls += 1;
                *logical += span.logical_len();
            }
            None => agg.push((span.name.clone(), 1, span.logical_len())),
        }
        aggregate_spans(&span.children, agg);
    }
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let path = match args.first().map(String::as_str) {
        Some("summarize") => match args {
            [_, path] => path,
            _ => return fail(format!("trace summarize needs exactly one FILE\n{USAGE}")),
        },
        Some(other) => return fail(format!("unknown trace subcommand `{other}`\n{USAGE}")),
        None => return fail(format!("trace needs a subcommand (summarize)\n{USAGE}")),
    };
    let text = match read_file(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let doc = match relocfp::trace::TraceDoc::from_json(&text) {
        Ok(d) => d,
        Err(e) => return fail(format!("`{path}`: {e}")),
    };
    println!("rfp-trace v1: {} track(s)", doc.tracks.len());
    for track in &doc.tracks {
        let mut spans: Vec<(String, u64, u64)> = Vec::new();
        aggregate_spans(&track.spans, &mut spans);
        println!("\ntrack {}", track.name);
        let width = spans
            .iter()
            .map(|(n, _, _)| n.len())
            .chain(track.counters.iter().map(|(n, _)| n.len()))
            .chain(track.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max(9);
        if !spans.is_empty() {
            println!("  {:<width$} {:>7} {:>8}", "span", "calls", "logical");
            for (name, calls, logical) in &spans {
                println!("  {name:<width$} {calls:>7} {logical:>8}");
            }
        }
        if !track.counters.is_empty() {
            println!("  {:<width$} {:>16}", "counter", "value");
            for (name, value) in &track.counters {
                println!("  {name:<width$} {value:>16}");
            }
        }
        if !track.histograms.is_empty() {
            println!(
                "  {:<width$} {:>5} {:>8} {:>6} {:>6} {:>6} {:>6}",
                "histogram", "n", "total", "p50", "p95", "min", "max"
            );
            for (name, h) in &track.histograms {
                println!(
                    "  {name:<width$} {:>5} {:>8} {:>6} {:>6} {:>6} {:>6}",
                    h.n, h.total, h.p50, h.p95, h.min, h.max
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// A typed document in flight between the two serialisations.
enum ConvertDoc {
    Problem(FloorplanProblem),
    Floorplan(Floorplan),
    Scenario(Scenario),
}

impl ConvertDoc {
    /// Decodes a JSON document, dispatching on its `"format"` header.
    fn from_json(label: &str, text: &str) -> Result<ConvertDoc, String> {
        let format = jsonio::parse(text)
            .and_then(|doc| Ok(doc.field("format")?.as_str()?.to_string()))
            .map_err(|e| format!("`{label}`: {e}"))?;
        let prefix = |e: &dyn std::fmt::Display| format!("`{label}`: {e}");
        match format.as_str() {
            jsonio::PROBLEM_FORMAT => {
                jsonio::read_problem(text).map(ConvertDoc::Problem).map_err(|e| prefix(&e))
            }
            jsonio::FLOORPLAN_FORMAT => {
                jsonio::read_floorplan(text).map(ConvertDoc::Floorplan).map_err(|e| prefix(&e))
            }
            SCENARIO_FORMAT => {
                read_scenario(text).map(ConvertDoc::Scenario).map_err(|e| prefix(&e))
            }
            other => Err(format!("`{label}`: unknown document format `{other}`")),
        }
    }

    /// Decodes an `rfpb` document, dispatching on its kind byte.
    fn from_bin(label: &str, bytes: &[u8]) -> Result<ConvertDoc, String> {
        let kind = binio::detect_kind(bytes).map_err(|e| format!("`{label}`: {e}"))?;
        let prefix = |e: &dyn std::fmt::Display| format!("`{label}`: {e}");
        match kind {
            binio::BinKind::Problem => {
                binio::read_problem_bin(bytes).map(ConvertDoc::Problem).map_err(|e| prefix(&e))
            }
            binio::BinKind::Floorplan => {
                binio::read_floorplan_bin(bytes).map(ConvertDoc::Floorplan).map_err(|e| prefix(&e))
            }
            binio::BinKind::Scenario => {
                read_scenario_bin(bytes).map(ConvertDoc::Scenario).map_err(|e| prefix(&e))
            }
        }
    }

    fn to_json(&self) -> String {
        match self {
            ConvertDoc::Problem(p) => jsonio::write_problem(p),
            ConvertDoc::Floorplan(fp) => jsonio::write_floorplan(fp),
            ConvertDoc::Scenario(s) => write_scenario(s),
        }
    }

    fn to_bin(&self) -> Vec<u8> {
        match self {
            ConvertDoc::Problem(p) => binio::write_problem_bin(p),
            ConvertDoc::Floorplan(fp) => binio::write_floorplan_bin(fp),
            ConvertDoc::Scenario(s) => write_scenario_bin(s),
        }
    }
}

fn cmd_convert(args: &[String]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut to_bin = false;
    let mut instance: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "-o" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return fail("--out needs a value"),
            },
            "--to" => match it.next().map(String::as_str) {
                Some("json") => to_bin = false,
                Some("bin") => to_bin = true,
                Some(other) => return fail(format!("--to expects json or bin, not `{other}`")),
                None => return fail("--to needs a value (json or bin)"),
            },
            a if a.starts_with('-') => return fail(format!("unknown option `{a}`")),
            a => {
                if instance.replace(a.to_string()).is_some() {
                    return fail(format!("more than one INSTANCE given\n{USAGE}"));
                }
            }
        }
    }
    let Some(instance) = instance else {
        return fail(format!("missing INSTANCE argument\n{USAGE}"));
    };
    let builtin: Option<String> = match instance.as_str() {
        "sdr" => Some(rfp_workloads::sdr_problem_json(0)),
        "sdr2" => Some(rfp_workloads::sdr_problem_json(2)),
        "sdr3" => Some(rfp_workloads::sdr_problem_json(3)),
        "smoke" => Some(rfp_workloads::smoke_scenario_json()),
        other if other == "defrag" || other.starts_with("defrag:") => {
            let mut spec = DefragWorkloadSpec::default();
            let parts: Vec<&str> = other.split(':').collect();
            if let Some(seed) = parts.get(1) {
                match seed.parse() {
                    Ok(s) => spec.seed = s,
                    Err(_) => return fail(format!("invalid defrag seed `{seed}`")),
                }
            }
            if let Some(n) = parts.get(2) {
                match n.parse() {
                    Ok(n) => spec.n_modules = n,
                    Err(_) => return fail(format!("invalid defrag module count `{n}`")),
                }
            }
            if parts.len() > 3 {
                return fail(format!("invalid defrag spec `{other}`"));
            }
            Some(write_scenario(&spec.generate()))
        }
        other if other == "synthetic" || other.starts_with("synthetic:") => {
            let mut spec = WorkloadSpec::default();
            let parts: Vec<&str> = other.split(':').collect();
            if let Some(seed) = parts.get(1) {
                match seed.parse() {
                    Ok(s) => spec.seed = s,
                    Err(_) => return fail(format!("invalid synthetic seed `{seed}`")),
                }
            }
            if let Some(n) = parts.get(2) {
                match n.parse() {
                    Ok(n) => spec.n_regions = n,
                    Err(_) => return fail(format!("invalid synthetic region count `{n}`")),
                }
            }
            if parts.len() > 3 {
                return fail(format!("invalid synthetic spec `{other}`"));
            }
            Some(spec.generate().problem_json())
        }
        _ => None,
    };
    let result = match builtin {
        Some(json) if !to_bin => write_output(out.as_deref(), &json),
        Some(json) => match ConvertDoc::from_json(&instance, &json) {
            Ok(doc) => write_output_bytes(out.as_deref(), &doc.to_bin()),
            Err(e) => return fail(e),
        },
        None => {
            // Not a built-in: treat the instance as a problem/floorplan/
            // scenario file in either serialisation.
            let bytes = match read_bytes(&instance) {
                Ok(b) => b,
                Err(e) => {
                    return fail(format!(
                        "{e} (known instances: sdr, sdr2, sdr3, \
                         synthetic[:SEED[:REGIONS]], smoke, defrag[:SEED[:MODULES]])"
                    ))
                }
            };
            let doc = if binio::is_binary(&bytes) {
                ConvertDoc::from_bin(&instance, &bytes)
            } else {
                utf8(&instance, bytes).and_then(|text| ConvertDoc::from_json(&instance, &text))
            };
            match doc {
                Ok(doc) if to_bin => write_output_bytes(out.as_deref(), &doc.to_bin()),
                Ok(doc) => write_output(out.as_deref(), &doc.to_json()),
                Err(e) => return fail(e),
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let mut grid_path: Option<String> = None;
    let mut workers: usize = 1;
    let mut out: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" | "-g" => match it.next() {
                Some(v) => grid_path = Some(v.clone()),
                None => return fail("--grid needs a value"),
            },
            "--workers" | "-w" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => workers = n,
                Some(_) => return fail("--workers needs a positive integer"),
                None => return fail("--workers needs a value"),
            },
            "--out" | "-o" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return fail("--out needs a value"),
            },
            "--trace" => match it.next() {
                Some(v) => trace_path = Some(v.clone()),
                None => return fail("--trace needs a value"),
            },
            "--quiet" | "-q" => quiet = true,
            a => return fail(format!("unknown argument `{a}`\n{USAGE}")),
        }
    }
    let grid = match grid_path {
        Some(path) => match read_file(&path)
            .and_then(|d| read_grid(&d).map_err(|e| format!("`{path}`: {e}")))
        {
            Ok(g) => g,
            Err(e) => return fail(e),
        },
        None => SweepGrid::smoke(),
    };
    // Runs land on plan-stable `run#####` tracks, so a sweep trace — like
    // the report — is byte-identical at every --workers value.
    let collector = trace_path.as_ref().map(|_| relocfp::trace::Collector::new());
    let trace_scope = collector.as_ref().map(|c| c.install("main"));
    let cli_span = relocfp::trace::span("cli.sweep");
    let swept = run_sweep(
        &grid,
        &SweepOptions {
            workers,
            trace: collector.as_ref().map(|c| c.handle()),
            ..Default::default()
        },
    );
    drop(cli_span);
    drop(trace_scope);
    if let (Some(path), Some(collector)) = (&trace_path, &collector) {
        if let Err(e) = write_trace(path, collector) {
            return fail(e);
        }
    }
    let outcome = match swept {
        Ok(o) => o,
        Err(e) => return fail(e.to_string()),
    };
    if let Err(e) = write_output(out.as_deref(), &outcome.report.to_json()) {
        return fail(e);
    }
    let violations: u64 = outcome.report.cells.iter().map(|c| c.violations).sum();
    if !quiet {
        eprintln!(
            "sweep `{}`: {} runs over {} cells on {} worker(s) in {:.2}s \
             ({:.1} KiB of shared binary trace)",
            outcome.report.grid,
            outcome.report.runs,
            outcome.report.cells.len(),
            workers,
            outcome.wall_seconds,
            outcome.trace_bytes as f64 / 1024.0,
        );
        if !outcome.over_budget.is_empty() {
            eprintln!(
                "warning: {} run(s) exceeded the per-run budget of {:.1}s: {:?}",
                outcome.over_budget.len(),
                grid.run_budget_seconds,
                outcome.over_budget,
            );
        }
        if violations > 0 {
            eprintln!("warning: {violations} constraint violation(s) across the fleet");
        }
    }
    if violations > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
