//! Work-stealing parallel branch-and-bound.
//!
//! The driver runs the same node computation as the serial loop in
//! [`crate::branch_bound`] — warm-started dual re-solves, pseudo-cost
//! branching, diving and rounding heuristics, prune-by-bound — but explores
//! the tree with a pool of worker threads over a shared node pool:
//!
//! * **ramp-up** — the root LP (including the cut-and-branch separation
//!   loop) and the first few levels of the tree are processed serially,
//!   best-first, until enough open nodes exist to feed every worker. A
//!   search that terminates during ramp-up (infeasible root, gap closed,
//!   budget) never spawns a thread;
//! * **per-thread deques** — open nodes are dealt round-robin into one
//!   deque per worker. An owner pushes its children at the *front* and pops
//!   from the front (LIFO: a best-child dive, maximising warm-start reuse
//!   from the `Arc`-shared parent basis), while idle workers *steal from
//!   the back* — the shallowest, largest subtrees — so stolen work is
//!   coarse and contention stays at the deque ends;
//! * **shared incumbent** — the best known objective is mirrored into an
//!   atomic (f64 bits) read before every node expansion, so all threads
//!   prune against the globally best solution with no lock on the hot
//!   path; installs go through a mutex that also drives the
//!   `on_incumbent` callback in monotone order;
//! * **per-thread pseudo-costs** — each worker learns branching costs
//!   locally and periodically folds its *delta* into a shared table
//!   ([`PseudoCosts::merge_diff`]), picking up everyone else's learning at
//!   the same time;
//! * **termination** — an atomic count of outstanding nodes (queued +
//!   in-hand) reaches zero exactly when the tree is exhausted; budget and
//!   cancellation exits cancel an internal stop token (a
//!   [`CancelToken::child`] of the user's token, so an internal stop never
//!   reports as a user cancellation) and leave unexplored nodes in the
//!   deques, which the finaliser folds into an *honest* best bound.
//!
//! Results are deterministic — the proven objective and status match the
//! serial search — but node counts and traversal order are not: whichever
//! worker finds an incumbent first reshapes everyone else's pruning.

use crate::branch_bound::{
    fractional_vars, BranchInfo, LpBackend, LpStats, Node, OrderedNode, PseudoCosts, Solver,
};
use crate::cancel::CancelToken;
use crate::cuts::Separator;
use crate::model::{Model, Sense};
use crate::simplex::{LpConfig, LpStatus, StandardForm};
use crate::solution::{Solution, SolveStatus};
use crate::tol;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Open nodes per worker the ramp-up phase aims for before distributing.
const RAMP_FANOUT: usize = 4;

/// Local pseudo-cost observations between merges into the shared table.
const PSEUDO_MERGE_PERIOD: usize = 64;

/// State shared by all workers of one parallel solve.
struct SharedSearch {
    /// One work deque per worker; owners use the front, thieves the back.
    deques: Vec<Mutex<VecDeque<Node>>>,
    /// Best known solution: `(objective in min sense, values)`.
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    /// `f64::to_bits` of the incumbent objective (min sense), `+inf` when
    /// none — the lock-free read for prune-by-bound on the hot path.
    inc_bits: AtomicU64,
    /// Nodes queued in deques plus nodes currently being expanded; the
    /// search is exhausted exactly when this reaches zero.
    outstanding: AtomicUsize,
    /// Internal stop signal: child of the user's cancel token.
    stop: CancelToken,
    /// Set when a budget/cancel exit left the tree unexplored.
    hit_limit: AtomicBool,
    /// Total nodes expanded (all workers).
    nodes: AtomicUsize,
    /// Monotone node ids (diagnostic; ordering in the deques is positional).
    next_id: AtomicUsize,
    /// Shared pseudo-cost table workers merge their deltas into.
    pseudo: Mutex<PseudoCosts>,
}

impl SharedSearch {
    /// The incumbent objective (min sense) as of the last install, `+inf`
    /// when none. Racy by design: a stale read only delays a prune.
    fn inc_obj(&self) -> f64 {
        f64::from_bits(self.inc_bits.load(Ordering::Relaxed))
    }

    /// `true` when a node with this bound cannot beat the incumbent by more
    /// than the configured gap.
    fn pruned(&self, bound_min: f64, gap_abs: f64, gap_rel: f64) -> bool {
        let inc = self.inc_obj();
        inc.is_finite()
            && (bound_min >= inc - gap_abs || inc - bound_min <= gap_rel * inc.abs().max(1.0))
    }

    /// Installs a strictly better incumbent; returns `true` when it won.
    /// The `notify` callback runs under the lock so reported improvements
    /// stay monotone across threads.
    fn try_install(&self, obj_min: f64, values: Vec<f64>, notify: &dyn Fn(f64)) -> bool {
        let mut guard = self.incumbent.lock().unwrap();
        if guard.as_ref().is_none_or(|(best, _)| obj_min < *best) {
            *guard = Some((obj_min, values));
            self.inc_bits.store(obj_min.to_bits(), Ordering::Relaxed);
            notify(obj_min);
            true
        } else {
            false
        }
    }
}

/// Per-worker tallies handed back to the finaliser.
struct WorkerOut {
    stats: LpStats,
}

/// Entry point: the parallel driver behind
/// [`Solver::solve_controlled`] when `threads > 1`.
///
/// The model arrives already presolved; `start` is the wall-clock origin of
/// the whole solve (shared with presolve and ramp-up for honest timings).
pub(crate) fn solve_parallel(
    solver: &Solver,
    model: &Model,
    warm_start: Option<&[f64]>,
    on_incumbent: Option<&(dyn Fn(f64, f64) + Send + Sync)>,
    start: Instant,
) -> Solution {
    // Same span name as the serial loop: a root-solved instance (which
    // never primes the pool, so never spawns a worker) must trace
    // identically at every thread count.
    let _search = rfp_trace::span("milp.search");
    let cfg = &solver.config;
    let threads = cfg.threads.max(2);
    let n = model.n_vars();
    let maximize = model.sense == Sense::Maximize;
    let to_min = |obj: f64| if maximize { -obj } else { obj };
    let from_min = |obj: f64| if maximize { -obj } else { obj };

    // The internal stop signal: cancelling the user's token stops the
    // workers, an internal stop (budget, gap) never sets the user's token.
    let stop = cfg.cancel.child();
    let mut lp_cfg = cfg.lp.clone();
    lp_cfg.cancel = stop.clone();
    lp_cfg.deadline = cfg.time_limit.map(|limit| start + limit);

    let mut backend = LpBackend::Revised(StandardForm::from_model(model));
    let int_vars: Vec<usize> = model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind.is_integral())
        .map(|(j, _)| j)
        .collect();
    let root_bounds: Vec<(f64, f64)> = model.vars().iter().map(|v| (v.lb, v.ub)).collect();

    let shared = SharedSearch {
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        incumbent: Mutex::new(None),
        inc_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        outstanding: AtomicUsize::new(0),
        stop,
        hit_limit: AtomicBool::new(false),
        nodes: AtomicUsize::new(0),
        next_id: AtomicUsize::new(0),
        pseudo: Mutex::new(PseudoCosts::new(n)),
    };
    let notify = |obj_min: f64| {
        rfp_trace::count("milp.incumbents", 1);
        if let Some(cb) = on_incumbent {
            cb(from_min(obj_min), start.elapsed().as_secs_f64());
        }
    };

    // Warm start: validate and adopt exactly like the serial path.
    if let Some(values) = warm_start {
        let integral = values.len() == n
            && int_vars.iter().all(|&j| (values[j] - values[j].round()).abs() <= cfg.int_tol);
        if integral && model.is_feasible(values, tol::WARM_START) {
            let obj_min = to_min(model.objective.eval(values));
            shared.try_install(obj_min, values.to_vec(), &notify);
            if cfg.stop_at_first_feasible {
                return Solution {
                    status: SolveStatus::Feasible,
                    objective: from_min(obj_min),
                    best_bound: from_min(f64::NEG_INFINITY),
                    values: values.to_vec(),
                    nodes: 0,
                    lp_iterations: 0,
                    lp_solves: 0,
                    lp_seconds: 0.0,
                    cuts: 0,
                    solve_seconds: start.elapsed().as_secs_f64(),
                    cancelled: false,
                };
            }
        }
    }

    // ---- Ramp-up: serial best-first expansion until the pool is primed ----
    let mut heap: BinaryHeap<OrderedNode> = BinaryHeap::new();
    heap.push(OrderedNode(Node {
        bounds: root_bounds,
        bound: f64::NEG_INFINITY,
        depth: 0,
        id: shared.next_id.fetch_add(1, Ordering::Relaxed),
        snapshot: None,
        branch: None,
    }));

    let mut separator = Separator::new(model);
    let mut cuts_added = 0usize;
    let mut stats = LpStats { iterations: 0, solves: 0, seconds: 0.0 };
    let mut pseudo_root = PseudoCosts::new(n);
    let mut root_status: Option<LpStatus> = None;
    let target = threads * RAMP_FANOUT;

    'ramp: while heap.len() < target {
        let Some(OrderedNode(node)) = heap.pop() else { break 'ramp };
        if let Some(mut values) = cfg.external_incumbents.poll() {
            if values.len() == n {
                for &j in &int_vars {
                    values[j] = values[j].round();
                }
                if model.is_feasible(&values, tol::WARM_START) {
                    let obj_min = to_min(model.objective.eval(&values));
                    if shared.try_install(obj_min, values, &notify) && cfg.stop_at_first_feasible {
                        heap.push(OrderedNode(node));
                        break 'ramp;
                    }
                }
            }
        }
        if shared.pruned(node.bound, cfg.gap_abs, cfg.gap_rel) {
            // Best-first: every remaining node has a bound at least as
            // large, so the whole frontier is gap-closed.
            heap.clear();
            break 'ramp;
        }
        let nodes_so_far = shared.nodes.load(Ordering::Relaxed);
        let node_budget = cfg.max_nodes > 0 && nodes_so_far >= cfg.max_nodes;
        let time_budget = cfg.time_limit.is_some_and(|limit| start.elapsed() >= limit);
        if node_budget || time_budget || cfg.cancel.is_cancelled() {
            shared.hit_limit.store(true, Ordering::Relaxed);
            heap.push(OrderedNode(node));
            break 'ramp;
        }
        let nodes_now = shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        rfp_trace::count("milp.nodes", 1);

        let root_lp_span = (node.depth == 0).then(|| rfp_trace::span("milp.root_lp"));
        let (mut lp, mut snap) =
            stats.timed(&backend, node.snapshot.as_deref(), &node.bounds, &lp_cfg);

        // Root separation loop, exactly as in the serial search.
        if node.depth == 0
            && !int_vars.is_empty()
            && cfg.cut_rounds > 0
            && lp.status == LpStatus::Optimal
        {
            for _ in 0..cfg.cut_rounds {
                if lp.status != LpStatus::Optimal
                    || crate::simplex::is_integral(model, &lp.values, cfg.int_tol)
                {
                    break;
                }
                let LpBackend::Revised(sf) = &mut backend else { break };
                let cuts = separator.separate(&lp.values, cfg.max_cuts_per_round);
                if cuts.is_empty() {
                    break;
                }
                let rows: Vec<_> = cuts.iter().map(|c| c.as_row()).collect();
                sf.add_rows(&rows);
                cuts_added += cuts.len();
                rfp_trace::count("milp.cuts", cuts.len() as u64);
                let warm = snap.as_ref().and_then(|s| sf.extend_snapshot(s));
                let (lp2, snap2) = stats.timed(&backend, warm.as_ref(), &node.bounds, &lp_cfg);
                lp = lp2;
                snap = snap2;
            }
        }
        drop(root_lp_span);
        if node.depth == 0 {
            root_status = Some(lp.status);
        }
        match lp.status {
            LpStatus::Infeasible => {
                solver.record_pseudo(&mut pseudo_root, &node, None);
                continue 'ramp;
            }
            LpStatus::Unbounded => {
                if node.depth == 0 && int_vars.is_empty() {
                    let mut sol = Solution::empty(SolveStatus::Unbounded, n);
                    sol.nodes = nodes_now;
                    sol.solve_seconds = start.elapsed().as_secs_f64();
                    sol.cancelled = cfg.cancel.is_cancelled();
                    return sol;
                }
                continue 'ramp;
            }
            LpStatus::IterationLimit | LpStatus::Optimal => {}
        }
        let node_bound_min =
            if lp.status == LpStatus::Optimal { to_min(lp.objective) } else { node.bound };
        if lp.status == LpStatus::Optimal {
            solver.record_pseudo(&mut pseudo_root, &node, Some(node_bound_min));
        }
        if shared.pruned(node_bound_min, cfg.gap_abs, 0.0) {
            rfp_trace::count("milp.pruned", 1);
            continue 'ramp;
        }

        let fractional = fractional_vars(&int_vars, &lp.values, cfg.int_tol);
        if fractional.is_empty() {
            rfp_trace::count("milp.integral", 1);
            let mut values = lp.values.clone();
            for &j in &int_vars {
                values[j] = values[j].round();
            }
            if model.is_feasible(&values, tol::WARM_START) {
                let obj_min = to_min(model.objective.eval(&values));
                if shared.try_install(obj_min, values, &notify) && cfg.stop_at_first_feasible {
                    break 'ramp;
                }
            }
            continue 'ramp;
        }

        // Heuristics while no incumbent exists (the root always dives).
        let dive_due = cfg.dive_period > 0
            && (node.depth == 0 || (nodes_now - 1).is_multiple_of(cfg.dive_period));
        if shared.inc_obj().is_infinite() && dive_due {
            if let Some((obj_raw, values)) = solver.dive(
                &backend,
                &lp_cfg,
                model,
                &int_vars,
                &node.bounds,
                &lp.values,
                snap.as_ref(),
                &mut stats,
                start,
            ) {
                let obj_min = to_min(obj_raw);
                if shared.try_install(obj_min, values, &notify) && cfg.stop_at_first_feasible {
                    break 'ramp;
                }
            }
        }
        if shared.inc_obj().is_infinite() || nodes_now % 16 == 1 {
            let mut rounded = lp.values.clone();
            for &jj in &int_vars {
                rounded[jj] = rounded[jj].round().clamp(node.bounds[jj].0, node.bounds[jj].1);
            }
            if model.is_feasible(&rounded, tol::FEASIBILITY) {
                let obj_min = to_min(model.objective.eval(&rounded));
                if shared.try_install(obj_min, rounded, &notify) && cfg.stop_at_first_feasible {
                    break 'ramp;
                }
            }
        }

        let (j, v) = solver.pick_branch(&pseudo_root, &fractional);
        let shared_snap = snap.map(std::sync::Arc::new);
        let frac = v - v.floor();
        let (lbj, ubj) = node.bounds[j];
        let floor = v.floor();
        let ceil = v.ceil();
        if floor >= lbj - 1e-9 {
            let mut b = node.bounds.clone();
            b[j] = (lbj, floor.min(ubj));
            heap.push(OrderedNode(Node {
                bounds: b,
                bound: node_bound_min,
                depth: node.depth + 1,
                id: shared.next_id.fetch_add(1, Ordering::Relaxed),
                snapshot: shared_snap.clone(),
                branch: Some(BranchInfo { var: j, up: false, parent_obj: node_bound_min, frac }),
            }));
        }
        if ceil <= ubj + 1e-9 {
            let mut b = node.bounds.clone();
            b[j] = (ceil.max(lbj), ubj);
            heap.push(OrderedNode(Node {
                bounds: b,
                bound: node_bound_min,
                depth: node.depth + 1,
                id: shared.next_id.fetch_add(1, Ordering::Relaxed),
                snapshot: shared_snap,
                branch: Some(BranchInfo { var: j, up: true, parent_obj: node_bound_min, frac }),
            }));
        }
    }

    // Seed the shared pseudo-cost table with the ramp-up's learning.
    shared.pseudo.lock().unwrap().merge_diff(&pseudo_root, &PseudoCosts::new(n));

    let interrupted = shared.hit_limit.load(Ordering::Relaxed)
        || shared.stop.is_cancelled()
        || (cfg.stop_at_first_feasible && shared.inc_obj().is_finite());
    let primed = heap.len() >= target && !interrupted;

    if primed {
        // Deal the open nodes round-robin, best-first, so every worker's
        // deque front holds one of the globally best nodes.
        let mut i = 0usize;
        while let Some(OrderedNode(node)) = heap.pop() {
            shared.outstanding.fetch_add(1, Ordering::SeqCst);
            shared.deques[i % threads].lock().unwrap().push_back(node);
            i += 1;
        }

        // ---- The parallel phase ----
        let backend = &backend;
        // Workers inherit the caller's collector explicitly, each under its
        // own track — tracks only materialise for workers that emit.
        let trace = rfp_trace::current();
        let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let shared = &shared;
                    let lp_cfg = &lp_cfg;
                    let int_vars = &int_vars;
                    let notify = &notify;
                    let trace = trace.clone();
                    scope.spawn(move || {
                        let _scope = trace.map(|h| h.install(&format!("milp.worker{w}")));
                        worker_loop(
                            w, solver, model, backend, lp_cfg, int_vars, shared, notify, start,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for out in outs {
            stats.iterations += out.stats.iterations;
            stats.solves += out.stats.solves;
            stats.seconds += out.stats.seconds;
        }
    }

    // ---- Finalise: identical accounting to the serial search ----
    let elapsed = start.elapsed().as_secs_f64();
    let was_cancelled = cfg.cancel.is_cancelled();
    let hit_limit = shared.hit_limit.load(Ordering::Relaxed);
    let nodes = shared.nodes.load(Ordering::Relaxed);
    // Unexplored nodes (ramp-up heap when never primed, deques otherwise)
    // bound the optimum from below in min sense.
    let mut open_bound = heap.iter().map(|OrderedNode(nd)| nd.bound).fold(f64::INFINITY, f64::min);
    let mut any_open = !heap.is_empty();
    for dq in &shared.deques {
        let dq = dq.lock().unwrap();
        any_open |= !dq.is_empty();
        open_bound = dq.iter().map(|nd| nd.bound).fold(open_bound, f64::min);
    }
    let incumbent = shared.incumbent.lock().unwrap().take();

    match incumbent {
        Some((obj_min, values)) => {
            let proven = !hit_limit && !any_open || {
                let bound = open_bound.min(obj_min);
                obj_min - bound <= cfg.gap_abs
                    || obj_min - bound <= cfg.gap_rel * obj_min.abs().max(1.0)
            };
            let bound_min = if !any_open && !hit_limit { obj_min } else { open_bound.min(obj_min) };
            Solution {
                status: if proven { SolveStatus::Optimal } else { SolveStatus::Feasible },
                objective: from_min(obj_min),
                best_bound: from_min(bound_min),
                values,
                nodes,
                lp_iterations: stats.iterations,
                lp_solves: stats.solves,
                lp_seconds: stats.seconds,
                cuts: cuts_added,
                solve_seconds: elapsed,
                cancelled: was_cancelled,
            }
        }
        None => {
            let status = if hit_limit {
                SolveStatus::Unknown
            } else if root_status == Some(LpStatus::Unbounded) {
                SolveStatus::Unbounded
            } else {
                SolveStatus::Infeasible
            };
            let mut sol = Solution::empty(status, n);
            sol.nodes = nodes;
            sol.lp_iterations = stats.iterations;
            sol.lp_solves = stats.solves;
            sol.lp_seconds = stats.seconds;
            sol.cuts = cuts_added;
            sol.solve_seconds = elapsed;
            sol.cancelled = was_cancelled;
            sol
        }
    }
}

/// Pops work: the worker's own deque front first (LIFO dive), then the
/// *backs* of the other deques in round-robin order (coarse steals).
fn pop_or_steal(w: usize, shared: &SharedSearch) -> Option<Node> {
    if let Some(node) = shared.deques[w].lock().unwrap().pop_front() {
        return Some(node);
    }
    let t = shared.deques.len();
    for k in 1..t {
        if let Some(node) = shared.deques[(w + k) % t].lock().unwrap().pop_back() {
            rfp_trace::count("milp.stolen", 1);
            return Some(node);
        }
    }
    None
}

/// One worker thread: pop/steal, expand, push children, repeat.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    solver: &Solver,
    model: &Model,
    backend: &LpBackend,
    lp_cfg: &LpConfig,
    int_vars: &[usize],
    shared: &SharedSearch,
    notify: &(dyn Fn(f64) + Sync),
    start: Instant,
) -> WorkerOut {
    let cfg = &solver.config;
    let maximize = model.sense == Sense::Maximize;
    let to_min = |obj: f64| if maximize { -obj } else { obj };
    let mut stats = LpStats { iterations: 0, solves: 0, seconds: 0.0 };
    // Local pseudo-cost table: starts from the shared table (ramp-up
    // learning included) and periodically merges its delta back.
    let mut pseudo = shared.pseudo.lock().unwrap().clone();
    let mut pseudo_base = pseudo.clone();
    let mut since_merge = 0usize;

    loop {
        if shared.stop.is_cancelled() || shared.outstanding.load(Ordering::SeqCst) == 0 {
            break;
        }
        let Some(node) = pop_or_steal(w, shared) else {
            std::thread::yield_now();
            continue;
        };

        // Budget / cancellation gate, mirroring the serial loop: the node
        // goes *back* so the finaliser sees its bound.
        let nodes_so_far = shared.nodes.load(Ordering::Relaxed);
        let node_budget = cfg.max_nodes > 0 && nodes_so_far >= cfg.max_nodes;
        let time_budget = cfg.time_limit.is_some_and(|limit| start.elapsed() >= limit);
        if node_budget || time_budget || cfg.cancel.is_cancelled() {
            shared.hit_limit.store(true, Ordering::Relaxed);
            shared.deques[w].lock().unwrap().push_front(node);
            shared.stop.cancel();
            break;
        }

        // Cheap lock-free prune against the freshest incumbent.
        if shared.pruned(node.bound, cfg.gap_abs, cfg.gap_rel) {
            rfp_trace::count("milp.pruned", 1);
            finish_node(shared);
            continue;
        }
        let nodes_now = shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        rfp_trace::count("milp.nodes", 1);

        let (lp, snap) = stats.timed(backend, node.snapshot.as_deref(), &node.bounds, lp_cfg);
        match lp.status {
            LpStatus::Infeasible => {
                solver.record_pseudo(&mut pseudo, &node, None);
                finish_node(shared);
                continue;
            }
            LpStatus::Unbounded => {
                // Pathological for a bounded-integer model; un-prunable.
                finish_node(shared);
                continue;
            }
            LpStatus::IterationLimit | LpStatus::Optimal => {}
        }
        let node_bound_min =
            if lp.status == LpStatus::Optimal { to_min(lp.objective) } else { node.bound };
        if lp.status == LpStatus::Optimal {
            solver.record_pseudo(&mut pseudo, &node, Some(node_bound_min));
        }
        if shared.pruned(node_bound_min, cfg.gap_abs, 0.0) {
            rfp_trace::count("milp.pruned", 1);
            finish_node(shared);
            continue;
        }

        let fractional = fractional_vars(int_vars, &lp.values, cfg.int_tol);
        if fractional.is_empty() {
            rfp_trace::count("milp.integral", 1);
            let mut values = lp.values.clone();
            for &j in int_vars {
                values[j] = values[j].round();
            }
            if model.is_feasible(&values, tol::WARM_START) {
                let obj_min = to_min(model.objective.eval(&values));
                if shared.try_install(obj_min, values, notify) && cfg.stop_at_first_feasible {
                    shared.stop.cancel();
                }
            }
            finish_node(shared);
            continue;
        }

        // Heuristics: dive while no incumbent exists, round periodically.
        let dive_due = cfg.dive_period > 0 && (nodes_now - 1).is_multiple_of(cfg.dive_period);
        if shared.inc_obj().is_infinite() && dive_due {
            if let Some((obj_raw, values)) = solver.dive(
                backend,
                lp_cfg,
                model,
                int_vars,
                &node.bounds,
                &lp.values,
                snap.as_ref(),
                &mut stats,
                start,
            ) {
                let obj_min = to_min(obj_raw);
                if shared.try_install(obj_min, values, notify) && cfg.stop_at_first_feasible {
                    shared.stop.cancel();
                }
            }
        }
        if shared.inc_obj().is_infinite() || nodes_now % 16 == 1 {
            let mut rounded = lp.values.clone();
            for &jj in int_vars {
                rounded[jj] = rounded[jj].round().clamp(node.bounds[jj].0, node.bounds[jj].1);
            }
            if model.is_feasible(&rounded, tol::FEASIBILITY) {
                let obj_min = to_min(model.objective.eval(&rounded));
                if shared.try_install(obj_min, rounded, notify) && cfg.stop_at_first_feasible {
                    shared.stop.cancel();
                }
            }
        }

        // Branch: children go to the *front* of the owner's deque, floor
        // child on top (popped next), so the owner keeps diving while
        // thieves take the shallower work at the back.
        let (j, v) = solver.pick_branch(&pseudo, &fractional);
        let shared_snap = snap.map(std::sync::Arc::new);
        let frac = v - v.floor();
        let (lbj, ubj) = node.bounds[j];
        let floor = v.floor();
        let ceil = v.ceil();
        {
            let mut dq = shared.deques[w].lock().unwrap();
            if ceil <= ubj + 1e-9 {
                let mut b = node.bounds.clone();
                b[j] = (ceil.max(lbj), ubj);
                shared.outstanding.fetch_add(1, Ordering::SeqCst);
                dq.push_front(Node {
                    bounds: b,
                    bound: node_bound_min,
                    depth: node.depth + 1,
                    id: shared.next_id.fetch_add(1, Ordering::Relaxed),
                    snapshot: shared_snap.clone(),
                    branch: Some(BranchInfo { var: j, up: true, parent_obj: node_bound_min, frac }),
                });
            }
            if floor >= lbj - 1e-9 {
                let mut b = node.bounds.clone();
                b[j] = (lbj, floor.min(ubj));
                shared.outstanding.fetch_add(1, Ordering::SeqCst);
                dq.push_front(Node {
                    bounds: b,
                    bound: node_bound_min,
                    depth: node.depth + 1,
                    id: shared.next_id.fetch_add(1, Ordering::Relaxed),
                    snapshot: shared_snap,
                    branch: Some(BranchInfo {
                        var: j,
                        up: false,
                        parent_obj: node_bound_min,
                        frac,
                    }),
                });
            }
        }
        finish_node(shared);

        since_merge += 1;
        if since_merge >= PSEUDO_MERGE_PERIOD {
            since_merge = 0;
            let mut global = shared.pseudo.lock().unwrap();
            global.merge_diff(&pseudo, &pseudo_base);
            pseudo = global.clone();
            drop(global);
            pseudo_base = pseudo.clone();
        }
    }

    // Final merge so the table reflects every worker's learning.
    shared.pseudo.lock().unwrap().merge_diff(&pseudo, &pseudo_base);
    WorkerOut { stats }
}

/// Marks one outstanding node as fully expanded; wakes everyone when it was
/// the last.
fn finish_node(shared: &SharedSearch) {
    if shared.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
        shared.stop.cancel();
    }
}
