//! Branch-and-bound MILP search on top of the revised simplex.
//!
//! The search is a best-first exploration of the bound-tightening tree,
//! rebuilt around warm-started node re-solves:
//!
//! * the model is tightened by [`crate::presolve`] (bound propagation and
//!   big-M coefficient strengthening) before the root LP is ever built;
//! * the [`crate::simplex::StandardForm`] is built once; every node carries
//!   an `Arc` to its parent's optimal **basis snapshot**, so the child LP is
//!   re-solved with the **dual simplex** in a handful of pivots after the
//!   single bound change of the branch (cold fallback when the snapshot is
//!   unusable);
//! * after the root LP, a **separation loop** adds cover and clique cuts
//!   ([`crate::cuts`]) and re-solves dually — "cut and branch";
//! * branching is pluggable ([`BranchRule`]): **pseudo-cost** branching
//!   (objective degradation per unit of fractionality, learned online) with
//!   a most-fractional fallback while the costs are cold, or plain
//!   most-fractional;
//! * nodes are pruned by bound against the incumbent; a rounding heuristic
//!   and an LP-guided diving heuristic (warm-started along the dive path)
//!   find incumbents early;
//! * node order is deterministic (ties broken by node id), so repeated
//!   solves of the same model explore the same tree;
//! * with [`SolverConfig::threads`] ` > 1` the tree is explored by the
//!   work-stealing parallel driver in [`crate::parallel`]; `threads = 1`
//!   keeps the serial loop below, bit-identical to previous releases.
//!
//! The retired dense tableau can be selected with
//! [`SolverConfig::use_dense_lp`] to benchmark the revised engine against
//! the old from-scratch path.

use crate::cancel::CancelToken;
use crate::cuts::Separator;
use crate::dense::DenseForm;
use crate::model::{Model, Sense};
use crate::simplex::{BasisSnapshot, LpConfig, LpResult, LpStatus, StandardForm};
use crate::solution::{Solution, SolveStatus};
use crate::tol;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of externally-discovered feasible assignments, polled once per
/// branch-and-bound node.
///
/// This is how racing engines cooperate: a portfolio can hand a solution
/// found by one engine to the still-running MILP search, where it is
/// validated and — when feasible, integral and better than the current
/// incumbent — installed as a genuine incumbent, so the normal
/// prune-by-bound machinery cuts the tree. Installing a *solution* rather
/// than a bare objective bound keeps the status accounting sound: a search
/// whose tree empties still holds a feasible assignment to return.
///
/// The closure should be cheap and non-blocking (e.g. a version-gated read
/// of a shared slot returning `None` when nothing new arrived); it is called
/// on the hot path.
#[derive(Clone, Default)]
pub struct ExternalIncumbents {
    source: Option<Arc<dyn Fn() -> Option<Vec<f64>> + Send + Sync>>,
}

impl ExternalIncumbents {
    /// A source that never produces anything (the default).
    pub fn none() -> Self {
        ExternalIncumbents::default()
    }

    /// Wraps a polling closure. Returning `None` means "nothing new";
    /// returning `Some(values)` proposes a full variable assignment, which
    /// the solver validates before adopting.
    pub fn from_fn(f: impl Fn() -> Option<Vec<f64>> + Send + Sync + 'static) -> Self {
        ExternalIncumbents { source: Some(Arc::new(f)) }
    }

    /// Polls the source, if any.
    pub fn poll(&self) -> Option<Vec<f64>> {
        self.source.as_ref().and_then(|f| f())
    }
}

impl fmt::Debug for ExternalIncumbents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.source.is_some() {
            "ExternalIncumbents(set)"
        } else {
            "ExternalIncumbents(none)"
        })
    }
}

/// Selection rule for the branching variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRule {
    /// Pseudo-cost branching: pick the variable maximising the product of
    /// estimated objective degradations of the two children. Falls back to
    /// the global average pseudo-cost for variables with fewer than
    /// `reliability` observations per direction, and to most-fractional
    /// while no observations exist at all.
    PseudoCost {
        /// Observations per direction before a variable's own history is
        /// trusted over the global average.
        reliability: u32,
    },
    /// Branch on the variable whose LP value is farthest from integral.
    MostFractional,
}

impl Default for BranchRule {
    fn default() -> Self {
        BranchRule::PseudoCost { reliability: 1 }
    }
}

/// Configuration of the MILP solver.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// LP (simplex) parameters.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Absolute optimality gap at which the search stops.
    pub gap_abs: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_rel: f64,
    /// Maximum number of branch-and-bound nodes (0 = unlimited).
    pub max_nodes: usize,
    /// Wall-clock time limit.
    pub time_limit: Option<Duration>,
    /// Stop as soon as any feasible solution is found (feasibility mode, used
    /// by the floorplanner's feasibility analysis).
    pub stop_at_first_feasible: bool,
    /// While no incumbent exists, run the diving heuristic every this many
    /// nodes (0 disables diving; it always runs at the root).
    pub dive_period: usize,
    /// Branching rule.
    pub branching: BranchRule,
    /// Maximum cut-separation rounds at the root (0 disables cuts).
    pub cut_rounds: usize,
    /// Maximum cuts added per separation round.
    pub max_cuts_per_round: usize,
    /// Solve node LPs with the retired dense tableau instead of the revised
    /// simplex (benchmark baseline; disables warm re-solves and cuts).
    pub use_dense_lp: bool,
    /// Worker threads for the branch-and-bound tree search. `1` (the
    /// default) runs the serial loop, bit-identical to previous releases —
    /// same node order, same proof. Larger values explore the tree with the
    /// work-stealing parallel driver: results (proven objective, status) are
    /// deterministic, node *counts* and traversal order are not. Ignored
    /// (treated as `1`) by the dense benchmarking backend.
    pub threads: usize,
    /// Run [`crate::presolve`] (bound propagation + big-M coefficient
    /// tightening) on the model before building the root LP. On by default;
    /// disable to benchmark the raw formulation.
    pub presolve: bool,
    /// Cooperative cancellation flag, polled once per node and per dive
    /// step. Share a clone of the token with another thread to abort the
    /// search; a cancelled solve reports [`crate::SolveStatus::Feasible`] or
    /// [`crate::SolveStatus::Unknown`] with [`Solution::cancelled`] set.
    pub cancel: CancelToken,
    /// Externally-discovered incumbents (see [`ExternalIncumbents`]), polled
    /// once per node.
    pub external_incumbents: ExternalIncumbents,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            lp: LpConfig::default(),
            int_tol: tol::INTEGRALITY,
            gap_abs: tol::GAP_ABS,
            gap_rel: tol::GAP_REL,
            max_nodes: 0,
            time_limit: None,
            stop_at_first_feasible: false,
            dive_period: 256,
            branching: BranchRule::default(),
            cut_rounds: 10,
            max_cuts_per_round: 64,
            use_dense_lp: false,
            threads: 1,
            presolve: true,
            cancel: CancelToken::default(),
            external_incumbents: ExternalIncumbents::none(),
        }
    }
}

impl SolverConfig {
    /// A configuration with a node budget and time limit suitable for use
    /// inside benchmarks.
    pub fn with_limits(max_nodes: usize, time_limit_secs: f64) -> Self {
        SolverConfig {
            max_nodes,
            time_limit: Some(Duration::from_secs_f64(time_limit_secs)),
            ..SolverConfig::default()
        }
    }
}

/// The MILP solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Solver configuration.
    pub config: SolverConfig,
}

/// Which branch produced a node, for pseudo-cost learning.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BranchInfo {
    /// Branched variable (structural index).
    pub(crate) var: usize,
    /// `true` for the up (`x ≥ ⌈v⌉`) child.
    pub(crate) up: bool,
    /// Parent LP objective in minimisation sense.
    pub(crate) parent_obj: f64,
    /// Fractional part `v − ⌊v⌋` of the branched value.
    pub(crate) frac: f64,
}

/// A node of the branch-and-bound tree.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Bounds of the structural variables at this node.
    pub(crate) bounds: Vec<(f64, f64)>,
    /// Parent LP bound in minimisation sense (used for ordering).
    pub(crate) bound: f64,
    /// Depth in the tree.
    pub(crate) depth: usize,
    /// Monotone id for deterministic tie-breaking.
    pub(crate) id: usize,
    /// Parent's optimal basis, shared between siblings (and, in the parallel
    /// driver, across worker threads — hence `Arc`).
    pub(crate) snapshot: Option<Arc<BasisSnapshot>>,
    /// Branching decision that created this node.
    pub(crate) branch: Option<BranchInfo>,
}

/// Best-first ordering: smaller bound first, then deeper, then older.
pub(crate) struct OrderedNode(pub(crate) Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound on top.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// Online pseudo-cost statistics per integer variable and direction.
#[derive(Debug, Clone)]
pub(crate) struct PseudoCosts {
    up_sum: Vec<f64>,
    up_cnt: Vec<u32>,
    down_sum: Vec<f64>,
    down_cnt: Vec<u32>,
}

impl PseudoCosts {
    pub(crate) fn new(n: usize) -> PseudoCosts {
        PseudoCosts {
            up_sum: vec![0.0; n],
            up_cnt: vec![0; n],
            down_sum: vec![0.0; n],
            down_cnt: vec![0; n],
        }
    }

    /// Records the observed per-unit objective degradation of a branch.
    fn record(&mut self, var: usize, up: bool, per_unit: f64) {
        let per_unit = per_unit.max(0.0);
        if up {
            self.up_sum[var] += per_unit;
            self.up_cnt[var] += 1;
        } else {
            self.down_sum[var] += per_unit;
            self.down_cnt[var] += 1;
        }
    }

    fn global_avg(sums: &[f64], cnts: &[u32]) -> Option<f64> {
        let total: u32 = cnts.iter().sum();
        (total > 0).then(|| sums.iter().sum::<f64>() / f64::from(total))
    }

    /// Folds the *delta* between a worker's current table (`newer`) and the
    /// snapshot it started from (`older`) into `self`. The parallel driver
    /// uses this to merge per-thread pseudo-cost learning into the shared
    /// table without double-counting the observations the worker inherited.
    pub(crate) fn merge_diff(&mut self, newer: &PseudoCosts, older: &PseudoCosts) {
        for j in 0..self.up_sum.len() {
            self.up_sum[j] += newer.up_sum[j] - older.up_sum[j];
            self.up_cnt[j] += newer.up_cnt[j] - older.up_cnt[j];
            self.down_sum[j] += newer.down_sum[j] - older.down_sum[j];
            self.down_cnt[j] += newer.down_cnt[j] - older.down_cnt[j];
        }
    }

    /// Picks the branching variable among `candidates` (`(index, value)` of
    /// the fractional integer variables), or falls back to most-fractional
    /// while every pseudo-cost is still cold.
    fn select(&self, candidates: &[(usize, f64)], reliability: u32) -> Option<(usize, f64)> {
        let avg_up = Self::global_avg(&self.up_sum, &self.up_cnt);
        let avg_down = Self::global_avg(&self.down_sum, &self.down_cnt);
        if avg_up.is_none() && avg_down.is_none() {
            return None; // completely cold: caller falls back
        }
        let avg_up = avg_up.unwrap_or(1.0);
        let avg_down = avg_down.unwrap_or(1.0);
        let mut best: Option<(usize, f64, f64)> = None; // (var, value, score)
        for &(j, v) in candidates {
            let f = v - v.floor();
            let cost_down = if self.down_cnt[j] >= reliability {
                self.down_sum[j] / f64::from(self.down_cnt[j])
            } else {
                avg_down
            };
            let cost_up = if self.up_cnt[j] >= reliability {
                self.up_sum[j] / f64::from(self.up_cnt[j])
            } else {
                avg_up
            };
            let score = (cost_down * f).max(1e-6) * (cost_up * (1.0 - f)).max(1e-6);
            if best.is_none_or(|(_, _, b)| score > b) {
                best = Some((j, v, score));
            }
        }
        best.map(|(j, v, _)| (j, v))
    }
}

/// The LP engine behind the tree search: the revised simplex with warm
/// starts, or the retired dense tableau as a benchmarking baseline.
pub(crate) enum LpBackend {
    Revised(StandardForm),
    Dense(DenseForm),
}

impl LpBackend {
    pub(crate) fn solve(
        &self,
        snapshot: Option<&BasisSnapshot>,
        bounds: &[(f64, f64)],
        cfg: &LpConfig,
    ) -> (LpResult, Option<BasisSnapshot>) {
        match self {
            LpBackend::Revised(sf) => match snapshot {
                Some(s) => sf.solve_warm(s, Some(bounds), cfg),
                None => sf.solve_cold(Some(bounds), cfg),
            },
            LpBackend::Dense(df) => (df.solve_with_bounds(Some(bounds), cfg), None),
        }
    }
}

/// Bookkeeping shared by every LP solve of one `solve_with_start` call.
pub(crate) struct LpStats {
    pub(crate) iterations: usize,
    pub(crate) solves: usize,
    pub(crate) seconds: f64,
}

impl LpStats {
    pub(crate) fn timed(
        &mut self,
        backend: &LpBackend,
        snapshot: Option<&BasisSnapshot>,
        bounds: &[(f64, f64)],
        cfg: &LpConfig,
    ) -> (LpResult, Option<BasisSnapshot>) {
        let t0 = Instant::now();
        let out = backend.solve(snapshot, bounds, cfg);
        self.seconds += t0.elapsed().as_secs_f64();
        self.solves += 1;
        self.iterations += out.0.iterations;
        // LP-solve granularity is the instrumentation floor: per-pivot
        // events would swamp the buffers for no diagnostic gain.
        rfp_trace::count("milp.lp.solves", 1);
        rfp_trace::record("milp.lp.iterations", out.0.iterations as u64);
        out
    }
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// Solves a mixed-integer linear program.
    pub fn solve(&self, model: &Model) -> Solution {
        self.solve_with_start(model, None)
    }

    /// Solves a mixed-integer linear program from a warm start.
    ///
    /// `warm_start` is a candidate assignment of every variable; when it is
    /// feasible (within tolerance) and integral on the integer variables it
    /// becomes the initial incumbent, which prunes the search from the first
    /// node. An infeasible or malformed start is silently ignored.
    pub fn solve_with_start(&self, model: &Model, warm_start: Option<&[f64]>) -> Solution {
        self.solve_controlled(model, warm_start, None)
    }

    /// Solves a mixed-integer linear program with full run-time control:
    /// a warm start (see [`Solver::solve_with_start`]) and an
    /// incumbent-progress callback invoked with `(objective, seconds)` —
    /// objective in the model's optimisation sense — every time the search
    /// finds a strictly better feasible solution. Cancellation is configured
    /// through [`SolverConfig::cancel`].
    pub fn solve_controlled(
        &self,
        model: &Model,
        warm_start: Option<&[f64]>,
        on_incumbent: Option<&(dyn Fn(f64, f64) + Send + Sync)>,
    ) -> Solution {
        let start = Instant::now();
        // Presolve up front so the serial and parallel drivers both search
        // the tightened (integer-equivalent) model. Variable indices are
        // unchanged, so warm starts and external incumbents stay valid.
        let pre;
        let model = if self.config.presolve {
            {
                let _presolve = rfp_trace::span("milp.presolve");
                pre = crate::presolve::presolve(model);
            }
            rfp_trace::count("milp.presolve.rounds", pre.stats.rounds as u64);
            rfp_trace::count("milp.presolve.bounds_tightened", pre.stats.bounds_tightened as u64);
            rfp_trace::count("milp.presolve.coeffs_tightened", pre.stats.coeffs_tightened as u64);
            if pre.stats.infeasible {
                rfp_trace::count("milp.presolve.infeasible", 1);
                let mut sol = Solution::empty(SolveStatus::Infeasible, model.n_vars());
                sol.solve_seconds = start.elapsed().as_secs_f64();
                return sol;
            }
            &pre.model
        } else {
            model
        };
        // The dense tableau is a frozen serial benchmarking baseline; the
        // parallel driver only fronts the revised simplex.
        if self.config.threads > 1 && !self.config.use_dense_lp {
            return crate::parallel::solve_parallel(self, model, warm_start, on_incumbent, start);
        }
        self.solve_serial(model, warm_start, on_incumbent, start)
    }

    /// The serial best-first search loop (`threads = 1`), unchanged from
    /// previous releases: same node order, same proof.
    fn solve_serial(
        &self,
        model: &Model,
        warm_start: Option<&[f64]>,
        on_incumbent: Option<&(dyn Fn(f64, f64) + Send + Sync)>,
        start: Instant,
    ) -> Solution {
        let _search = rfp_trace::span("milp.search");
        let notify = |obj_model_sense: f64| {
            rfp_trace::count("milp.incumbents", 1);
            if let Some(cb) = on_incumbent {
                cb(obj_model_sense, start.elapsed().as_secs_f64());
            }
        };
        let n = model.n_vars();
        let maximize = model.sense == Sense::Maximize;
        // Internal bounding works in minimisation sense.
        let to_min = |obj: f64| if maximize { -obj } else { obj };
        let from_min = |obj: f64| if maximize { -obj } else { obj };

        // The LP layer shares the solver's cancellation token and deadline so
        // an abort fires even in the middle of a long relaxation solve.
        let mut lp_cfg = self.config.lp.clone();
        lp_cfg.cancel = self.config.cancel.clone();
        lp_cfg.deadline = self.config.time_limit.map(|limit| start + limit);

        let mut backend = if self.config.use_dense_lp {
            LpBackend::Dense(DenseForm::from_model(model))
        } else {
            LpBackend::Revised(StandardForm::from_model(model))
        };
        let int_vars: Vec<usize> = model
            .vars()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integral())
            .map(|(j, _)| j)
            .collect();

        let root_bounds: Vec<(f64, f64)> = model.vars().iter().map(|v| (v.lb, v.ub)).collect();

        let mut heap: BinaryHeap<OrderedNode> = BinaryHeap::new();
        let mut next_id = 0usize;
        heap.push(OrderedNode(Node {
            bounds: root_bounds,
            bound: f64::NEG_INFINITY,
            depth: 0,
            id: next_id,
            snapshot: None,
            branch: None,
        }));
        next_id += 1;

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (obj in min sense, values)
        if let Some(values) = warm_start {
            let integral = values.len() == n
                && int_vars
                    .iter()
                    .all(|&j| (values[j] - values[j].round()).abs() <= self.config.int_tol);
            if integral && model.is_feasible(values, tol::WARM_START) {
                let obj_min = to_min(model.objective.eval(values));
                incumbent = Some((obj_min, values.to_vec()));
                notify(from_min(obj_min));
                if self.config.stop_at_first_feasible {
                    return Solution {
                        status: SolveStatus::Feasible,
                        objective: from_min(obj_min),
                        best_bound: from_min(f64::NEG_INFINITY),
                        values: values.to_vec(),
                        nodes: 0,
                        lp_iterations: 0,
                        lp_solves: 0,
                        lp_seconds: 0.0,
                        cuts: 0,
                        solve_seconds: start.elapsed().as_secs_f64(),
                        cancelled: false,
                    };
                }
            }
        }

        let mut pseudo = PseudoCosts::new(n);
        let mut separator = Separator::new(model);
        let mut cuts_added = 0usize;
        let mut stats = LpStats { iterations: 0, solves: 0, seconds: 0.0 };
        let mut best_bound_min = f64::NEG_INFINITY;
        let mut nodes = 0usize;
        let mut root_status: Option<LpStatus> = None;
        let mut hit_limit = false;

        while let Some(OrderedNode(node)) = heap.pop() {
            // Adopt externally-discovered solutions (portfolio cooperation)
            // before any pruning decision, so a fresh incumbent cuts this
            // very node.
            if let Some(mut values) = self.config.external_incumbents.poll() {
                if values.len() == n {
                    for &j in &int_vars {
                        values[j] = values[j].round();
                    }
                    if model.is_feasible(&values, tol::WARM_START) {
                        let obj_min = to_min(model.objective.eval(&values));
                        if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                            incumbent = Some((obj_min, values));
                            notify(from_min(obj_min));
                            if self.config.stop_at_first_feasible {
                                break;
                            }
                        }
                    }
                }
            }
            // Global bound = min over the popped node and everything remaining.
            best_bound_min = node.bound.max(best_bound_min.min(node.bound));
            if let Some((inc_obj, _)) = &incumbent {
                let gap = inc_obj - node.bound;
                if gap <= self.config.gap_abs || gap <= self.config.gap_rel * inc_obj.abs().max(1.0)
                {
                    // Every remaining node has a bound at least as large.
                    break;
                }
            }
            let node_budget = self.config.max_nodes > 0 && nodes >= self.config.max_nodes;
            let time_budget = self.config.time_limit.is_some_and(|limit| start.elapsed() >= limit);
            if node_budget || time_budget || self.config.cancel.is_cancelled() {
                hit_limit = true;
                // Keep the node's bound visible to the final gap accounting.
                heap.push(OrderedNode(node));
                break;
            }

            nodes += 1;
            rfp_trace::count("milp.nodes", 1);
            let root_lp_span = (node.depth == 0).then(|| rfp_trace::span("milp.root_lp"));
            let (mut lp, mut snap) =
                stats.timed(&backend, node.snapshot.as_deref(), &node.bounds, &lp_cfg);

            // Root separation loop: add violated cover/clique cuts and
            // re-solve dually from the extended basis ("cut and branch").
            if node.depth == 0
                && !int_vars.is_empty()
                && self.config.cut_rounds > 0
                && lp.status == LpStatus::Optimal
            {
                for _ in 0..self.config.cut_rounds {
                    if lp.status != LpStatus::Optimal
                        || crate::simplex::is_integral(model, &lp.values, self.config.int_tol)
                    {
                        break;
                    }
                    let LpBackend::Revised(sf) = &mut backend else { break };
                    let cuts = separator.separate(&lp.values, self.config.max_cuts_per_round);
                    if cuts.is_empty() {
                        break;
                    }
                    let rows: Vec<_> = cuts.iter().map(|c| c.as_row()).collect();
                    sf.add_rows(&rows);
                    cuts_added += cuts.len();
                    rfp_trace::count("milp.cuts", cuts.len() as u64);
                    let warm = snap.as_ref().and_then(|s| sf.extend_snapshot(s));
                    let (lp2, snap2) = stats.timed(&backend, warm.as_ref(), &node.bounds, &lp_cfg);
                    lp = lp2;
                    snap = snap2;
                }
            }
            drop(root_lp_span);

            if node.depth == 0 {
                root_status = Some(lp.status);
            }
            match lp.status {
                LpStatus::Infeasible => {
                    self.record_pseudo(&mut pseudo, &node, None);
                    continue;
                }
                LpStatus::Unbounded => {
                    if node.depth == 0 && int_vars.is_empty() {
                        let mut sol = Solution::empty(SolveStatus::Unbounded, n);
                        sol.nodes = nodes;
                        sol.solve_seconds = start.elapsed().as_secs_f64();
                        sol.cancelled = self.config.cancel.is_cancelled();
                        return sol;
                    }
                    // An unbounded relaxation of a bounded-integer problem is
                    // pathological; treat the node as un-prunable.
                    continue;
                }
                LpStatus::IterationLimit => {
                    // Treat conservatively: cannot trust the bound, but keep
                    // searching children with the parent bound.
                }
                LpStatus::Optimal => {}
            }

            let node_bound_min =
                if lp.status == LpStatus::Optimal { to_min(lp.objective) } else { node.bound };
            if lp.status == LpStatus::Optimal {
                self.record_pseudo(&mut pseudo, &node, Some(node_bound_min));
            }

            // Prune by bound.
            if let Some((inc_obj, _)) = &incumbent {
                if node_bound_min >= *inc_obj - self.config.gap_abs {
                    rfp_trace::count("milp.pruned", 1);
                    continue;
                }
            }

            // Integral solution?
            let fractional = fractional_vars(&int_vars, &lp.values, self.config.int_tol);

            if fractional.is_empty() {
                // LP solution is integral: candidate incumbent.
                rfp_trace::count("milp.integral", 1);
                let mut values = lp.values.clone();
                for &j in &int_vars {
                    values[j] = values[j].round();
                }
                if model.is_feasible(&values, tol::WARM_START) {
                    let obj_min = to_min(model.objective.eval(&values));
                    if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                        incumbent = Some((obj_min, values));
                        notify(from_min(obj_min));
                        if self.config.stop_at_first_feasible {
                            break;
                        }
                    }
                }
                continue;
            }

            // LP-guided diving until the first incumbent is known.
            let dive_due = self.config.dive_period > 0
                && (node.depth == 0 || (nodes - 1).is_multiple_of(self.config.dive_period));
            if incumbent.is_none() && dive_due {
                if let Some((obj_min_raw, values)) = self.dive(
                    &backend,
                    &lp_cfg,
                    model,
                    &int_vars,
                    &node.bounds,
                    &lp.values,
                    snap.as_ref(),
                    &mut stats,
                    start,
                ) {
                    let obj_min = to_min(obj_min_raw);
                    if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                        incumbent = Some((obj_min, values));
                        notify(from_min(obj_min));
                        if self.config.stop_at_first_feasible {
                            break;
                        }
                    }
                }
            }

            // Rounding heuristic before branching.
            if incumbent.is_none() || nodes % 16 == 1 {
                let mut rounded = lp.values.clone();
                for &jj in &int_vars {
                    rounded[jj] = rounded[jj].round().clamp(node.bounds[jj].0, node.bounds[jj].1);
                }
                if model.is_feasible(&rounded, tol::FEASIBILITY) {
                    let obj_min = to_min(model.objective.eval(&rounded));
                    if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                        incumbent = Some((obj_min, rounded));
                        notify(from_min(obj_min));
                        if self.config.stop_at_first_feasible {
                            break;
                        }
                    }
                }
            }

            // Branch.
            let (j, v) = self.pick_branch(&pseudo, &fractional);
            let shared_snap = snap.map(Arc::new);
            let frac = v - v.floor();
            let floor = v.floor();
            let ceil = v.ceil();
            let (lbj, ubj) = node.bounds[j];
            if floor >= lbj - 1e-9 {
                let mut b = node.bounds.clone();
                b[j] = (lbj, floor.min(ubj));
                heap.push(OrderedNode(Node {
                    bounds: b,
                    bound: node_bound_min,
                    depth: node.depth + 1,
                    id: next_id,
                    snapshot: shared_snap.clone(),
                    branch: Some(BranchInfo {
                        var: j,
                        up: false,
                        parent_obj: node_bound_min,
                        frac,
                    }),
                }));
                next_id += 1;
            }
            if ceil <= ubj + 1e-9 {
                let mut b = node.bounds.clone();
                b[j] = (ceil.max(lbj), ubj);
                heap.push(OrderedNode(Node {
                    bounds: b,
                    bound: node_bound_min,
                    depth: node.depth + 1,
                    id: next_id,
                    snapshot: shared_snap,
                    branch: Some(BranchInfo { var: j, up: true, parent_obj: node_bound_min, frac }),
                }));
                next_id += 1;
            }
        }

        let elapsed = start.elapsed().as_secs_f64();
        let was_cancelled = self.config.cancel.is_cancelled();
        // Remaining open nodes bound the optimum from below (min sense).
        let open_bound = heap.iter().map(|OrderedNode(nd)| nd.bound).fold(f64::INFINITY, f64::min);

        match incumbent {
            Some((obj_min, values)) => {
                let proven = !hit_limit && heap.is_empty() || {
                    let bound = open_bound.min(obj_min);
                    obj_min - bound <= self.config.gap_abs
                        || obj_min - bound <= self.config.gap_rel * obj_min.abs().max(1.0)
                };
                let bound_min =
                    if heap.is_empty() && !hit_limit { obj_min } else { open_bound.min(obj_min) };
                Solution {
                    status: if proven { SolveStatus::Optimal } else { SolveStatus::Feasible },
                    objective: from_min(obj_min),
                    best_bound: from_min(bound_min),
                    values,
                    nodes,
                    lp_iterations: stats.iterations,
                    lp_solves: stats.solves,
                    lp_seconds: stats.seconds,
                    cuts: cuts_added,
                    solve_seconds: elapsed,
                    cancelled: was_cancelled,
                }
            }
            None => {
                let status = if hit_limit {
                    SolveStatus::Unknown
                } else if root_status == Some(LpStatus::Unbounded) {
                    SolveStatus::Unbounded
                } else {
                    SolveStatus::Infeasible
                };
                let mut sol = Solution::empty(status, n);
                sol.nodes = nodes;
                sol.lp_iterations = stats.iterations;
                sol.lp_solves = stats.solves;
                sol.lp_seconds = stats.seconds;
                sol.cuts = cuts_added;
                sol.solve_seconds = elapsed;
                sol.cancelled = was_cancelled;
                sol
            }
        }
    }

    /// Updates pseudo-costs from a solved (or infeasible) child node.
    pub(crate) fn record_pseudo(
        &self,
        pseudo: &mut PseudoCosts,
        node: &Node,
        child_obj: Option<f64>,
    ) {
        if !matches!(self.config.branching, BranchRule::PseudoCost { .. }) {
            return;
        }
        let Some(info) = node.branch else { return };
        let dist = if info.up { 1.0 - info.frac } else { info.frac };
        if dist <= self.config.int_tol {
            return;
        }
        match child_obj {
            Some(obj) => pseudo.record(info.var, info.up, (obj - info.parent_obj) / dist),
            // An infeasible child is the strongest possible degradation
            // signal; record a large (but finite) per-unit cost.
            None => {
                let scale = info.parent_obj.abs().max(1.0);
                pseudo.record(info.var, info.up, scale / dist);
            }
        }
    }

    /// Picks the branching variable according to the configured rule.
    pub(crate) fn pick_branch(
        &self,
        pseudo: &PseudoCosts,
        fractional: &[(usize, f64)],
    ) -> (usize, f64) {
        if let BranchRule::PseudoCost { reliability } = self.config.branching {
            if let Some(pick) = pseudo.select(fractional, reliability) {
                return pick;
            }
        }
        most_fractional(fractional).expect("caller guarantees a fractional candidate")
    }

    /// LP-guided diving: repeatedly tighten the most fractional integer
    /// variable towards its nearest integer (a one-sided, branch-like bound
    /// change rather than a hard fix) and re-solve the LP — warm-started
    /// from the previous step's basis — flipping the direction once on
    /// infeasibility. Returns an objective (in the *model's* sense) and a
    /// feasible assignment on success.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dive(
        &self,
        backend: &LpBackend,
        lp_cfg: &LpConfig,
        model: &Model,
        int_vars: &[usize],
        start_bounds: &[(f64, f64)],
        start_values: &[f64],
        start_snapshot: Option<&BasisSnapshot>,
        stats: &mut LpStats,
        start: Instant,
    ) -> Option<(f64, Vec<f64>)> {
        let mut bounds = start_bounds.to_vec();
        let mut values = start_values.to_vec();
        let mut snapshot: Option<BasisSnapshot> = start_snapshot.cloned();
        // Each step moves one bound by at least one unit, so the budget is
        // generous for binary-dominated models while still bounded for wide
        // integer ranges.
        for _ in 0..4 * int_vars.len() + 16 {
            if self.config.cancel.is_cancelled() {
                return None;
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() >= limit {
                    return None;
                }
            }
            let frac = fractional_vars(int_vars, &values, self.config.int_tol);
            let (j, v) = match most_fractional(&frac) {
                None => {
                    let mut rounded = values;
                    for &jj in int_vars {
                        rounded[jj] = rounded[jj].round();
                    }
                    if model.is_feasible(&rounded, tol::FEASIBILITY) {
                        let obj = model.objective.eval(&rounded);
                        return Some((obj, rounded));
                    }
                    return None;
                }
                Some((j, v)) => (j, v),
            };
            let (lbj, ubj) = bounds[j];
            // Tighten towards the nearest integer: raise the lower bound when
            // rounding up, lower the upper bound when rounding down.
            let up = v.round() >= v;
            bounds[j] = if up { (v.ceil().min(ubj), ubj) } else { (lbj, v.floor().max(lbj)) };
            let (lp, snap) = stats.timed(backend, snapshot.as_ref(), &bounds, lp_cfg);
            if lp.status == LpStatus::Optimal {
                values = lp.values;
                snapshot = snap;
                continue;
            }
            // Infeasible (or numerically stuck): flip the direction once,
            // then give up on this dive.
            bounds[j] = if up { (lbj, v.floor().max(lbj)) } else { (v.ceil().min(ubj), ubj) };
            let (lp, snap) = stats.timed(backend, snapshot.as_ref(), &bounds, lp_cfg);
            if lp.status == LpStatus::Optimal {
                values = lp.values;
                snapshot = snap;
            } else {
                return None;
            }
        }
        None
    }
}

/// The integer variables whose LP values are fractional beyond `tol`, with
/// their values, in index order.
pub(crate) fn fractional_vars(int_vars: &[usize], values: &[f64], tol: f64) -> Vec<(usize, f64)> {
    int_vars.iter().map(|&j| (j, values[j])).filter(|&(_, v)| (v - v.round()).abs() > tol).collect()
}

/// The candidate whose value is farthest from integral (ties broken towards
/// 0.5 then by index, matching the historical branching rule).
pub(crate) fn most_fractional(candidates: &[(usize, f64)]) -> Option<(usize, f64)> {
    candidates
        .iter()
        .map(|&(j, v)| (j, v, (v - v.round()).abs()))
        .max_by(|a, b| {
            let da = (a.2 - 0.5).abs();
            let db = (b.2 - 0.5).abs();
            db.partial_cmp(&da).unwrap_or(Ordering::Equal).then(b.0.cmp(&a.0))
        })
        .map(|(j, v, _)| (j, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn integer_optimum_differs_from_lp_relaxation() {
        // max x + y s.t. 2x + 3y <= 12, 4x + y <= 10, x,y >= 0 integer.
        // LP optimum is fractional (x=1.8, y=2.8, obj 4.6); ILP optimum is 4.
        let mut m = Model::new("ilp", Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con("c1", LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0, ConOp::Le, 12.0);
        m.add_con("c2", LinExpr::from(x) * 4.0 + LinExpr::from(y), ConOp::Le, 10.0);
        m.set_objective(LinExpr::from(x) + y);
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(sol.verify(&m, 1e-6).is_empty());
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // Classic 0/1 knapsack: values [10, 13, 18, 31, 7, 15],
        // weights [2, 3, 4, 5, 1, 4], capacity 10 -> optimum 56 (items 2, 3, 4).
        let values = [10.0, 13.0, 18.0, 31.0, 7.0, 15.0];
        let weights = [2.0, 3.0, 4.0, 5.0, 1.0, 4.0];
        let mut m = Model::new("knapsack", Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| m.bin_var(format!("item{i}"))).collect();
        m.add_con(
            "capacity",
            LinExpr::weighted_sum(vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w))),
            ConOp::Le,
            10.0,
        );
        m.set_objective(LinExpr::weighted_sum(
            vars.iter().zip(values.iter()).map(|(&v, &c)| (v, c)),
        ));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 56.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(sol.verify(&m, 1e-6).is_empty());
    }

    #[test]
    fn dense_backend_agrees_with_revised() {
        let build = || {
            let mut m = Model::new("agree", Sense::Maximize);
            let x = m.int_var("x", 0.0, 10.0);
            let y = m.int_var("y", 0.0, 10.0);
            m.add_con("c1", LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0, ConOp::Le, 12.0);
            m.add_con("c2", LinExpr::from(x) * 4.0 + LinExpr::from(y), ConOp::Le, 10.0);
            m.set_objective(LinExpr::from(x) + y);
            m
        };
        let revised = Solver::default().solve(&build());
        let dense = Solver::new(SolverConfig { use_dense_lp: true, ..SolverConfig::default() })
            .solve(&build());
        assert_eq!(revised.status, SolveStatus::Optimal);
        assert_eq!(dense.status, SolveStatus::Optimal);
        assert!((revised.objective - dense.objective).abs() < 1e-6);
    }

    #[test]
    fn most_fractional_rule_still_solves() {
        let mut m = Model::new("mf", Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 7.0, ConOp::Le, 20.5);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let cfg = SolverConfig { branching: BranchRule::MostFractional, ..SolverConfig::default() };
        let sol = Solver::new(cfg).solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.verify(&m, 1e-6).is_empty());
    }

    #[test]
    fn mutex_hints_produce_clique_cuts() {
        // max x + y + z with pairwise mutual exclusion declared as hints and
        // enforced by a capacity row the LP relaxation satisfies at 0.5s.
        let mut m = Model::new("cliq", Sense::Maximize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let z = m.bin_var("z");
        // Pairwise "at most one" via big-ish knapsacks the LP can cheat on.
        m.add_con("xy", LinExpr::from(x) * 2.0 + LinExpr::from(y) * 2.0, ConOp::Le, 3.0);
        m.add_con("yz", LinExpr::from(y) * 2.0 + LinExpr::from(z) * 2.0, ConOp::Le, 3.0);
        m.add_con("xz", LinExpr::from(x) * 2.0 + LinExpr::from(z) * 2.0, ConOp::Le, 3.0);
        m.add_mutex_group("xy", vec![x, y]);
        m.add_mutex_group("yz", vec![y, z]);
        m.add_mutex_group("xz", vec![x, z]);
        m.set_objective(LinExpr::from(x) + y + z);
        // Presolve's coefficient tightening reduces these knapsacks to the
        // cliques themselves (no fractional cheat left to separate), so turn
        // it off to exercise the separation machinery.
        let cfg = SolverConfig { presolve: false, ..SolverConfig::default() };
        let sol = Solver::new(cfg).solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(sol.cuts > 0, "the relaxation is fractional, cuts must fire");

        // With presolve on, the same optimum is proven without needing cuts:
        // the tightened rows already cut off the fractional point.
        let pre = solver().solve(&m);
        assert_eq!(pre.status, SolveStatus::Optimal);
        assert!((pre.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_program() {
        // 2x = 3 with x integer has no solution.
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        m.add_con("odd", LinExpr::from(x) * 2.0, ConOp::Eq, 3.0);
        m.set_objective(LinExpr::from(x));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn pure_lp_model_is_solved_at_the_root() {
        let mut m = Model::new("lp", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) * 2.0 + y);
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.nodes, 1);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2-D index math reads clearest as written
    fn equality_constrained_assignment_problem() {
        // 3x3 assignment problem with cost matrix; optimum = 5.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new("assign", Sense::Minimize);
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i].push(m.bin_var(format!("x{i}{j}")));
            }
        }
        for i in 0..3 {
            m.add_con(
                format!("row{i}"),
                LinExpr::weighted_sum((0..3).map(|j| (x[i][j], 1.0))),
                ConOp::Eq,
                1.0,
            );
        }
        for j in 0..3 {
            m.add_con(
                format!("col{j}"),
                LinExpr::weighted_sum((0..3).map(|i| (x[i][j], 1.0))),
                ConOp::Eq,
                1.0,
            );
        }
        m.set_objective(LinExpr::weighted_sum(
            (0..3).flat_map(|i| (0..3).map(|j| (x[i][j], cost[i][j])).collect::<Vec<_>>()),
        ));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimal assignment: (0,1)=1, (1,0)=2, (2,2)=2 -> 5.
        assert!((sol.objective - 5.0).abs() < 1e-6, "objective {}", sol.objective);
    }

    #[test]
    fn stop_at_first_feasible_returns_quickly() {
        let cfg = SolverConfig { stop_at_first_feasible: true, ..SolverConfig::default() };
        let solver = Solver::new(cfg);
        let mut m = Model::new("firstfeas", Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.bin_var(format!("b{i}"))).collect();
        m.add_con("cap", LinExpr::weighted_sum(vars.iter().map(|&v| (v, 1.0))), ConOp::Le, 4.0);
        m.set_objective(LinExpr::weighted_sum(vars.iter().map(|&v| (v, 1.0))));
        let sol = solver.solve(&m);
        assert!(sol.status.has_solution());
        assert!(sol.objective >= 0.0);
    }

    #[test]
    fn node_limit_yields_feasible_or_unknown() {
        let cfg = SolverConfig { max_nodes: 1, ..SolverConfig::default() };
        let solver = Solver::new(cfg);
        let mut m = Model::new("limited", Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.add_con("c", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 7.0, ConOp::Le, 20.5);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let sol = solver.solve(&m);
        assert!(matches!(
            sol.status,
            SolveStatus::Feasible | SolveStatus::Unknown | SolveStatus::Optimal
        ));
    }

    #[test]
    fn big_m_indicator_style_model() {
        // Either x >= 5 or y >= 5 (selected by a binary), minimise x + y.
        let mut m = Model::new("bigm", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 100.0);
        let y = m.cont_var("y", 0.0, 100.0);
        let z = m.bin_var("z");
        // x >= 5 - M z  and  y >= 5 - M (1 - z)
        m.add_con("x_on", LinExpr::from(x) + LinExpr::from(z) * 100.0, ConOp::Ge, 5.0);
        m.add_con("y_on", LinExpr::from(y) - LinExpr::from(z) * 100.0, ConOp::Ge, 5.0 - 100.0);
        m.set_objective(LinExpr::from(x) + y);
        let sol = Solver::default().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn maximization_bounds_are_reported_in_model_sense() {
        let mut m = Model::new("sense", Sense::Maximize);
        let x = m.int_var("x", 0.0, 7.0);
        m.add_con("c", LinExpr::from(x) * 2.0, ConOp::Le, 9.0);
        m.set_objective(LinExpr::from(x));
        let sol = Solver::default().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!(sol.best_bound >= sol.objective - 1e-6);
        assert!(sol.gap() < 1e-6);
    }

    #[test]
    fn pre_cancelled_solve_stops_at_the_first_node() {
        let token = CancelToken::new();
        token.cancel();
        let cfg = SolverConfig { cancel: token, ..SolverConfig::default() };
        let mut m = Model::new("cancelled", Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.add_con("c", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 7.0, ConOp::Le, 20.5);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let sol = Solver::new(cfg).solve(&m);
        assert!(sol.cancelled);
        assert_eq!(sol.nodes, 0);
        assert_eq!(sol.status, SolveStatus::Unknown);
    }

    #[test]
    fn cancelled_token_interrupts_the_lp_layer_itself() {
        // The LP loops must notice the token directly: a multi-minute root
        // relaxation would otherwise run to completion before the node-level
        // cancellation check is ever reached.
        let token = CancelToken::new();
        token.cancel();
        let lp_cfg = LpConfig { cancel: token, ..LpConfig::default() };
        let mut m = Model::new("lp-interrupt", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) * 2.0 + y);
        let sf = StandardForm::from_model(&m);
        let (res, _) = sf.solve_cold(None, &lp_cfg);
        assert_eq!(res.status, LpStatus::IterationLimit);
        // An expired deadline interrupts the same way.
        let deadline_cfg = LpConfig { deadline: Some(Instant::now()), ..LpConfig::default() };
        let (res, _) = sf.solve_cold(None, &deadline_cfg);
        assert_eq!(res.status, LpStatus::IterationLimit);
    }

    #[test]
    fn cancelled_solve_keeps_the_warm_start_incumbent() {
        let token = CancelToken::new();
        token.cancel();
        let cfg = SolverConfig { cancel: token, ..SolverConfig::default() };
        let mut m = Model::new("cancelled-warm", Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x), ConOp::Le, 7.0);
        m.set_objective(LinExpr::from(x));
        let sol = Solver::new(cfg).solve_with_start(&m, Some(&[3.0]));
        assert!(sol.cancelled);
        assert_eq!(sol.status, SolveStatus::Feasible);
        assert!((sol.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn incumbent_callback_reports_monotone_improvements() {
        use std::sync::Mutex;
        let seen: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let mut m = Model::new("progress", Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.bin_var(format!("b{i}"))).collect();
        m.add_con(
            "cap",
            LinExpr::weighted_sum(vars.iter().enumerate().map(|(i, &v)| (v, (i % 3 + 1) as f64))),
            ConOp::Le,
            6.0,
        );
        m.set_objective(LinExpr::weighted_sum(vars.iter().map(|&v| (v, 1.0))));
        let sol = Solver::default().solve_controlled(
            &m,
            None,
            Some(&|obj, secs| {
                assert!(secs >= 0.0);
                seen.lock().unwrap().push(obj);
            }),
        );
        assert_eq!(sol.status, SolveStatus::Optimal);
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "at least the final incumbent must be reported");
        // Maximisation: each report strictly improves on the previous one.
        for w in seen.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((seen.last().unwrap() - sol.objective).abs() < 1e-9);
    }

    #[test]
    fn solutions_are_deterministic() {
        let build = || {
            let mut m = Model::new("det", Sense::Maximize);
            let vars: Vec<_> = (0..10).map(|i| m.bin_var(format!("b{i}"))).collect();
            for k in 0..5 {
                m.add_con(
                    format!("c{k}"),
                    LinExpr::weighted_sum(
                        vars.iter().enumerate().map(|(i, &v)| (v, ((i + k) % 4 + 1) as f64)),
                    ),
                    ConOp::Le,
                    7.0,
                );
            }
            m.set_objective(LinExpr::weighted_sum(
                vars.iter().enumerate().map(|(i, &v)| (v, (i % 3 + 1) as f64)),
            ));
            m
        };
        let s1 = Solver::default().solve(&build());
        let s2 = Solver::default().solve(&build());
        assert_eq!(s1.status, s2.status);
        assert_eq!(s1.values, s2.values);
        assert_eq!(s1.nodes, s2.nodes);
    }

    /// A subset-sum style model with **no integrality gap**: the LP bound
    /// equals the integer optimum, so a best-first search without an
    /// incumbent must wander through bound-tied nodes hunting for an
    /// integral leaf, while a search holding the optimum as incumbent
    /// closes the gap immediately. This is exactly the situation of a MILP
    /// leg in a portfolio race whose sibling has already found the optimum.
    fn pruning_probe_model() -> Model {
        let mut m = Model::new("external-inc", Sense::Maximize);
        let vars: Vec<_> = (0..16).map(|i| m.bin_var(format!("b{i}"))).collect();
        let w = |i: usize| (2 * i + 3) as f64;
        m.add_con(
            "cap",
            LinExpr::weighted_sum(vars.iter().enumerate().map(|(i, &v)| (v, w(i)))),
            ConOp::Le,
            55.0,
        );
        m.set_objective(LinExpr::weighted_sum(vars.iter().enumerate().map(|(i, &v)| (v, w(i)))));
        m
    }

    #[test]
    fn external_incumbents_prune_the_tree() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Disable the incumbent heuristics so the cold run really has to
        // search for its first incumbent — the scenario a racing portfolio
        // engine is in when a sibling finishes first.
        let cold_cfg = SolverConfig { dive_period: 0, cut_rounds: 0, ..SolverConfig::default() };
        let cold = Solver::new(cold_cfg.clone()).solve(&pruning_probe_model());
        assert_eq!(cold.status, SolveStatus::Optimal);
        assert!(cold.nodes > 10, "the cold run must need a real tree, got {}", cold.nodes);

        // Hand the cold run's optimal assignment in through the external
        // source, as a portfolio loser would.
        let optimum = cold.values.clone();
        let polls = Arc::new(AtomicUsize::new(0));
        let polls_probe = polls.clone();
        let warm_cfg = SolverConfig {
            external_incumbents: ExternalIncumbents::from_fn(move || {
                // First poll delivers, later polls report "nothing new".
                if polls_probe.fetch_add(1, Ordering::SeqCst) == 0 {
                    Some(optimum.clone())
                } else {
                    None
                }
            }),
            ..cold_cfg
        };
        let warm = Solver::new(warm_cfg).solve(&pruning_probe_model());
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(polls.load(Ordering::SeqCst) >= 1, "the source must be polled");
        assert!(
            warm.nodes < cold.nodes,
            "an adopted external incumbent must prune the tree ({} vs {} nodes)",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn malformed_external_incumbents_are_ignored() {
        // Wrong length and infeasible proposals must be rejected without
        // corrupting the solve.
        let junk = Arc::new(std::sync::Mutex::new(vec![
            vec![1.0; 3],  // wrong arity
            vec![1.0; 14], // violates every capacity constraint
        ]));
        let cfg = SolverConfig {
            external_incumbents: ExternalIncumbents::from_fn(move || junk.lock().unwrap().pop()),
            ..SolverConfig::default()
        };
        let sol = Solver::new(cfg).solve(&pruning_probe_model());
        let clean = Solver::default().solve(&pruning_probe_model());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - clean.objective).abs() < 1e-9);
    }
}
