//! Branch-and-bound MILP search on top of the bounded simplex.
//!
//! The search is a best-first exploration of the bound-tightening tree:
//!
//! * every node re-solves the LP relaxation with tightened variable bounds
//!   (the [`crate::simplex::StandardForm`] is built once and shared);
//! * branching picks the integer variable whose LP value is most fractional;
//! * nodes are pruned by bound against the incumbent;
//! * a cheap rounding heuristic is applied at every node to find incumbents
//!   early, and an LP-guided diving heuristic (fix the most fractional
//!   variable, re-solve, repeat) runs at the root and periodically until the
//!   first incumbent is found — plain rounding almost never satisfies the
//!   big-M indicator constraints of the floorplanning models, diving usually
//!   does;
//! * node order is deterministic (ties broken by node id), so repeated solves
//!   of the same model explore the same tree.

use crate::model::{Model, Sense};
use crate::simplex::{LpConfig, LpStatus, StandardForm};
use crate::solution::{Solution, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Configuration of the MILP solver.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// LP (simplex) parameters.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Absolute optimality gap at which the search stops.
    pub gap_abs: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_rel: f64,
    /// Maximum number of branch-and-bound nodes (0 = unlimited).
    pub max_nodes: usize,
    /// Wall-clock time limit.
    pub time_limit: Option<Duration>,
    /// Stop as soon as any feasible solution is found (feasibility mode, used
    /// by the floorplanner's feasibility analysis).
    pub stop_at_first_feasible: bool,
    /// While no incumbent exists, run the diving heuristic every this many
    /// nodes (0 disables diving; it always runs at the root).
    pub dive_period: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            lp: LpConfig::default(),
            int_tol: 1e-6,
            gap_abs: 1e-6,
            gap_rel: 1e-6,
            max_nodes: 0,
            time_limit: None,
            stop_at_first_feasible: false,
            dive_period: 256,
        }
    }
}

impl SolverConfig {
    /// A configuration with a node budget and time limit suitable for use
    /// inside benchmarks.
    pub fn with_limits(max_nodes: usize, time_limit_secs: f64) -> Self {
        SolverConfig {
            max_nodes,
            time_limit: Some(Duration::from_secs_f64(time_limit_secs)),
            ..SolverConfig::default()
        }
    }
}

/// The MILP solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Solver configuration.
    pub config: SolverConfig,
}

/// A node of the branch-and-bound tree.
#[derive(Debug, Clone)]
struct Node {
    /// Bounds of the structural variables at this node.
    bounds: Vec<(f64, f64)>,
    /// Parent LP bound in minimisation sense (used for ordering).
    bound: f64,
    /// Depth in the tree.
    depth: usize,
    /// Monotone id for deterministic tie-breaking.
    id: usize,
}

/// Best-first ordering: smaller bound first, then deeper, then older.
struct OrderedNode(Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound on top.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// Solves a mixed-integer linear program.
    pub fn solve(&self, model: &Model) -> Solution {
        self.solve_with_start(model, None)
    }

    /// Solves a mixed-integer linear program from a warm start.
    ///
    /// `warm_start` is a candidate assignment of every variable; when it is
    /// feasible (within tolerance) and integral on the integer variables it
    /// becomes the initial incumbent, which prunes the search from the first
    /// node. An infeasible or malformed start is silently ignored.
    pub fn solve_with_start(&self, model: &Model, warm_start: Option<&[f64]>) -> Solution {
        let start = Instant::now();
        let n = model.n_vars();
        let maximize = model.sense == Sense::Maximize;
        // Internal bounding works in minimisation sense.
        let to_min = |obj: f64| if maximize { -obj } else { obj };
        let from_min = |obj: f64| if maximize { -obj } else { obj };

        let sf = StandardForm::from_model(model);
        let int_vars: Vec<usize> = model
            .vars()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integral())
            .map(|(j, _)| j)
            .collect();

        let root_bounds: Vec<(f64, f64)> = model.vars().iter().map(|v| (v.lb, v.ub)).collect();

        let mut heap: BinaryHeap<OrderedNode> = BinaryHeap::new();
        let mut next_id = 0usize;
        heap.push(OrderedNode(Node {
            bounds: root_bounds,
            bound: f64::NEG_INFINITY,
            depth: 0,
            id: next_id,
        }));
        next_id += 1;

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (obj in min sense, values)
        if let Some(values) = warm_start {
            let integral = values.len() == n
                && int_vars
                    .iter()
                    .all(|&j| (values[j] - values[j].round()).abs() <= self.config.int_tol);
            if integral && model.is_feasible(values, 1e-5) {
                let obj_min = to_min(model.objective.eval(values));
                incumbent = Some((obj_min, values.to_vec()));
                if self.config.stop_at_first_feasible {
                    return Solution {
                        status: SolveStatus::Feasible,
                        objective: from_min(obj_min),
                        best_bound: from_min(f64::NEG_INFINITY),
                        values: values.to_vec(),
                        nodes: 0,
                        lp_iterations: 0,
                        solve_seconds: start.elapsed().as_secs_f64(),
                    };
                }
            }
        }
        let mut best_bound_min = f64::NEG_INFINITY;
        let mut nodes = 0usize;
        let mut lp_iterations = 0usize;
        let mut root_status: Option<LpStatus> = None;
        let mut hit_limit = false;

        while let Some(OrderedNode(node)) = heap.pop() {
            // Global bound = min over the popped node and everything remaining.
            best_bound_min = node.bound.max(best_bound_min.min(node.bound));
            if let Some((inc_obj, _)) = &incumbent {
                let gap = inc_obj - node.bound;
                if gap <= self.config.gap_abs || gap <= self.config.gap_rel * inc_obj.abs().max(1.0)
                {
                    // Every remaining node has a bound at least as large.
                    break;
                }
            }
            if self.config.max_nodes > 0 && nodes >= self.config.max_nodes {
                hit_limit = true;
                break;
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() >= limit {
                    hit_limit = true;
                    break;
                }
            }

            nodes += 1;
            let lp = sf.solve_with_bounds(Some(&node.bounds), &self.config.lp);
            lp_iterations += lp.iterations;
            if node.depth == 0 {
                root_status = Some(lp.status);
            }
            match lp.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    if node.depth == 0 && int_vars.is_empty() {
                        let mut sol = Solution::empty(SolveStatus::Unbounded, n);
                        sol.nodes = nodes;
                        sol.solve_seconds = start.elapsed().as_secs_f64();
                        return sol;
                    }
                    // An unbounded relaxation of a bounded-integer problem is
                    // pathological; treat the node as un-prunable with an
                    // infinite bound and branch on the first integer variable.
                    continue;
                }
                LpStatus::IterationLimit => {
                    // Treat conservatively: cannot trust the bound, but keep
                    // searching children with the parent bound.
                }
                LpStatus::Optimal => {}
            }

            let node_bound_min =
                if lp.status == LpStatus::Optimal { to_min(lp.objective) } else { node.bound };

            // Prune by bound.
            if let Some((inc_obj, _)) = &incumbent {
                if node_bound_min >= *inc_obj - self.config.gap_abs {
                    continue;
                }
            }

            // Integral solution?
            let frac_var = most_fractional(&int_vars, &lp.values, self.config.int_tol);

            match frac_var {
                None => {
                    // LP solution is integral: candidate incumbent.
                    let mut values = lp.values.clone();
                    for &j in &int_vars {
                        values[j] = values[j].round();
                    }
                    if model.is_feasible(&values, 1e-5) {
                        let obj_min = to_min(model.objective.eval(&values));
                        if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                            incumbent = Some((obj_min, values));
                            if self.config.stop_at_first_feasible {
                                break;
                            }
                        }
                    }
                }
                Some((j, v)) => {
                    // LP-guided diving until the first incumbent is known.
                    let dive_due = self.config.dive_period > 0
                        && (node.depth == 0 || (nodes - 1).is_multiple_of(self.config.dive_period));
                    if incumbent.is_none() && dive_due {
                        if let Some((obj_min_raw, values)) = self.dive(
                            &sf,
                            model,
                            &int_vars,
                            &node.bounds,
                            &lp.values,
                            &mut lp_iterations,
                            start,
                        ) {
                            let obj_min = to_min(obj_min_raw);
                            if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                                incumbent = Some((obj_min, values));
                                if self.config.stop_at_first_feasible {
                                    break;
                                }
                            }
                        }
                    }

                    // Rounding heuristic before branching.
                    if incumbent.is_none() || nodes % 16 == 1 {
                        let mut rounded = lp.values.clone();
                        for &jj in &int_vars {
                            rounded[jj] =
                                rounded[jj].round().clamp(node.bounds[jj].0, node.bounds[jj].1);
                        }
                        if model.is_feasible(&rounded, 1e-6) {
                            let obj_min = to_min(model.objective.eval(&rounded));
                            if incumbent.as_ref().is_none_or(|(best, _)| obj_min < *best) {
                                incumbent = Some((obj_min, rounded));
                                if self.config.stop_at_first_feasible {
                                    break;
                                }
                            }
                        }
                    }

                    // Branch: x_j <= floor(v) and x_j >= ceil(v).
                    let floor = v.floor();
                    let ceil = v.ceil();
                    let (lbj, ubj) = node.bounds[j];
                    if floor >= lbj - 1e-9 {
                        let mut b = node.bounds.clone();
                        b[j] = (lbj, floor.min(ubj));
                        heap.push(OrderedNode(Node {
                            bounds: b,
                            bound: node_bound_min,
                            depth: node.depth + 1,
                            id: next_id,
                        }));
                        next_id += 1;
                    }
                    if ceil <= ubj + 1e-9 {
                        let mut b = node.bounds.clone();
                        b[j] = (ceil.max(lbj), ubj);
                        heap.push(OrderedNode(Node {
                            bounds: b,
                            bound: node_bound_min,
                            depth: node.depth + 1,
                            id: next_id,
                        }));
                        next_id += 1;
                    }
                }
            }
        }

        let elapsed = start.elapsed().as_secs_f64();
        // Remaining open nodes bound the optimum from below (min sense).
        let open_bound = heap.iter().map(|OrderedNode(nd)| nd.bound).fold(f64::INFINITY, f64::min);

        match incumbent {
            Some((obj_min, values)) => {
                let proven = !hit_limit && heap.is_empty() || {
                    let bound = open_bound.min(obj_min);
                    obj_min - bound <= self.config.gap_abs
                        || obj_min - bound <= self.config.gap_rel * obj_min.abs().max(1.0)
                };
                let bound_min =
                    if heap.is_empty() && !hit_limit { obj_min } else { open_bound.min(obj_min) };
                Solution {
                    status: if proven { SolveStatus::Optimal } else { SolveStatus::Feasible },
                    objective: from_min(obj_min),
                    best_bound: from_min(bound_min),
                    values,
                    nodes,
                    lp_iterations,
                    solve_seconds: elapsed,
                }
            }
            None => {
                let status = if hit_limit {
                    SolveStatus::Unknown
                } else if root_status == Some(LpStatus::Unbounded) {
                    SolveStatus::Unbounded
                } else {
                    SolveStatus::Infeasible
                };
                let mut sol = Solution::empty(status, n);
                sol.nodes = nodes;
                sol.lp_iterations = lp_iterations;
                sol.solve_seconds = elapsed;
                sol
            }
        }
    }

    /// LP-guided diving: repeatedly tighten the most fractional integer
    /// variable towards its nearest integer (a one-sided, branch-like bound
    /// change rather than a hard fix) and re-solve the LP, flipping the
    /// direction once on infeasibility. Returns an objective (in the
    /// *model's* sense) and a feasible assignment on success.
    #[allow(clippy::too_many_arguments)]
    fn dive(
        &self,
        sf: &StandardForm,
        model: &Model,
        int_vars: &[usize],
        start_bounds: &[(f64, f64)],
        start_values: &[f64],
        lp_iterations: &mut usize,
        start: Instant,
    ) -> Option<(f64, Vec<f64>)> {
        let mut bounds = start_bounds.to_vec();
        let mut values = start_values.to_vec();
        // Each step moves one bound by at least one unit, so the budget is
        // generous for binary-dominated models while still bounded for wide
        // integer ranges.
        for _ in 0..4 * int_vars.len() + 16 {
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() >= limit {
                    return None;
                }
            }
            let frac = most_fractional(int_vars, &values, self.config.int_tol);
            let (j, v) = match frac {
                None => {
                    let mut rounded = values;
                    for &jj in int_vars {
                        rounded[jj] = rounded[jj].round();
                    }
                    if model.is_feasible(&rounded, 1e-6) {
                        let obj = model.objective.eval(&rounded);
                        return Some((obj, rounded));
                    }
                    return None;
                }
                Some((j, v)) => (j, v),
            };
            let (lbj, ubj) = bounds[j];
            // Tighten towards the nearest integer: raise the lower bound when
            // rounding up, lower the upper bound when rounding down.
            let up = v.round() >= v;
            bounds[j] = if up { (v.ceil().min(ubj), ubj) } else { (lbj, v.floor().max(lbj)) };
            let lp = sf.solve_with_bounds(Some(&bounds), &self.config.lp);
            *lp_iterations += lp.iterations;
            if lp.status == LpStatus::Optimal {
                values = lp.values;
                continue;
            }
            // Infeasible (or numerically stuck): flip the direction once,
            // then give up on this dive.
            bounds[j] = if up { (lbj, v.floor().max(lbj)) } else { (v.ceil().min(ubj), ubj) };
            let lp = sf.solve_with_bounds(Some(&bounds), &self.config.lp);
            *lp_iterations += lp.iterations;
            if lp.status == LpStatus::Optimal {
                values = lp.values;
            } else {
                return None;
            }
        }
        None
    }
}

/// The integer variable whose LP value is farthest from integral (ties broken
/// towards 0.5 then by index, matching the branching rule).
fn most_fractional(int_vars: &[usize], values: &[f64], tol: f64) -> Option<(usize, f64)> {
    int_vars
        .iter()
        .map(|&j| (j, values[j], (values[j] - values[j].round()).abs()))
        .filter(|&(_, _, f)| f > tol)
        .max_by(|a, b| {
            let da = (a.2 - 0.5).abs();
            let db = (b.2 - 0.5).abs();
            db.partial_cmp(&da).unwrap_or(Ordering::Equal).then(b.0.cmp(&a.0))
        })
        .map(|(j, v, _)| (j, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn integer_optimum_differs_from_lp_relaxation() {
        // max x + y s.t. 2x + 3y <= 12, 4x + y <= 10, x,y >= 0 integer.
        // LP optimum is fractional (x=1.8, y=2.8, obj 4.6); ILP optimum is 4.
        let mut m = Model::new("ilp", Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con("c1", LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0, ConOp::Le, 12.0);
        m.add_con("c2", LinExpr::from(x) * 4.0 + LinExpr::from(y), ConOp::Le, 10.0);
        m.set_objective(LinExpr::from(x) + y);
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(sol.verify(&m, 1e-6).is_empty());
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // Classic 0/1 knapsack: values [10, 13, 18, 31, 7, 15],
        // weights [2, 3, 4, 5, 1, 4], capacity 10 -> optimum 56 (items 2, 3, 4).
        let values = [10.0, 13.0, 18.0, 31.0, 7.0, 15.0];
        let weights = [2.0, 3.0, 4.0, 5.0, 1.0, 4.0];
        let mut m = Model::new("knapsack", Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| m.bin_var(format!("item{i}"))).collect();
        m.add_con(
            "capacity",
            LinExpr::weighted_sum(vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w))),
            ConOp::Le,
            10.0,
        );
        m.set_objective(LinExpr::weighted_sum(
            vars.iter().zip(values.iter()).map(|(&v, &c)| (v, c)),
        ));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 56.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(sol.verify(&m, 1e-6).is_empty());
    }

    #[test]
    fn infeasible_integer_program() {
        // 2x = 3 with x integer has no solution.
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        m.add_con("odd", LinExpr::from(x) * 2.0, ConOp::Eq, 3.0);
        m.set_objective(LinExpr::from(x));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn pure_lp_model_is_solved_at_the_root() {
        let mut m = Model::new("lp", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) * 2.0 + y);
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.nodes, 1);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2-D index math reads clearest as written
    fn equality_constrained_assignment_problem() {
        // 3x3 assignment problem with cost matrix; optimum = 5 (1+1+3 ... )
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new("assign", Sense::Minimize);
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i].push(m.bin_var(format!("x{i}{j}")));
            }
        }
        for i in 0..3 {
            m.add_con(
                format!("row{i}"),
                LinExpr::weighted_sum((0..3).map(|j| (x[i][j], 1.0))),
                ConOp::Eq,
                1.0,
            );
        }
        for j in 0..3 {
            m.add_con(
                format!("col{j}"),
                LinExpr::weighted_sum((0..3).map(|i| (x[i][j], 1.0))),
                ConOp::Eq,
                1.0,
            );
        }
        m.set_objective(LinExpr::weighted_sum(
            (0..3).flat_map(|i| (0..3).map(|j| (x[i][j], cost[i][j])).collect::<Vec<_>>()),
        ));
        let sol = solver().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimal assignment: (0,1)=1, (1,0)=2, (2,2)=2 -> 5.
        assert!((sol.objective - 5.0).abs() < 1e-6, "objective {}", sol.objective);
    }

    #[test]
    fn stop_at_first_feasible_returns_quickly() {
        let cfg = SolverConfig { stop_at_first_feasible: true, ..SolverConfig::default() };
        let solver = Solver::new(cfg);
        let mut m = Model::new("firstfeas", Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.bin_var(format!("b{i}"))).collect();
        m.add_con("cap", LinExpr::weighted_sum(vars.iter().map(|&v| (v, 1.0))), ConOp::Le, 4.0);
        m.set_objective(LinExpr::weighted_sum(vars.iter().map(|&v| (v, 1.0))));
        let sol = solver.solve(&m);
        assert!(sol.status.has_solution());
        assert!(sol.objective >= 0.0);
    }

    #[test]
    fn node_limit_yields_feasible_or_unknown() {
        let cfg = SolverConfig { max_nodes: 1, ..SolverConfig::default() };
        let solver = Solver::new(cfg);
        let mut m = Model::new("limited", Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        m.add_con("c", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 7.0, ConOp::Le, 20.5);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let sol = solver.solve(&m);
        assert!(matches!(
            sol.status,
            SolveStatus::Feasible | SolveStatus::Unknown | SolveStatus::Optimal
        ));
    }

    #[test]
    fn big_m_indicator_style_model() {
        // Either x >= 5 or y >= 5 (selected by a binary), minimise x + y.
        let mut m = Model::new("bigm", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 100.0);
        let y = m.cont_var("y", 0.0, 100.0);
        let z = m.bin_var("z");
        // x >= 5 - M z  and  y >= 5 - M (1 - z)
        m.add_con("x_on", LinExpr::from(x) + LinExpr::from(z) * 100.0, ConOp::Ge, 5.0);
        m.add_con("y_on", LinExpr::from(y) - LinExpr::from(z) * 100.0, ConOp::Ge, 5.0 - 100.0);
        m.set_objective(LinExpr::from(x) + y);
        let sol = Solver::default().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn maximization_bounds_are_reported_in_model_sense() {
        let mut m = Model::new("sense", Sense::Maximize);
        let x = m.int_var("x", 0.0, 7.0);
        m.add_con("c", LinExpr::from(x) * 2.0, ConOp::Le, 9.0);
        m.set_objective(LinExpr::from(x));
        let sol = Solver::default().solve(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
        assert!(sol.best_bound >= sol.objective - 1e-6);
        assert!(sol.gap() < 1e-6);
    }

    #[test]
    fn solutions_are_deterministic() {
        let build = || {
            let mut m = Model::new("det", Sense::Maximize);
            let vars: Vec<_> = (0..10).map(|i| m.bin_var(format!("b{i}"))).collect();
            for k in 0..5 {
                m.add_con(
                    format!("c{k}"),
                    LinExpr::weighted_sum(
                        vars.iter().enumerate().map(|(i, &v)| (v, ((i + k) % 4 + 1) as f64)),
                    ),
                    ConOp::Le,
                    7.0,
                );
            }
            m.set_objective(LinExpr::weighted_sum(
                vars.iter().enumerate().map(|(i, &v)| (v, (i % 3 + 1) as f64)),
            ));
            m
        };
        let s1 = Solver::default().solve(&build());
        let s2 = Solver::default().solve(&build());
        assert_eq!(s1.status, s2.status);
        assert_eq!(s1.values, s2.values);
        assert_eq!(s1.nodes, s2.nodes);
    }
}
