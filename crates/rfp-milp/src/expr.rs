//! Sparse linear expressions.
//!
//! A [`LinExpr`] is a sparse linear combination of model variables plus a
//! constant term. Expressions support the natural arithmetic operators so
//! constraints can be written close to the paper's mathematical notation.

use crate::model::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A sparse linear expression `Σ c_j x_j + constant`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    /// Coefficients keyed by variable, kept sorted for determinism.
    terms: BTreeMap<VarId, f64>,
    /// Constant offset.
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// An expression consisting of a single constant.
    pub fn constant(c: f64) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// An expression consisting of `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff * var` to the expression (merging with an existing term).
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        if coeff != 0.0 {
            let entry = self.terms.entry(var).or_insert(0.0);
            *entry += coeff;
            if *entry == 0.0 {
                self.terms.remove(&var);
            }
        }
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Number of variables with a non-zero coefficient.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of a variable (0 if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Evaluates the expression for a full assignment of variable values
    /// (indexed by `VarId::index`).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.index()]).sum::<f64>()
    }

    /// Sums an iterator of expressions.
    pub fn sum<I: IntoIterator<Item = LinExpr>>(exprs: I) -> LinExpr {
        let mut acc = LinExpr::zero();
        for e in exprs {
            acc += e;
        }
        acc
    }

    /// Sums `coeff * var` over an iterator of `(var, coeff)` pairs.
    pub fn weighted_sum<I: IntoIterator<Item = (VarId, f64)>>(pairs: I) -> LinExpr {
        let mut acc = LinExpr::zero();
        for (v, c) in pairs {
            acc.add_term(v, c);
        }
        acc
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: VarId) -> LinExpr {
        self.add_term(rhs, 1.0);
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: VarId) -> LinExpr {
        self.add_term(rhs, -1.0);
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        if rhs == 0.0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn term_merging_and_cancellation() {
        let mut e = LinExpr::term(v(0), 2.0);
        e.add_term(v(0), 3.0);
        assert_eq!(e.coeff(v(0)), 5.0);
        e.add_term(v(0), -5.0);
        assert_eq!(e.coeff(v(0)), 0.0);
        assert_eq!(e.n_terms(), 0);
        assert!(e.is_constant());
    }

    #[test]
    fn arithmetic_operators() {
        let e = LinExpr::from(v(0)) * 3.0 + LinExpr::from(v(1)) * 2.0 + 1.0;
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.coeff(v(1)), 2.0);
        assert_eq!(e.constant_term(), 1.0);
        let f = e.clone() - LinExpr::from(v(1)) * 2.0;
        assert_eq!(f.coeff(v(1)), 0.0);
        let g = -f.clone();
        assert_eq!(g.coeff(v(0)), -3.0);
        assert_eq!(g.constant_term(), -1.0);
        let h = f + v(2) - v(0);
        assert_eq!(h.coeff(v(2)), 1.0);
        assert_eq!(h.coeff(v(0)), 2.0);
    }

    #[test]
    fn eval_uses_values_and_constant() {
        let e = LinExpr::from(v(0)) * 2.0 + LinExpr::from(v(2)) * -1.0 + 5.0;
        let vals = vec![3.0, 100.0, 4.0];
        assert_eq!(e.eval(&vals), 2.0 * 3.0 - 4.0 + 5.0);
    }

    #[test]
    fn weighted_sum_and_sum() {
        let e = LinExpr::weighted_sum([(v(0), 1.0), (v(1), 2.0), (v(0), 3.0)]);
        assert_eq!(e.coeff(v(0)), 4.0);
        let s = LinExpr::sum([LinExpr::from(v(0)), LinExpr::from(v(1)) + 1.0]);
        assert_eq!(s.coeff(v(0)), 1.0);
        assert_eq!(s.constant_term(), 1.0);
    }

    #[test]
    fn mul_by_zero_clears_expression() {
        let e = (LinExpr::from(v(0)) + 4.0) * 0.0;
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn iter_is_sorted_by_variable() {
        let e = LinExpr::weighted_sum([(v(5), 1.0), (v(1), 2.0), (v(3), 3.0)]);
        let order: Vec<usize> = e.iter().map(|(var, _)| var.index()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
