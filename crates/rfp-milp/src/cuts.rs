//! Cutting-plane separation for branch and bound.
//!
//! Two families of globally valid cuts are separated at the root node
//! ("cut and branch"):
//!
//! * **cover cuts** — for a knapsack row `Σ aⱼxⱼ ≤ b` over binaries with
//!   positive coefficients, any *cover* `C` (a set with `Σ_{C} aⱼ > b`)
//!   yields `Σ_{C} xⱼ ≤ |C| − 1`. Separation is the classic greedy on the
//!   fractional LP point, followed by minimalisation;
//! * **clique cuts** — mutual-exclusion hints registered on the model
//!   ([`crate::model::Model::add_mutex_group`], e.g. the pairwise
//!   left/above relation binaries of the floorplanning MILP) become
//!   `Σ_{G} xⱼ ≤ 1` whenever the LP point violates the group.
//!
//! Cuts are appended to the [`crate::simplex::StandardForm`] only — the
//! original [`crate::model::Model`] is untouched, so incumbent feasibility
//! checks still run against the true constraint set.

use crate::model::{ConOp, Model, VarKind};
use crate::tol;
use std::collections::HashSet;

/// A separated cutting plane `Σ terms ≤ rhs` over structural columns.
#[derive(Debug, Clone)]
pub struct Cut {
    /// Human-readable provenance, for debugging and logs.
    pub name: String,
    /// Sparse left-hand side over structural variable indices.
    pub terms: Vec<(usize, f64)>,
    /// Right-hand side (the operator is always `≤`).
    pub rhs: f64,
}

impl Cut {
    /// The row triple consumed by [`crate::simplex::StandardForm::add_rows`].
    pub fn as_row(&self) -> crate::simplex::CutRow {
        (self.terms.clone(), ConOp::Le, self.rhs)
    }
}

/// Stateful separator: scans the model once for knapsack rows and clique
/// hints, then separates violated cuts per LP point without re-adding
/// duplicates across rounds.
#[derive(Debug)]
pub struct Separator {
    /// Knapsack rows `(terms, rhs)` with positive coefficients on binaries.
    knapsacks: Vec<(Vec<(usize, f64)>, f64)>,
    /// Clique hints as structural indices.
    cliques: Vec<(String, Vec<usize>)>,
    /// Signatures of cuts already emitted (sorted columns + scaled rhs).
    emitted: HashSet<(Vec<usize>, i64)>,
}

impl Separator {
    /// Scans a model for separable structures.
    pub fn new(model: &Model) -> Separator {
        let is_bin = |j: usize| model.vars()[j].kind == VarKind::Binary;
        let mut knapsacks = Vec::new();
        for con in model.constraints() {
            // Normalise to `Σ a x ≤ b`: a `≥` row with all-negative
            // coefficients flips sign.
            let terms: Vec<(usize, f64)> = con.expr.iter().map(|(v, c)| (v.index(), c)).collect();
            let (terms, rhs) = match con.op {
                ConOp::Le => (terms, con.rhs),
                ConOp::Ge if terms.iter().all(|&(_, c)| c < 0.0) => {
                    (terms.into_iter().map(|(j, c)| (j, -c)).collect(), -con.rhs)
                }
                _ => continue,
            };
            if terms.len() < 2 || rhs <= 0.0 || !terms.iter().all(|&(j, c)| c > 0.0 && is_bin(j)) {
                continue;
            }
            // A cover only exists when the items cannot all fit.
            let total: f64 = terms.iter().map(|&(_, c)| c).sum();
            if total > rhs + tol::FEASIBILITY {
                knapsacks.push((terms, rhs));
            }
        }
        let cliques = model
            .mutex_groups()
            .iter()
            .map(|(name, vars)| (name.clone(), vars.iter().map(|v| v.index()).collect()))
            .collect();
        Separator { knapsacks, cliques, emitted: HashSet::new() }
    }

    /// Number of knapsack rows and clique hints available for separation.
    pub fn n_structures(&self) -> (usize, usize) {
        (self.knapsacks.len(), self.cliques.len())
    }

    /// Separates up to `max_cuts` cuts violated by the LP point `x`.
    pub fn separate(&mut self, x: &[f64], max_cuts: usize) -> Vec<Cut> {
        let mut out: Vec<Cut> = Vec::new();

        // Clique cuts first: they are sparse, strong and cheap.
        for (name, group) in &self.cliques {
            if out.len() >= max_cuts {
                break;
            }
            let activity: f64 = group.iter().map(|&j| x[j]).sum();
            if activity <= 1.0 + 1e-6 {
                continue;
            }
            let cut = Cut {
                name: format!("clique[{name}]"),
                terms: group.iter().map(|&j| (j, 1.0)).collect(),
                rhs: 1.0,
            };
            Self::push_if_new(&mut self.emitted, &mut out, cut);
        }

        // Cover cuts from the knapsack rows.
        for (ki, (terms, rhs)) in self.knapsacks.iter().enumerate() {
            if out.len() >= max_cuts {
                break;
            }
            if let Some(cover) = greedy_cover(terms, *rhs, x) {
                let activity: f64 = cover.iter().map(|&j| x[j]).sum();
                if activity > cover.len() as f64 - 1.0 + 1e-6 {
                    let cut = Cut {
                        name: format!("cover[row{ki}]"),
                        terms: cover.iter().map(|&j| (j, 1.0)).collect(),
                        rhs: cover.len() as f64 - 1.0,
                    };
                    Self::push_if_new(&mut self.emitted, &mut out, cut);
                }
            }
        }
        out
    }

    fn push_if_new(emitted: &mut HashSet<(Vec<usize>, i64)>, out: &mut Vec<Cut>, cut: Cut) {
        let mut cols: Vec<usize> = cut.terms.iter().map(|&(j, _)| j).collect();
        cols.sort_unstable();
        let sig = (cols, (cut.rhs * 1024.0).round() as i64);
        if emitted.insert(sig) {
            out.push(cut);
        }
    }
}

/// Greedy minimal cover of a knapsack row at the LP point: items are added in
/// increasing `(1 − x*) / a` order until their weight exceeds the capacity,
/// then items that are not needed for the cover property are dropped.
fn greedy_cover(terms: &[(usize, f64)], rhs: f64, x: &[f64]) -> Option<Vec<usize>> {
    let mut order: Vec<(usize, f64, f64)> =
        terms.iter().map(|&(j, a)| (j, a, (1.0 - x[j].clamp(0.0, 1.0)) / a)).collect();
    order.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    let mut weight = 0.0;
    let mut cover: Vec<(usize, f64)> = Vec::new();
    for &(j, a, _) in &order {
        if weight > rhs {
            break;
        }
        cover.push((j, a));
        weight += a;
    }
    if weight <= rhs {
        return None;
    }
    // Minimalise: drop items (least attractive last) whose removal keeps the
    // cover property.
    let mut keep: Vec<(usize, f64)> = cover;
    let mut i = keep.len();
    while i > 0 {
        i -= 1;
        let a = keep[i].1;
        if weight - a > rhs {
            weight -= a;
            keep.remove(i);
        }
    }
    if keep.len() < 2 {
        return None;
    }
    let mut cols: Vec<usize> = keep.into_iter().map(|(j, _)| j).collect();
    cols.sort_unstable();
    Some(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_rows_are_recognised() {
        let mut m = Model::new("k", Sense::Maximize);
        let vars: Vec<_> = (0..4).map(|i| m.bin_var(format!("b{i}"))).collect();
        m.add_con("cap", LinExpr::weighted_sum(vars.iter().map(|&v| (v, 2.0))), ConOp::Le, 5.0);
        // Not a knapsack: continuous variable involved.
        let c = m.cont_var("c", 0.0, 1.0);
        m.add_con("mixed", LinExpr::from(vars[0]) + c, ConOp::Le, 1.0);
        let sep = Separator::new(&m);
        assert_eq!(sep.n_structures(), (1, 0));
    }

    #[test]
    fn cover_cut_separates_a_fractional_point() {
        // 3a + 3b + 3c <= 5: any two items form a cover -> x_i + x_j <= 1.
        let mut m = Model::new("cov", Sense::Maximize);
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        let c = m.bin_var("c");
        m.add_con(
            "cap",
            LinExpr::from(a) * 3.0 + LinExpr::from(b) * 3.0 + LinExpr::from(c) * 3.0,
            ConOp::Le,
            5.0,
        );
        let mut sep = Separator::new(&m);
        // LP point x = (0.85, 0.8, 0): a+b is a violated cover (1.65 > 1).
        let cuts = sep.separate(&[0.85, 0.8, 0.0], 10);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].terms.iter().map(|&(j, _)| j).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(cuts[0].rhs, 1.0);
        // The same cut is not emitted twice.
        assert!(sep.separate(&[0.85, 0.8, 0.0], 10).is_empty());
    }

    #[test]
    fn clique_cut_from_mutex_hint() {
        let mut m = Model::new("cl", Sense::Maximize);
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.add_mutex_group("ab", vec![a, b]);
        let mut sep = Separator::new(&m);
        assert!(sep.separate(&[0.5, 0.4], 10).is_empty(), "0.9 <= 1: no violation");
        let cuts = sep.separate(&[0.7, 0.6], 10);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].rhs, 1.0);
        assert_eq!(cuts[0].terms.len(), 2);
    }

    #[test]
    fn integral_points_are_never_cut() {
        // Valid cover cuts cannot separate a feasible integral point.
        let mut m = Model::new("int", Sense::Maximize);
        let vars: Vec<_> = (0..5).map(|i| m.bin_var(format!("b{i}"))).collect();
        let weights = [2.0, 3.0, 4.0, 5.0, 1.0];
        m.add_con(
            "cap",
            LinExpr::weighted_sum(vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w))),
            ConOp::Le,
            7.0,
        );
        let mut sep = Separator::new(&m);
        // x = items 1 and 2 (weight 7, feasible).
        let point = [0.0, 1.0, 1.0, 0.0, 0.0];
        for cut in sep.separate(&point, 10) {
            let lhs: f64 = cut.terms.iter().map(|&(j, c)| c * point[j]).sum();
            assert!(lhs <= cut.rhs + 1e-9, "cut {} removes an integral point", cut.name);
        }
    }
}
