//! Compressed sparse column (CSC) storage for the revised simplex.
//!
//! The constraint matrix of an LP relaxation is stored once in CSC form:
//! `col_ptr[j]..col_ptr[j+1]` delimits the `(row, value)` pairs of column
//! `j`. The revised simplex only ever needs column access — pricing computes
//! `c_j - yᵀA_j` per column and FTRAN scatters one column — so no row-major
//! mirror is kept. Cut rows appended at the root trigger a single O(nnz)
//! rebuild, which is amortised across the whole branch-and-bound tree.

/// A sparse matrix in compressed sparse column form.
#[derive(Debug, Clone)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a matrix from per-row sparse data (`rows[i]` lists the
    /// `(column, value)` pairs of row `i`).
    pub fn from_rows(n_rows: usize, n_cols: usize, rows: &[Vec<(usize, f64)>]) -> CscMatrix {
        debug_assert_eq!(rows.len(), n_rows);
        let mut counts = vec![0usize; n_cols + 1];
        for row in rows {
            for &(j, _) in row {
                debug_assert!(j < n_cols);
                counts[j + 1] += 1;
            }
        }
        for j in 0..n_cols {
            counts[j + 1] += counts[j];
        }
        let nnz = counts[n_cols];
        let col_ptr = counts.clone();
        let mut cursor = counts;
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for (i, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                let slot = cursor[j];
                row_idx[slot] = i;
                values[slot] = v;
                cursor[j] += 1;
            }
        }
        CscMatrix { n_rows, n_cols, col_ptr, row_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// Number of non-zeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Dot product of column `j` with a dense vector indexed by row.
    #[inline]
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for k in self.col_ptr[j]..self.col_ptr[j + 1] {
            acc += self.values[k] * dense[self.row_idx[k]];
        }
        acc
    }

    /// Scatters `scale * column j` into a dense vector (`dense[r] += scale*v`).
    #[inline]
    pub fn col_axpy(&self, j: usize, scale: f64, dense: &mut [f64]) {
        for k in self.col_ptr[j]..self.col_ptr[j + 1] {
            dense[self.row_idx[k]] += scale * self.values[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        CscMatrix::from_rows(2, 3, &[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)]])
    }

    #[test]
    fn construction_and_column_access() {
        let m = sample();
        assert_eq!((m.n_rows(), m.n_cols(), m.nnz()), (2, 3, 3));
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 2.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(m.col(2).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(m.col_nnz(2), 1);
    }

    #[test]
    fn dot_and_axpy() {
        let m = sample();
        assert_eq!(m.col_dot(0, &[5.0, 7.0]), 10.0);
        assert_eq!(m.col_dot(1, &[5.0, 7.0]), 21.0);
        let mut acc = vec![1.0, 1.0];
        m.col_axpy(0, 2.0, &mut acc);
        assert_eq!(acc, vec![5.0, 1.0]);
    }

    #[test]
    fn empty_columns_are_allowed() {
        let m = CscMatrix::from_rows(2, 2, &[vec![(1, 4.0)], vec![]]);
        assert_eq!(m.col(0).count(), 0);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(0, 4.0)]);
    }
}
