//! Basis factorization for the revised simplex.
//!
//! The simplex basis `B` (one constraint-matrix column per row) is maintained
//! as a sparse LU factorization with partial pivoting plus a product-form
//! *eta file*:
//!
//! * [`Factorization::factorize`] runs a left-looking sparse LU on the basis
//!   columns (columns are processed in increasing fill order; rows are chosen
//!   by partial pivoting). Floorplanning bases are dominated by logical
//!   (identity) columns, so the factors stay close to the identity and the
//!   bump is small.
//! * After each simplex pivot, [`Factorization::update`] appends an *eta*
//!   transformation `B_new = B_old · E` where `E` is the identity with the
//!   pivot column replaced by the FTRAN-ed entering column. FTRAN/BTRAN apply
//!   the eta file around the LU solves, so a pivot costs O(nnz(α)) instead of
//!   a refactorization.
//! * The caller refactorizes from scratch once the eta file grows past its
//!   budget or an eta pivot is too small to be stable.
//!
//! `FTRAN` solves `B x = b` (entering-column transformation, basic-value
//! updates); `BTRAN` solves `Bᵀ y = c` (pricing, dual row extraction).

use crate::sparse::CscMatrix;

/// Sparse LU factors of a basis matrix: `B[:, col_order] = Pᵀ L U` with `P`
/// the partial-pivoting row permutation.
#[derive(Debug, Clone)]
struct LuFactors {
    /// Below-diagonal multipliers of `L` per factored column, keyed by
    /// *original* row index (unit diagonal implicit).
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Above-diagonal entries of `U` per factored column, keyed by factored
    /// position `< k`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per factored column.
    u_diag: Vec<f64>,
    /// Factored position -> original row (pivot row of that step).
    pivot_row: Vec<usize>,
    /// Original row -> factored position.
    row_pos: Vec<usize>,
    /// Factored position -> basis position (column processing order).
    col_order: Vec<usize>,
}

/// One product-form update: basis position `r` was replaced by a column whose
/// FTRAN image is `col` (sparse, basis-position space).
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    /// Off-pivot entries `(position, value)` of the transformed column.
    col: Vec<(usize, f64)>,
    /// Pivot entry (value at position `r`).
    diag: f64,
}

/// A maintained basis factorization: LU factors plus the eta file.
#[derive(Debug, Clone)]
pub struct Factorization {
    m: usize,
    lu: LuFactors,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
}

impl Factorization {
    /// Factorizes the basis given by `basic` (one matrix column per row).
    /// Returns `None` when the basis is numerically singular.
    pub fn factorize(matrix: &CscMatrix, basic: &[usize]) -> Option<Factorization> {
        let m = matrix.n_rows();
        debug_assert_eq!(basic.len(), m);

        // Process sparse columns first: with mostly-logical bases this keeps
        // the factors near the identity and minimises fill.
        let mut col_order: Vec<usize> = (0..m).collect();
        col_order.sort_by_key(|&p| (matrix.col_nnz(basic[p]), p));

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_diag: Vec<f64> = Vec::with_capacity(m);
        let mut pivot_row: Vec<usize> = Vec::with_capacity(m);
        let mut row_pos = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for k in 0..m {
            // Scatter the next basis column into dense row space.
            for &t in &touched {
                x[t] = 0.0;
            }
            touched.clear();
            for (r, v) in matrix.col(basic[col_order[k]]) {
                x[r] = v;
                touched.push(r);
            }
            // Forward solve through the columns factored so far.
            let mut u_col: Vec<(usize, f64)> = Vec::new();
            for j in 0..k {
                let zj = x[pivot_row[j]];
                if zj == 0.0 {
                    continue;
                }
                u_col.push((j, zj));
                for &(r, v) in &l_cols[j] {
                    if x[r] == 0.0 && v * zj != 0.0 {
                        touched.push(r);
                    }
                    x[r] -= zj * v;
                }
            }
            // Partial pivoting over the not-yet-pivoted rows.
            let mut best: Option<(usize, f64)> = None;
            for &r in touched.iter() {
                if row_pos[r] != usize::MAX {
                    continue;
                }
                let mag = x[r].abs();
                if best.is_none_or(|(_, b)| mag > b) {
                    best = Some((r, mag));
                }
            }
            // `touched` can contain duplicates; rescan deterministically for
            // the actual argmax by row index on ties.
            let mut pivot: Option<usize> = None;
            if let Some((_, best_mag)) = best {
                if best_mag > 1e-11 {
                    for r in 0..m {
                        if row_pos[r] == usize::MAX && x[r].abs() == best_mag {
                            pivot = Some(r);
                            break;
                        }
                    }
                }
            }
            let pr = pivot?;
            let diag = x[pr];
            let mut l_col: Vec<(usize, f64)> = Vec::new();
            for r in 0..m {
                if r != pr && row_pos[r] == usize::MAX && x[r] != 0.0 {
                    l_col.push((r, x[r] / diag));
                }
            }
            row_pos[pr] = k;
            pivot_row.push(pr);
            u_diag.push(diag);
            u_cols.push(u_col);
            l_cols.push(l_col);
        }

        let lu = LuFactors { l_cols, u_cols, u_diag, pivot_row, row_pos, col_order };
        Some(Factorization { m, lu, etas: Vec::new(), scratch: vec![0.0; m] })
    }

    /// Number of eta updates accumulated since the last refactorization.
    pub fn n_etas(&self) -> usize {
        self.etas.len()
    }

    /// Solves `B x = b`. On input `x[row]` holds the right-hand side by
    /// original row; on output `x[pos]` holds the solution by basis position.
    pub fn ftran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        let lu = &self.lu;
        // Forward: L z = P b (z by factored position, stored in scratch).
        for j in 0..self.m {
            let zj = x[lu.pivot_row[j]];
            if zj != 0.0 {
                for &(r, v) in &lu.l_cols[j] {
                    x[r] -= zj * v;
                }
            }
            self.scratch[j] = zj;
        }
        // Backward: U w = z (in place on scratch).
        for k in (0..self.m).rev() {
            let wk = self.scratch[k] / lu.u_diag[k];
            self.scratch[k] = wk;
            if wk != 0.0 {
                for &(i, v) in &lu.u_cols[k] {
                    self.scratch[i] -= v * wk;
                }
            }
        }
        // Permute back to basis-position space.
        for k in 0..self.m {
            x[lu.col_order[k]] = self.scratch[k];
        }
        // Apply the eta file, oldest first.
        for eta in &self.etas {
            let t = x[eta.r] / eta.diag;
            if t != 0.0 {
                for &(i, v) in &eta.col {
                    x[i] -= v * t;
                }
            }
            x[eta.r] = t;
        }
    }

    /// Solves `Bᵀ y = c`. On input `x[pos]` holds the cost by basis position;
    /// on output `x[row]` holds the solution by original row.
    pub fn btran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        // Apply the eta file transposed, newest first.
        for eta in self.etas.iter().rev() {
            let mut acc = x[eta.r];
            for &(i, v) in &eta.col {
                acc -= v * x[i];
            }
            x[eta.r] = acc / eta.diag;
        }
        let lu = &self.lu;
        // Permute into factored-column space.
        for k in 0..self.m {
            self.scratch[k] = x[lu.col_order[k]];
        }
        // Forward: Uᵀ w = c' (Uᵀ is lower triangular).
        for k in 0..self.m {
            let mut acc = self.scratch[k];
            for &(i, v) in &lu.u_cols[k] {
                acc -= v * self.scratch[i];
            }
            self.scratch[k] = acc / lu.u_diag[k];
        }
        // Backward: Lᵀ z = w; entries of L column j live on rows pivoted
        // after step j, so their positions are all `> j`.
        for j in (0..self.m).rev() {
            let mut acc = self.scratch[j];
            for &(r, v) in &lu.l_cols[j] {
                acc -= v * self.scratch[lu.row_pos[r]];
            }
            self.scratch[j] = acc;
        }
        // Undo the row permutation: y[pivot_row[j]] = z_j.
        for j in 0..self.m {
            x[lu.pivot_row[j]] = self.scratch[j];
        }
    }

    /// Records a basis change: position `r` is replaced by a column whose
    /// FTRAN image is `alpha` (dense, basis-position space). Returns `false`
    /// when the eta pivot is too small for a stable update, in which case the
    /// caller must refactorize instead.
    pub fn update(&mut self, r: usize, alpha: &[f64], pivot_tol: f64) -> bool {
        debug_assert_eq!(alpha.len(), self.m);
        let diag = alpha[r];
        let max = alpha.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if diag.abs() < pivot_tol || diag.abs() < 1e-8 * max {
            return false;
        }
        // Entries below the drop tolerance are noise from earlier eta
        // applications; keeping them would densify the file. The induced
        // error is bounded by the refactorization interval.
        let col: Vec<(usize, f64)> = alpha
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > 1e-12)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, col, diag });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference solve of `M x = b` by Gaussian elimination.
    #[allow(clippy::needless_range_loop)] // permuted 2-D index math
    fn dense_solve(m: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut a: Vec<Vec<f64>> = m.to_vec();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let p = (k..n)
                .max_by(|&i, &j| a[perm[i]][k].abs().total_cmp(&a[perm[j]][k].abs()))
                .unwrap();
            perm.swap(k, p);
            for i in (k + 1)..n {
                let f = a[perm[i]][k] / a[perm[k]][k];
                for j in k..n {
                    let v = a[perm[k]][j];
                    a[perm[i]][j] -= f * v;
                }
                x[perm[i]] -= f * x[perm[k]];
            }
        }
        let mut out = vec![0.0; n];
        for k in (0..n).rev() {
            let mut acc = x[perm[k]];
            for j in (k + 1)..n {
                acc -= a[perm[k]][j] * out[j];
            }
            out[k] = acc / a[perm[k]][k];
        }
        out
    }

    fn matrix_3x3() -> (CscMatrix, Vec<Vec<f64>>) {
        // Columns 0..3 of a 3x3 basis:
        //   [ 2 1 0 ]
        //   [ 0 3 1 ]
        //   [ 4 0 5 ]
        let rows =
            vec![vec![(0, 2.0), (1, 1.0)], vec![(1, 3.0), (2, 1.0)], vec![(0, 4.0), (2, 5.0)]];
        let dense = vec![vec![2.0, 1.0, 0.0], vec![0.0, 3.0, 1.0], vec![4.0, 0.0, 5.0]];
        (CscMatrix::from_rows(3, 3, &rows), dense)
    }

    #[test]
    fn ftran_matches_dense_solve() {
        let (csc, dense) = matrix_3x3();
        let mut f = Factorization::factorize(&csc, &[0, 1, 2]).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let mut x = b.clone();
        f.ftran(&mut x);
        let want = dense_solve(&dense, &b);
        for (got, want) in x.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-10, "{x:?} vs {want:?}");
        }
    }

    #[test]
    fn btran_matches_dense_transpose_solve() {
        let (csc, dense) = matrix_3x3();
        let mut f = Factorization::factorize(&csc, &[0, 1, 2]).unwrap();
        let c = vec![0.5, 2.0, -1.0];
        let mut y = c.clone();
        f.btran(&mut y);
        // Solve Mᵀ y = c densely.
        let t: Vec<Vec<f64>> = (0..3).map(|i| (0..3).map(|j| dense[j][i]).collect()).collect();
        let want = dense_solve(&t, &c);
        for (got, want) in y.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-10, "{y:?} vs {want:?}");
        }
    }

    #[test]
    fn permuted_basis_columns_are_handled() {
        let (csc, dense) = matrix_3x3();
        // Basis picks columns in order [2, 0, 1]: B[:, k] = M[:, basic[k]].
        let basic = [2usize, 0, 1];
        let mut f = Factorization::factorize(&csc, &basic).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        let mut x = b.clone();
        f.ftran(&mut x);
        let bd: Vec<Vec<f64>> =
            (0..3).map(|i| basic.iter().map(|&j| dense[i][j]).collect()).collect();
        let want = dense_solve(&bd, &b);
        for (got, want) in x.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-10, "{x:?} vs {want:?}");
        }
    }

    #[test]
    fn eta_update_tracks_column_replacement() {
        let (csc, dense) = matrix_3x3();
        let mut f = Factorization::factorize(&csc, &[0, 1, 2]).unwrap();
        // Replace basis position 1 with a new column a = [1, 1, 1].
        let a = vec![1.0, 1.0, 1.0];
        let mut alpha = a.clone();
        f.ftran(&mut alpha);
        assert!(f.update(1, &alpha, 1e-9));
        assert_eq!(f.n_etas(), 1);
        // New basis: columns [M0, a, M2].
        let nb: Vec<Vec<f64>> = (0..3).map(|i| vec![dense[i][0], a[i], dense[i][2]]).collect();
        let b = vec![2.0, 0.0, -1.0];
        let mut x = b.clone();
        f.ftran(&mut x);
        let want = dense_solve(&nb, &b);
        for (got, want) in x.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-9, "{x:?} vs {want:?}");
        }
        // BTRAN against the same updated basis.
        let c = vec![1.0, 2.0, 3.0];
        let mut y = c.clone();
        f.btran(&mut y);
        let nt: Vec<Vec<f64>> = (0..3).map(|i| (0..3).map(|j| nb[j][i]).collect()).collect();
        let want = dense_solve(&nt, &c);
        for (got, want) in y.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-9, "{y:?} vs {want:?}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Two identical columns.
        let rows = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 2.0), (1, 2.0)]];
        let csc = CscMatrix::from_rows(2, 2, &rows);
        assert!(Factorization::factorize(&csc, &[0, 1]).is_none());
    }
}
