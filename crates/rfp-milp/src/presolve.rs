//! MILP presolve: bound propagation and big-M coefficient tightening.
//!
//! Run once before the root LP, the presolver rewrites the model into an
//! equivalent one whose LP relaxation is tighter, so every node of the
//! branch-and-bound tree re-solves a smaller, better-bounded LP:
//!
//! * **bound propagation** — for every row, the activity range implied by
//!   the current variable bounds is used to derive implied bounds on each
//!   participating variable; integer bounds are rounded inward. Passes
//!   repeat until a fixpoint (or a small round cap), since one tightened
//!   bound sharpens the activity ranges of every row it appears in;
//! * **big-M coefficient tightening** — an indicator-style row such as
//!   `x + M·z ≥ b` with binary `z` is only *vacuously* satisfied when
//!   `z = 1`; shrinking `M` to the smallest value that keeps it vacuous
//!   (and the analogous right-hand-side shift for activating rows) cuts
//!   off the fractional `z` band the LP relaxation would otherwise exploit.
//!
//! Both transformations preserve the set of *integer-feasible* points
//! exactly — coefficient tightening deliberately cuts LP-only points, which
//! is its purpose — and never add, remove or reorder variables, so variable
//! indices, warm starts and incumbent callbacks all keep working on the
//! presolved model unchanged.
//!
//! Infeasibility discovered during propagation (a variable's bounds cross,
//! or an integer variable's interval contains no integer) is reported so
//! the solver can return [`crate::SolveStatus::Infeasible`] without ever
//! building an LP.

use crate::model::{ConOp, Model, VarKind};

/// Integer rounding / comparison tolerance of the presolver.
const EPS: f64 = 1e-9;

/// Upper bound on propagation passes; floorplanning models reach their
/// fixpoint in two or three.
const MAX_ROUNDS: usize = 8;

/// Outcome of presolving a model.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The tightened model (same variables, same objective, same
    /// integer-feasible set).
    pub model: Model,
    /// What the presolver did.
    pub stats: PresolveStats,
}

/// Tally of presolve reductions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Propagation rounds executed (0 when the model was empty).
    pub rounds: usize,
    /// Variable bounds strictly tightened.
    pub bounds_tightened: usize,
    /// Big-M coefficients (or paired right-hand sides) strengthened.
    pub coeffs_tightened: usize,
    /// `true` when propagation proved the model infeasible outright.
    pub infeasible: bool,
}

/// Presolves a model: returns a tightened copy plus reduction statistics.
pub fn presolve(model: &Model) -> Presolved {
    let mut m = model.clone();
    let mut stats = PresolveStats::default();

    for _ in 0..MAX_ROUNDS {
        stats.rounds += 1;
        let mut changed = propagate_bounds(&mut m, &mut stats);
        if stats.infeasible {
            return Presolved { model: m, stats };
        }
        changed |= tighten_big_m(&mut m, &mut stats);
        if !changed {
            break;
        }
    }
    Presolved { model: m, stats }
}

/// Activity range `[min, max]` of `coeff · x` over the variable's bounds.
fn term_range(coeff: f64, lb: f64, ub: f64) -> (f64, f64) {
    if coeff >= 0.0 {
        (coeff * lb, coeff * ub)
    } else {
        (coeff * ub, coeff * lb)
    }
}

/// One pass of constraint-driven bound propagation. Returns `true` when any
/// bound moved; sets `stats.infeasible` when bounds cross.
fn propagate_bounds(m: &mut Model, stats: &mut PresolveStats) -> bool {
    let mut changed = false;
    let n_cons = m.n_cons();
    for ci in 0..n_cons {
        let con = &m.constraints()[ci];
        let op = con.op;
        let rhs = con.rhs;
        let terms: Vec<(usize, f64)> = con.expr.iter().map(|(v, c)| (v.index(), c)).collect();

        // Row activity range over the current bounds.
        let (mut act_min, mut act_max) = (0.0f64, 0.0f64);
        for &(j, c) in &terms {
            let v = m.var(crate::model::VarId::from_index(j));
            let (tmin, tmax) = term_range(c, v.lb, v.ub);
            act_min += tmin;
            act_max += tmax;
        }

        for &(j, c) in &terms {
            if c == 0.0 {
                continue;
            }
            let id = crate::model::VarId::from_index(j);
            let (lb, ub, integral) = {
                let v = m.var(id);
                (v.lb, v.ub, v.kind.is_integral())
            };
            let (tmin, tmax) = term_range(c, lb, ub);
            // Activity of the *other* terms.
            let rest_min = act_min - tmin;
            let rest_max = act_max - tmax;

            let mut new_lb = lb;
            let mut new_ub = ub;
            // `Σ ≤ b` ⇒ `c·x ≤ b − rest_min`; `Σ ≥ b` ⇒ `c·x ≥ b − rest_max`.
            if (op == ConOp::Le || op == ConOp::Eq) && rest_min.is_finite() {
                let cap = (rhs - rest_min) / c;
                if c > 0.0 {
                    new_ub = new_ub.min(cap);
                } else {
                    new_lb = new_lb.max(cap);
                }
            }
            if (op == ConOp::Ge || op == ConOp::Eq) && rest_max.is_finite() {
                let floor = (rhs - rest_max) / c;
                if c > 0.0 {
                    new_lb = new_lb.max(floor);
                } else {
                    new_ub = new_ub.min(floor);
                }
            }
            if integral {
                if new_lb.is_finite() {
                    new_lb = (new_lb - EPS).ceil();
                }
                if new_ub.is_finite() {
                    new_ub = (new_ub + EPS).floor();
                }
            }
            if new_lb > new_ub + EPS {
                stats.infeasible = true;
                return changed;
            }
            // Guard against creep: only adopt a *meaningful* tightening.
            let moved_lb = new_lb > lb + EPS;
            let moved_ub = new_ub < ub - EPS;
            if moved_lb || moved_ub {
                m.set_bounds(
                    id,
                    if moved_lb { new_lb } else { lb },
                    if moved_ub { new_ub.max(lb) } else { ub },
                );
                stats.bounds_tightened += usize::from(moved_lb) + usize::from(moved_ub);
                changed = true;
                // Refresh the cached activity range with the new bounds.
                let v = m.var(id);
                let (nmin, nmax) = term_range(c, v.lb, v.ub);
                act_min += nmin - tmin;
                act_max += nmax - tmax;
            }
        }
    }
    changed
}

/// Big-M coefficient tightening on binary columns of inequality rows.
/// Returns `true` when any coefficient (or right-hand side) was changed.
fn tighten_big_m(m: &mut Model, stats: &mut PresolveStats) -> bool {
    let mut changed = false;
    // Snapshot the bounds; tightening never changes bounds, so a single
    // read per variable is enough for the whole pass.
    let bounds: Vec<(f64, f64, bool)> = m
        .vars()
        .iter()
        .map(|v| (v.lb, v.ub, v.kind == VarKind::Binary && v.lb == 0.0 && v.ub == 1.0))
        .collect();
    for con in m.constraints_mut() {
        if con.op == ConOp::Eq {
            continue;
        }
        let terms: Vec<(usize, f64)> = con.expr.iter().map(|(v, c)| (v.index(), c)).collect();
        for &(k, a) in &terms {
            if !bounds[k].2 || a == 0.0 {
                continue;
            }
            // Activity range of the row *without* the binary's term.
            let (mut rest_min, mut rest_max) = (0.0f64, 0.0f64);
            for &(j, c) in &terms {
                if j == k {
                    continue;
                }
                let (tmin, tmax) = term_range(c, bounds[j].0, bounds[j].1);
                rest_min += tmin;
                rest_max += tmax;
            }
            let b = con.rhs;
            let var = crate::model::VarId::from_index(k);
            match con.op {
                // `rest + a·z ≥ b`.
                ConOp::Ge => {
                    if a > 0.0 && rest_min.is_finite() {
                        // z = 1 deactivates the row; shrink M to the
                        // smallest deactivating value.
                        let slack = b - rest_min;
                        if slack > EPS && a > slack + EPS {
                            con.expr.add_term(var, slack - a);
                            stats.coeffs_tightened += 1;
                            changed = true;
                        }
                    } else if a < 0.0 && rest_min.is_finite() && rest_min > b + EPS {
                        // z = 1 activates the row, z = 0 is vacuous; shift
                        // rhs (and the coefficient with it) until the
                        // vacuous side is tight: b' = rest_min, b' − a' = b − a.
                        let shift = rest_min - b;
                        con.expr.add_term(var, shift);
                        con.rhs += shift;
                        stats.coeffs_tightened += 1;
                        changed = true;
                    }
                }
                // `rest + a·z ≤ b` — the mirror image.
                ConOp::Le => {
                    if a < 0.0 && rest_max.is_finite() {
                        let slack = b - rest_max; // negative when binding
                        if slack < -EPS && a < slack - EPS {
                            con.expr.add_term(var, slack - a);
                            stats.coeffs_tightened += 1;
                            changed = true;
                        }
                    } else if a > 0.0 && rest_max.is_finite() && rest_max < b - EPS {
                        let shift = rest_max - b; // negative
                        con.expr.add_term(var, shift);
                        con.rhs += shift;
                        stats.coeffs_tightened += 1;
                        changed = true;
                    }
                }
                ConOp::Eq => unreachable!("equality rows are skipped above"),
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    #[test]
    fn bound_propagation_tightens_and_rounds_integer_bounds() {
        // x + y <= 4 with x, y integer in [0, 10]: both drop to [0, 4].
        let mut m = Model::new("bp", Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con("cap", LinExpr::from(x) + y, ConOp::Le, 4.0);
        let pre = presolve(&m);
        assert!(!pre.stats.infeasible);
        assert_eq!(pre.model.var(x).ub, 4.0);
        assert_eq!(pre.model.var(y).ub, 4.0);
        assert!(pre.stats.bounds_tightened >= 2);
    }

    #[test]
    fn fractional_equality_on_an_integer_is_infeasible() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        m.add_con("odd", LinExpr::from(x) * 2.0, ConOp::Eq, 3.0);
        let pre = presolve(&m);
        assert!(pre.stats.infeasible);
    }

    #[test]
    fn big_m_ge_row_coefficient_shrinks() {
        // x + 100 z >= 5, x in [0, 100], z binary: M shrinks to 5.
        let mut m = Model::new("bigm", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 100.0);
        let z = m.bin_var("z");
        m.add_con("on", LinExpr::from(x) + LinExpr::from(z) * 100.0, ConOp::Ge, 5.0);
        let pre = presolve(&m);
        let con = &pre.model.constraints()[0];
        assert!((con.expr.coeff(z) - 5.0).abs() < 1e-9, "coeff {}", con.expr.coeff(z));
        assert!(pre.stats.coeffs_tightened >= 1);
    }

    #[test]
    fn big_m_activating_row_shifts_rhs() {
        // y - 100 z >= -95 (y in [0, 100], z binary) == "z=1 forces y >= 5";
        // tightens to y - 5 z >= 0.
        let mut m = Model::new("bigm2", Sense::Minimize);
        let y = m.cont_var("y", 0.0, 100.0);
        let z = m.bin_var("z");
        m.add_con("on", LinExpr::from(y) - LinExpr::from(z) * 100.0, ConOp::Ge, -95.0);
        let pre = presolve(&m);
        let con = &pre.model.constraints()[0];
        assert!((con.expr.coeff(z) + 5.0).abs() < 1e-9, "coeff {}", con.expr.coeff(z));
        assert!((con.rhs - 0.0).abs() < 1e-9, "rhs {}", con.rhs);
        // The integer-feasible set is unchanged: z=1 still forces y >= 5,
        // z=0 still allows y = 0.
        assert!(pre.model.is_feasible(&[5.0, 1.0], 1e-9));
        assert!(pre.model.is_feasible(&[0.0, 0.0], 1e-9));
        assert!(!pre.model.is_feasible(&[4.0, 1.0], 1e-9));
    }

    #[test]
    fn pairwise_knapsack_rows_reduce_to_cliques() {
        // 2x + 2y <= 3 on binaries is the LP-weak form of x + y <= 1.
        let mut m = Model::new("cliq", Sense::Maximize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        m.add_con("xy", LinExpr::from(x) * 2.0 + LinExpr::from(y) * 2.0, ConOp::Le, 3.0);
        let pre = presolve(&m);
        let con = &pre.model.constraints()[0];
        // After tightening both coefficients the row admits exactly one of
        // x, y — the relaxation can no longer sit at (0.75, 0.75).
        assert!(!pre.model.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(pre.model.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(pre.model.is_feasible(&[0.0, 1.0], 1e-9));
        let lp_cheat = con.expr.coeff(x) * 0.75 + con.expr.coeff(y) * 0.75;
        assert!(lp_cheat > con.rhs + 1e-9, "LP point (0.75, 0.75) must be cut off");
    }

    #[test]
    fn a_satisfied_model_is_untouched() {
        // Wide bounds, slack rows: nothing to do.
        let mut m = Model::new("idle", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 1.0);
        let y = m.cont_var("y", 0.0, 1.0);
        m.add_con("c", LinExpr::from(x) + y, ConOp::Le, 10.0);
        let pre = presolve(&m);
        assert_eq!(pre.stats.bounds_tightened, 0);
        assert_eq!(pre.stats.coeffs_tightened, 0);
        assert_eq!(pre.model, m);
    }

    #[test]
    fn infinite_bounds_do_not_poison_propagation() {
        let mut m = Model::new("inf-bounds", Sense::Minimize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, 5.0);
        m.add_con("c", LinExpr::from(x) + y, ConOp::Le, 8.0);
        let pre = presolve(&m);
        assert!(!pre.stats.infeasible);
        // x's upper bound is implied by the row: x <= 8.
        assert_eq!(pre.model.var(x).ub, 8.0);
        // y cannot be tightened (8 - 0 > 5).
        assert_eq!(pre.model.var(y).ub, 5.0);
    }
}
