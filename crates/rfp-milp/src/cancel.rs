//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle around a shared atomic
//! flag. Long-running solver loops poll [`CancelToken::is_cancelled`] and
//! unwind as soon as any clone of the token is [`CancelToken::cancel`]led —
//! the mechanism the engine portfolio uses to stop losing engines once a
//! proven result is available, and that interactive callers use to abort a
//! solve from another thread.
//!
//! Cancellation is *cooperative*: it never interrupts a pivot or a node
//! mid-flight, it only stops the search at the next poll point, so a
//! cancelled solve still returns a well-formed (budget-exhausted) result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag polled by the solver inner loops.
///
/// Clones share the same flag; cancelling any clone cancels them all.
///
/// ```
/// use rfp_milp::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once any clone has been cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || {
            while !remote.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
