//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle around a shared atomic
//! flag. Long-running solver loops poll [`CancelToken::is_cancelled`] and
//! unwind as soon as any clone of the token is [`CancelToken::cancel`]led —
//! the mechanism the engine portfolio uses to stop losing engines once a
//! proven result is available, and that interactive callers use to abort a
//! solve from another thread.
//!
//! Cancellation is *cooperative*: it never interrupts a pivot or a node
//! mid-flight, it only stops the search at the next poll point, so a
//! cancelled solve still returns a well-formed (budget-exhausted) result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag polled by the solver inner loops.
///
/// Clones share the same flag; cancelling any clone cancels them all.
///
/// ```
/// use rfp_milp::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Optional parent: a child token is also cancelled when any ancestor
    /// is, without the child's own flag ever touching the parent.
    parent: Option<Box<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Derives a *child* token: cancelling the parent (or any ancestor)
    /// cancels the child, but cancelling the child leaves the parent
    /// untouched. The parallel branch-and-bound uses this for its internal
    /// stop signal — workers wind down when the search decides to stop *or*
    /// the caller cancels, while an internal stop never masquerades as a
    /// caller cancellation.
    pub fn child(&self) -> CancelToken {
        CancelToken { flag: Arc::default(), parent: Some(Box::new(self.clone())) }
    }

    /// Requests cancellation; every clone of this token (and every child
    /// derived from it) observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once any clone — or, for a child token, any ancestor —
    /// has been cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn child_tokens_observe_the_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled() && grandchild.is_cancelled());
        assert!(!parent.is_cancelled(), "a child cancel must not leak upward");
        let child2 = parent.child();
        parent.cancel();
        assert!(child2.is_cancelled() && parent.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || {
            while !remote.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
