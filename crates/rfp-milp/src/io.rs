//! Export of models in the (CPLEX-style) LP text format.
//!
//! The exporter is used by golden tests, by debugging sessions and by anyone
//! who wants to cross-check the generated floorplanning formulations with an
//! external solver.

use crate::expr::LinExpr;
use crate::model::{ConOp, Model, Sense, VarKind};
use std::fmt::Write as _;

/// Renders a linear expression as LP-format text (without the constant term).
fn write_expr(out: &mut String, expr: &LinExpr, model: &Model) {
    let mut first = true;
    for (v, c) in expr.iter() {
        let name = &model.var(v).name;
        if first {
            if c < 0.0 {
                let _ = write!(out, "- ");
            }
            let _ = write!(out, "{} {}", fmt_coeff(c.abs()), name);
            first = false;
        } else {
            let sign = if c < 0.0 { "-" } else { "+" };
            let _ = write!(out, " {} {} {}", sign, fmt_coeff(c.abs()), name);
        }
    }
    if first {
        let _ = write!(out, "0");
    }
}

fn fmt_coeff(c: f64) -> String {
    if (c - c.round()).abs() < 1e-12 {
        format!("{}", c.round() as i64)
    } else {
        format!("{c}")
    }
}

/// Serialises a model in LP format.
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\\ Model: {}", model.name);
    let _ = writeln!(
        out,
        "{}",
        match model.sense {
            Sense::Minimize => "Minimize",
            Sense::Maximize => "Maximize",
        }
    );
    let _ = write!(out, " obj: ");
    write_expr(&mut out, &model.objective, model);
    let _ = writeln!(out);
    let _ = writeln!(out, "Subject To");
    for (i, con) in model.constraints().iter().enumerate() {
        let name = if con.name.is_empty() { format!("c{i}") } else { con.name.clone() };
        let _ = write!(out, " {name}: ");
        write_expr(&mut out, &con.expr, model);
        let op = match con.op {
            ConOp::Le => "<=",
            ConOp::Ge => ">=",
            ConOp::Eq => "=",
        };
        let _ = writeln!(out, " {op} {}", fmt_coeff(con.rhs));
    }
    let _ = writeln!(out, "Bounds");
    for v in model.vars() {
        if v.kind == VarKind::Binary {
            continue;
        }
        if v.ub.is_finite() {
            let _ = writeln!(out, " {} <= {} <= {}", fmt_coeff(v.lb), v.name, fmt_coeff(v.ub));
        } else {
            let _ = writeln!(out, " {} <= {}", fmt_coeff(v.lb), v.name);
        }
    }
    let generals: Vec<&str> = model
        .vars()
        .iter()
        .filter(|v| v.kind == VarKind::Integer)
        .map(|v| v.name.as_str())
        .collect();
    if !generals.is_empty() {
        let _ = writeln!(out, "Generals");
        let _ = writeln!(out, " {}", generals.join(" "));
    }
    let binaries: Vec<&str> = model
        .vars()
        .iter()
        .filter(|v| v.kind == VarKind::Binary)
        .map(|v| v.name.as_str())
        .collect();
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binaries");
        let _ = writeln!(out, " {}", binaries.join(" "));
    }
    let _ = writeln!(out, "End");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConOp, Model, Sense};

    #[test]
    fn lp_format_contains_all_sections() {
        let mut m = Model::new("fmt", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 4.0);
        let y = m.int_var("y", 0.0, 3.0);
        let z = m.bin_var("z");
        m.add_con("cap", LinExpr::from(x) + LinExpr::from(y) * 2.0 - z, ConOp::Le, 5.0);
        m.add_con("link", LinExpr::from(y) - LinExpr::from(z) * 3.0, ConOp::Ge, 0.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(z) * 10.0);
        let text = to_lp_format(&m);
        assert!(text.contains("Minimize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("cap: 1 x + 2 y - 1 z <= 5"));
        assert!(text.contains("link: 1 y - 3 z >= 0"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("0 <= x <= 4"));
        assert!(text.contains("Generals"));
        assert!(text.contains("Binaries"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let m = Model::new("empty", Sense::Maximize);
        let text = to_lp_format(&m);
        assert!(text.contains("obj: 0"));
        assert!(text.contains("Maximize"));
    }
}
