//! Shared numerical tolerances.
//!
//! Every layer of the solver used to hand-roll its own feasibility and
//! integrality constants (the simplex, the branch-and-bound and the model
//! checker each had their own); they are centralised here so a tolerance
//! change propagates consistently through LP pricing, ratio tests, incumbent
//! acceptance and solution verification.

/// Reduced-cost / LP feasibility tolerance used by the simplex.
pub const LP_FEAS: f64 = 1e-7;

/// Minimum magnitude accepted for a simplex pivot element.
pub const PIVOT: f64 = 1e-9;

/// Integrality tolerance: a value within this distance of an integer is
/// treated as integral by branch-and-bound and by the model checker.
pub const INTEGRALITY: f64 = 1e-6;

/// Constraint/bound feasibility tolerance for checking candidate incumbents
/// and final solutions against the original model.
pub const FEASIBILITY: f64 = 1e-6;

/// Looser feasibility tolerance applied to externally supplied warm starts,
/// which are encoded from geometric data and accumulate more rounding noise
/// than LP-derived assignments.
pub const WARM_START: f64 = 1e-5;

/// Bound value used to clamp infinite lower bounds: the simplex requires
/// finite activation values for non-basic variables.
pub const INFINITE_BOUND: f64 = 1e12;

/// Absolute optimality gap at which branch-and-bound considers a node proven.
pub const GAP_ABS: f64 = 1e-6;

/// Relative optimality gap at which branch-and-bound stops.
pub const GAP_REL: f64 = 1e-6;
