//! Sparse revised simplex with bounded variables.
//!
//! This is the LP engine under branch and bound. Unlike the retired dense
//! tableau (kept in [`crate::dense`] as a test oracle), the revised simplex
//! keeps the constraint matrix in CSC form ([`crate::sparse`]) and maintains
//! a basis factorization with LU + eta updates ([`crate::basis`]), so one
//! iteration costs O(nnz) instead of O(rows × columns):
//!
//! * every constraint row carries a *logical* variable `s` with
//!   `a·x + s = rhs` (`s ≥ 0` for `≤`, `s ≤ 0` for `≥`, `s = 0` for `=`), so
//!   the all-logical identity basis is always available as a cold start — no
//!   artificial variables are ever added;
//! * the cold start runs a **composite phase 1** (minimise the sum of bound
//!   violations of basic variables, with costs recomputed per iteration)
//!   followed by the real phase 2;
//! * [`StandardForm::solve_warm`] is a **dual simplex**: starting from a
//!   parent-optimal basis snapshot it repairs primal feasibility after bound
//!   tightenings, which is how branch-and-bound children re-solve in a
//!   handful of pivots instead of from scratch;
//! * cut rows can be appended ([`StandardForm::add_rows`]) and an existing
//!   snapshot extended with the new logical basics, so a cut round re-solves
//!   dually as well;
//! * the primal prices with **Devex** (approximate steepest edge): reduced
//!   costs are scored against online reference weights `d_j² / w_j`, updated
//!   from the transformed pivot row each iteration, which steers the walk
//!   along steep edges and cuts the iteration count on the near-degenerate
//!   big-M LPs floorplanning produces; pricing switches to Bland's rule
//!   after a run of degenerate pivots, guaranteeing termination.
//!
//! The solver is deterministic: ties are broken by column index everywhere.

use crate::basis::Factorization;
use crate::model::{ConOp, Model, Sense};
use crate::sparse::CscMatrix;
use crate::tol;

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was hit before optimality was proven.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value in the *model's* sense (meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the structural (model) variables.
    pub values: Vec<f64>,
    /// Number of simplex iterations performed.
    pub iterations: usize,
}

/// Tunable parameters of the simplex.
#[derive(Debug, Clone)]
pub struct LpConfig {
    /// Feasibility / reduced-cost tolerance.
    pub tol: f64,
    /// Minimum magnitude accepted for a pivot element.
    pub pivot_tol: f64,
    /// Hard cap on simplex iterations. `0` means "derive from problem size".
    pub max_iterations: usize,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Cooperative cancellation, polled once per pivot; an interrupted solve
    /// returns [`LpStatus::IterationLimit`]. The MILP driver shares its own
    /// token here so a cancellation fires even mid-LP (the root relaxations
    /// of full-die models run for minutes otherwise).
    pub cancel: crate::cancel::CancelToken,
    /// Absolute wall-clock deadline, polled alongside `cancel`.
    pub deadline: Option<std::time::Instant>,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig {
            tol: tol::LP_FEAS,
            pivot_tol: tol::PIVOT,
            max_iterations: 0,
            refactor_interval: 64,
            cancel: crate::cancel::CancelToken::default(),
            deadline: None,
        }
    }
}

impl LpConfig {
    /// `true` once the cancellation token fired or the deadline passed.
    #[inline]
    pub fn interrupted(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// Status of one column with respect to the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// A row appended to a [`StandardForm`] (e.g. a cutting plane): sparse terms
/// over structural columns, operator, right-hand side.
pub type CutRow = (Vec<(usize, f64)>, ConOp, f64);

/// A resumable basis: which column is basic in each row and where every
/// non-basic column rests. Cheap to clone and share between the two children
/// of a branch-and-bound node.
#[derive(Debug, Clone)]
pub struct BasisSnapshot {
    basis: Vec<usize>,
    status: Vec<VStat>,
}

impl BasisSnapshot {
    /// Number of rows the snapshot was taken for.
    pub fn n_rows(&self) -> usize {
        self.basis.len()
    }
}

/// Pre-processed computational form of a model: every row as an equality with
/// a logical column, constraint matrix in CSC form.
///
/// The form depends only on the constraint matrix, so branch and bound builds
/// it once and re-solves with different variable bounds; cut rows may be
/// appended at the root.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of structural (model) variables.
    n_struct: usize,
    /// Sparse rows over structural columns (logical columns are implicit:
    /// row `i` owns column `n_struct + i` with coefficient 1).
    rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides.
    rhs: Vec<f64>,
    /// Default bounds of structural + logical columns.
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Minimisation objective over structural columns (sign-adjusted).
    obj: Vec<f64>,
    /// `true` if the model maximises (objective value is negated back).
    maximize: bool,
    /// Constant term of the objective.
    obj_constant: f64,
    /// CSC image of `rows` + logical identity, rebuilt when rows are added.
    matrix: CscMatrix,
}

/// Clamps an infinite lower bound to the simplex's finite stand-in.
fn clamp_lb(lb: f64) -> f64 {
    if lb.is_finite() {
        lb
    } else {
        -tol::INFINITE_BOUND
    }
}

impl StandardForm {
    /// Builds the computational form of a model.
    pub fn from_model(model: &Model) -> StandardForm {
        let n_struct = model.n_vars();
        let maximize = model.sense == Sense::Maximize;

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(model.n_cons());
        let mut rhs: Vec<f64> = Vec::with_capacity(model.n_cons());
        let mut lb = Vec::with_capacity(n_struct + model.n_cons());
        let mut ub = Vec::with_capacity(n_struct + model.n_cons());
        for v in model.vars() {
            lb.push(clamp_lb(v.lb));
            ub.push(v.ub);
        }
        let mut logical_lb = Vec::with_capacity(model.n_cons());
        let mut logical_ub = Vec::with_capacity(model.n_cons());
        for con in model.constraints() {
            rows.push(con.expr.iter().map(|(v, c)| (v.index(), c)).collect());
            rhs.push(con.rhs);
            let (l, u) = Self::logical_bounds(con.op);
            logical_lb.push(l);
            logical_ub.push(u);
        }
        lb.extend(logical_lb);
        ub.extend(logical_ub);

        let mut obj = vec![0.0; n_struct];
        for (v, c) in model.objective.iter() {
            obj[v.index()] = if maximize { -c } else { c };
        }
        let obj_constant = model.objective.constant_term();

        let mut sf = StandardForm {
            n_struct,
            rows,
            rhs,
            lb,
            ub,
            obj,
            maximize,
            obj_constant,
            matrix: CscMatrix::from_rows(0, 0, &[]),
        };
        sf.rebuild_matrix();
        sf
    }

    /// Bounds of the logical column of a row with the given operator.
    fn logical_bounds(op: ConOp) -> (f64, f64) {
        match op {
            ConOp::Le => (0.0, f64::INFINITY),
            ConOp::Ge => (-tol::INFINITE_BOUND, 0.0),
            ConOp::Eq => (0.0, 0.0),
        }
    }

    fn rebuild_matrix(&mut self) {
        let m = self.rows.len();
        let full: Vec<Vec<(usize, f64)>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut r = row.clone();
                r.push((self.n_struct + i, 1.0));
                r
            })
            .collect();
        self.matrix = CscMatrix::from_rows(m, self.n_struct + m, &full);
    }

    /// Number of structural variables.
    pub fn n_struct(&self) -> usize {
        self.n_struct
    }

    /// Number of rows (constraints, including appended cut rows).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of columns (structural + logical).
    fn n_cols(&self) -> usize {
        self.n_struct + self.rows.len()
    }

    /// Minimisation cost of a column (0 on logicals).
    fn cost(&self, j: usize) -> f64 {
        if j < self.n_struct {
            self.obj[j]
        } else {
            0.0
        }
    }

    /// Appends rows (cuts) over structural columns. Each row gets a fresh
    /// logical column; existing column indices are unchanged.
    pub fn add_rows(&mut self, new_rows: &[CutRow]) {
        for (terms, op, rhs) in new_rows {
            debug_assert!(terms.iter().all(|&(j, _)| j < self.n_struct));
            self.rows.push(terms.clone());
            self.rhs.push(*rhs);
            let (l, u) = Self::logical_bounds(*op);
            self.lb.push(l);
            self.ub.push(u);
        }
        self.rebuild_matrix();
    }

    /// Extends a snapshot taken before rows were appended: the new logical
    /// columns enter the basis. Returns `None` if the snapshot does not match
    /// this form.
    pub fn extend_snapshot(&self, snap: &BasisSnapshot) -> Option<BasisSnapshot> {
        let old_rows = snap.basis.len();
        if old_rows > self.n_rows() || snap.status.len() != self.n_struct + old_rows {
            return None;
        }
        let mut basis = snap.basis.clone();
        let mut status = snap.status.clone();
        for i in old_rows..self.n_rows() {
            basis.push(self.n_struct + i);
            status.push(VStat::Basic);
        }
        Some(BasisSnapshot { basis, status })
    }

    /// Solves the LP with the model's own bounds.
    pub fn solve(&self, config: &LpConfig) -> LpResult {
        self.solve_with_bounds(None, config)
    }

    /// Solves the LP from a cold start, overriding the bounds of the
    /// structural variables when provided.
    pub fn solve_with_bounds(
        &self,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> LpResult {
        self.solve_cold(bounds_override, config).0
    }

    /// Cold solve that also returns a reusable basis snapshot on optimality.
    pub fn solve_cold(
        &self,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> (LpResult, Option<BasisSnapshot>) {
        if let Some(res) = self.crossed_bounds(bounds_override, config) {
            return (res, None);
        }
        let Some(mut w) = Worker::start(self, config, bounds_override, None) else {
            return (self.failed(LpStatus::IterationLimit), None);
        };
        let status = w.primal();
        let snap = (status == LpStatus::Optimal).then(|| w.snapshot());
        (w.result(status), snap)
    }

    /// Warm re-solve with the **dual simplex** from a parent-optimal basis
    /// after bound changes. Falls back to a cold solve when the snapshot is
    /// unusable (wrong shape, singular, or not dual feasible).
    pub fn solve_warm(
        &self,
        snap: &BasisSnapshot,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> (LpResult, Option<BasisSnapshot>) {
        if let Some(res) = self.crossed_bounds(bounds_override, config) {
            return (res, None);
        }
        if snap.basis.len() == self.n_rows() && snap.status.len() == self.n_cols() {
            if let Some(mut w) = Worker::start(self, config, bounds_override, Some(snap)) {
                match w.dual() {
                    DualOutcome::Done(status) => {
                        let out = (status == LpStatus::Optimal).then(|| w.snapshot());
                        return (w.result(status), out);
                    }
                    DualOutcome::Fallback => {}
                }
            }
        }
        self.solve_cold(bounds_override, config)
    }

    /// Early exit when any *effective* structural bound pair is crossed —
    /// the override where provided, the model's own bounds otherwise (phase 1
    /// only repairs basic variables, so a crossed non-basic column would
    /// silently come back "optimal" without this guard).
    fn crossed_bounds(
        &self,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> Option<LpResult> {
        if let Some(over) = bounds_override {
            debug_assert_eq!(over.len(), self.n_struct);
        }
        for j in 0..self.n_struct {
            let (l, u) = match bounds_override {
                Some(over) => over[j],
                None => (self.lb[j], self.ub[j]),
            };
            if clamp_lb(l) > u + config.tol {
                return Some(self.failed(LpStatus::Infeasible));
            }
        }
        None
    }

    fn failed(&self, status: LpStatus) -> LpResult {
        LpResult { status, objective: f64::NAN, values: vec![0.0; self.n_struct], iterations: 0 }
    }
}

/// Outcome of a dual-simplex run.
enum DualOutcome {
    /// The run terminated with a trustworthy status.
    Done(LpStatus),
    /// The snapshot was unusable; the caller should solve cold.
    Fallback,
}

/// Working state of one revised-simplex solve.
struct Worker<'a> {
    sf: &'a StandardForm,
    cfg: &'a LpConfig,
    lb: Vec<f64>,
    ub: Vec<f64>,
    status: Vec<VStat>,
    in_basis: Vec<bool>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    fact: Factorization,
    iterations: usize,
}

impl<'a> Worker<'a> {
    /// Builds the working bounds and initial basis, and factorizes it.
    fn start(
        sf: &'a StandardForm,
        cfg: &'a LpConfig,
        bounds_override: Option<&[(f64, f64)]>,
        snap: Option<&BasisSnapshot>,
    ) -> Option<Worker<'a>> {
        let m = sf.n_rows();
        let n = sf.n_cols();
        let mut lb = sf.lb.clone();
        let mut ub = sf.ub.clone();
        if let Some(over) = bounds_override {
            for (j, &(l, u)) in over.iter().enumerate() {
                lb[j] = clamp_lb(l);
                ub[j] = u;
            }
        }
        let (basis, status) = match snap {
            Some(s) => (s.basis.clone(), s.status.clone()),
            None => {
                // Cold start: all-logical basis, structural columns at the
                // finite bound of smallest magnitude.
                let mut status = Vec::with_capacity(n);
                for j in 0..sf.n_struct {
                    let at_upper = ub[j].is_finite() && lb[j].abs() > ub[j].abs();
                    status.push(if at_upper { VStat::AtUpper } else { VStat::AtLower });
                }
                status.extend(std::iter::repeat_n(VStat::Basic, m));
                ((sf.n_struct..n).collect(), status)
            }
        };
        let mut in_basis = vec![false; n];
        for &b in &basis {
            in_basis[b] = true;
        }
        let fact = Factorization::factorize(&sf.matrix, &basis)?;
        let mut w = Worker {
            sf,
            cfg,
            lb,
            ub,
            status,
            in_basis,
            basis,
            xb: vec![0.0; m],
            fact,
            iterations: 0,
        };
        w.recompute_xb();
        Some(w)
    }

    fn max_iter(&self) -> usize {
        if self.cfg.max_iterations > 0 {
            self.cfg.max_iterations
        } else {
            20_000 + 60 * (self.sf.n_rows() + self.sf.n_cols())
        }
    }

    /// Resting value of a non-basic column.
    #[inline]
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VStat::AtUpper => self.ub[j],
            _ => self.lb[j],
        }
    }

    /// Recomputes basic values from scratch: `x_B = B⁻¹ (rhs − N x_N)`.
    fn recompute_xb(&mut self) {
        let m = self.sf.n_rows();
        let mut r = self.sf.rhs.clone();
        for j in 0..self.sf.n_cols() {
            if self.in_basis[j] {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                self.sf.matrix.col_axpy(j, -v, &mut r);
            }
        }
        self.fact.ftran(&mut r);
        self.xb[..m].copy_from_slice(&r);
    }

    /// Refactorizes the current basis and refreshes basic values.
    fn refactorize(&mut self) -> bool {
        match Factorization::factorize(&self.sf.matrix, &self.basis) {
            Some(f) => {
                self.fact = f;
                self.recompute_xb();
                true
            }
            None => false,
        }
    }

    fn snapshot(&self) -> BasisSnapshot {
        BasisSnapshot { basis: self.basis.clone(), status: self.status.clone() }
    }

    /// Two-phase primal simplex (composite phase 1, then the real objective).
    fn primal(&mut self) -> LpStatus {
        let m = self.sf.n_rows();
        let n = self.sf.n_cols();
        let tol = self.cfg.tol;
        let max_iter = self.max_iter();
        let mut degenerate_run = 0usize;
        let mut cb = vec![0.0f64; m];
        let mut y = vec![0.0f64; m];
        let mut alpha = vec![0.0f64; m];
        // Devex reference weights: one per column, reset to the unit
        // framework whenever the phase flips (the phase-1 objective prices a
        // different gradient, so carried-over weights would mislead it).
        let mut devex = vec![1.0f64; n];
        let mut rho = vec![0.0f64; m];
        let mut prev_phase1: Option<bool> = None;

        loop {
            if self.iterations >= max_iter || self.cfg.interrupted() {
                return LpStatus::IterationLimit;
            }
            if self.fact.n_etas() >= self.cfg.refactor_interval && !self.refactorize() {
                return LpStatus::IterationLimit;
            }

            // Phase: 1 while any basic value violates its bounds.
            let mut phase1 = false;
            for i in 0..m {
                let b = self.basis[i];
                if self.xb[i] < self.lb[b] - tol || self.xb[i] > self.ub[b] + tol {
                    phase1 = true;
                    break;
                }
            }

            // Pricing duals: composite phase-1 costs are the (sub)gradient of
            // the sum of infeasibilities and are recomputed every iteration,
            // which is sound because pricing restarts from `c_B` each time.
            for ((c, &b), &x) in cb.iter_mut().zip(&self.basis).zip(&self.xb) {
                *c = if phase1 {
                    if x < self.lb[b] - tol {
                        -1.0
                    } else if x > self.ub[b] + tol {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    self.sf.cost(b)
                };
            }
            y.copy_from_slice(&cb);
            self.fact.btran(&mut y);

            if prev_phase1 != Some(phase1) {
                devex.iter_mut().for_each(|w| *w = 1.0);
                prev_phase1 = Some(phase1);
            }

            // Entering column: Devex pricing (d_j² against the reference
            // weight), or Bland after a degenerate streak.
            let use_bland = degenerate_run > 2 * (m + 10);
            let mut enter: Option<(usize, f64, i8)> = None;
            for (j, &weight) in devex.iter().enumerate().take(n) {
                if self.in_basis[j] || (self.ub[j] - self.lb[j]).abs() < 1e-15 {
                    continue;
                }
                let cj = if phase1 { 0.0 } else { self.sf.cost(j) };
                let dj = cj - self.sf.matrix.col_dot(j, &y);
                let dir: i8 = if self.status[j] != VStat::AtUpper && dj < -tol {
                    1
                } else if self.status[j] == VStat::AtUpper && dj > tol {
                    -1
                } else {
                    continue;
                };
                let score = dj * dj / weight;
                match (&enter, use_bland) {
                    (_, true) => {
                        enter = Some((j, score, dir));
                        break;
                    }
                    (None, false) => enter = Some((j, score, dir)),
                    (Some((_, best, _)), false) if score > *best => enter = Some((j, score, dir)),
                    _ => {}
                }
            }
            let Some((e, _, dir)) = enter else {
                // No improving column: phase-1 optimal with residual
                // infeasibility proves the LP infeasible; phase-2 optimal is
                // the answer.
                return if phase1 { LpStatus::Infeasible } else { LpStatus::Optimal };
            };

            // Transformed entering column.
            alpha.iter_mut().for_each(|v| *v = 0.0);
            self.sf.matrix.col_axpy(e, 1.0, &mut alpha);
            self.fact.ftran(&mut alpha);

            // Ratio test. In phase 1 an infeasible basic variable only blocks
            // when it reaches the bound it violates (it may move *away* from
            // feasibility freely — the cost row already accounts for it).
            let dirf = f64::from(dir);
            let range = self.ub[e] - self.lb[e];
            let mut t_max = range;
            let mut leave: Option<(usize, bool, f64)> = None;
            for (i, &a) in alpha.iter().enumerate() {
                if a.abs() < self.cfg.pivot_tol {
                    continue;
                }
                let b = self.basis[i];
                let delta = dirf * a; // xb[i] moves by −delta·t
                let below = self.xb[i] < self.lb[b] - tol;
                let above = self.xb[i] > self.ub[b] + tol;
                let (target, leaves_upper) = if delta > 0.0 {
                    // Basic value decreasing.
                    if below {
                        continue;
                    }
                    if above {
                        (self.ub[b], true)
                    } else {
                        (self.lb[b], false)
                    }
                } else {
                    // Basic value increasing.
                    if above {
                        continue;
                    }
                    if below {
                        (self.lb[b], false)
                    } else {
                        if !self.ub[b].is_finite() {
                            continue;
                        }
                        (self.ub[b], true)
                    }
                };
                let limit = ((self.xb[i] - target) / delta).max(0.0);
                let replace = match &leave {
                    None => limit < t_max - 1e-12,
                    Some((br, _, ba)) => {
                        limit < t_max - 1e-12
                            || (limit <= t_max + 1e-12
                                && if use_bland {
                                    self.basis[i] < self.basis[*br]
                                } else {
                                    a.abs() > *ba
                                })
                    }
                };
                if replace {
                    t_max = limit.min(t_max);
                    leave = Some((i, leaves_upper, a.abs()));
                }
            }

            if !t_max.is_finite() {
                // Entirely unblocked with an infinite range: unbounded (only
                // meaningful in phase 2 — phase 1 is bounded below by 0, so a
                // phase-1 hit means numerical trouble).
                return if phase1 { LpStatus::IterationLimit } else { LpStatus::Unbounded };
            }

            self.iterations += 1;
            if t_max <= 1e-11 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip.
                    for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                        if a != 0.0 {
                            *x -= dirf * t_max * a;
                        }
                    }
                    self.status[e] = if self.status[e] == VStat::AtUpper {
                        VStat::AtLower
                    } else {
                        VStat::AtUpper
                    };
                }
                Some((r, leaves_upper, _)) => {
                    for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                        if a != 0.0 {
                            *x -= dirf * t_max * a;
                        }
                    }
                    // Devex update from the transformed pivot row: every
                    // non-basic column inherits the steepness the pivot
                    // exposes, the leaving column gets the entering weight
                    // projected through the pivot element. Skipped under
                    // Bland's rule, where the scores are ignored anyway.
                    let aq = alpha[r];
                    if !use_bland && aq.abs() >= self.cfg.pivot_tol {
                        let wq = devex[e].max(1.0);
                        let inv = 1.0 / (aq * aq);
                        rho.iter_mut().for_each(|v| *v = 0.0);
                        rho[r] = 1.0;
                        self.fact.btran(&mut rho);
                        let mut w_max = 1.0f64;
                        for (j, w) in devex.iter_mut().enumerate() {
                            if self.in_basis[j] || j == e || (self.ub[j] - self.lb[j]).abs() < 1e-15
                            {
                                continue;
                            }
                            let arj = self.sf.matrix.col_dot(j, &rho);
                            if arj != 0.0 {
                                let cand = arj * arj * inv * wq;
                                if cand > *w {
                                    *w = cand;
                                }
                            }
                            w_max = w_max.max(*w);
                        }
                        devex[self.basis[r]] = (wq * inv).max(1.0);
                        if w_max > 1e12 {
                            // The reference framework drifted too far:
                            // restart it rather than price on noise.
                            devex.iter_mut().for_each(|w| *w = 1.0);
                        }
                    }
                    let entering_value = self.nonbasic_value(e) + dirf * t_max;
                    if !self.pivot(r, e, entering_value, leaves_upper, &alpha) {
                        return LpStatus::IterationLimit;
                    }
                }
            }
        }
    }

    /// Dual simplex: repairs primal feasibility from a dual-feasible basis.
    fn dual(&mut self) -> DualOutcome {
        let m = self.sf.n_rows();
        let n = self.sf.n_cols();
        let tol = self.cfg.tol;
        let max_iter = self.max_iter();
        let mut cb = vec![0.0f64; m];
        let mut y = vec![0.0f64; m];
        let mut rho = vec![0.0f64; m];
        let mut alpha = vec![0.0f64; m];

        // Up-front dual-feasibility check: a snapshot from an aborted parent
        // solve is not worth iterating on.
        for (c, &b) in cb.iter_mut().zip(&self.basis) {
            *c = self.sf.cost(b);
        }
        y.copy_from_slice(&cb);
        self.fact.btran(&mut y);
        for j in 0..n {
            if self.in_basis[j] || (self.ub[j] - self.lb[j]).abs() < 1e-15 {
                continue;
            }
            let dj = self.sf.cost(j) - self.sf.matrix.col_dot(j, &y);
            let bad = match self.status[j] {
                VStat::AtUpper => dj > 1e-5,
                _ => dj < -1e-5,
            };
            if bad {
                return DualOutcome::Fallback;
            }
        }

        // Budget: a healthy warm re-solve takes a handful of pivots. These
        // LPs are massively dual degenerate (most columns have zero cost),
        // and a degenerate dual can ping-pong for thousands of iterations —
        // past the budget a cold primal solve is strictly cheaper.
        let dual_budget = (m / 2 + 200).min(max_iter);
        let mut degenerate_run = 0usize;
        loop {
            if self.iterations >= dual_budget || self.cfg.interrupted() {
                // An interrupt falls back to the cold primal, which then
                // notices the same interrupt immediately and unwinds.
                return DualOutcome::Fallback;
            }
            if self.fact.n_etas() >= self.cfg.refactor_interval && !self.refactorize() {
                return DualOutcome::Fallback;
            }

            // Leaving row: most violated basic variable (smallest index after
            // a degenerate streak, Bland-style).
            let use_bland = degenerate_run > 2 * (m + 10);
            let mut leave: Option<(usize, bool, f64)> = None;
            for i in 0..m {
                let b = self.basis[i];
                let (viol, above) = if self.xb[i] > self.ub[b] + tol {
                    (self.xb[i] - self.ub[b], true)
                } else if self.xb[i] < self.lb[b] - tol {
                    (self.lb[b] - self.xb[i], false)
                } else {
                    continue;
                };
                if leave.as_ref().is_none_or(|&(_, _, best)| viol > best) {
                    leave = Some((i, above, viol));
                }
                if use_bland && leave.is_some() {
                    break;
                }
            }
            let Some((r, above, viol)) = leave else {
                return DualOutcome::Done(LpStatus::Optimal);
            };

            // Duals and the transformed pivot row.
            for (c, &b) in cb.iter_mut().zip(&self.basis) {
                *c = self.sf.cost(b);
            }
            y.copy_from_slice(&cb);
            self.fact.btran(&mut y);
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.fact.btran(&mut rho);

            // Bound-flipping dual ratio test (BFRT). Candidates are the
            // non-basic columns whose move towards their *other* bound
            // repairs the violated row; each has a breakpoint ratio
            // |d_j/α_rj| (where its reduced cost crosses zero as the dual
            // step grows) and an absorption capacity `range_j · |α_rj|`.
            // Walking candidates in breakpoint order, columns too narrow to
            // absorb the remaining violation *bound-flip* (binaries against
            // big-M rows constantly are) and the first wide-enough column
            // enters. Without the flips the entering variable overshoots its
            // own bounds and the violation just migrates, which degrades the
            // warm re-solve into thousands of pivots.
            let mut cands: Vec<(f64, f64, usize)> = Vec::new(); // (ratio, |α|, col)
            for j in 0..n {
                if self.in_basis[j] || (self.ub[j] - self.lb[j]).abs() < 1e-15 {
                    continue;
                }
                let a = self.sf.matrix.col_dot(j, &rho);
                if a.abs() < self.cfg.pivot_tol {
                    continue;
                }
                let at_upper = self.status[j] == VStat::AtUpper;
                // xb[r] must decrease when above its upper bound, increase
                // when below its lower bound.
                let eligible = if above {
                    (!at_upper && a > 0.0) || (at_upper && a < 0.0)
                } else {
                    (!at_upper && a < 0.0) || (at_upper && a > 0.0)
                };
                if !eligible {
                    continue;
                }
                let dj = self.sf.cost(j) - self.sf.matrix.col_dot(j, &y);
                cands.push((dj.abs() / a.abs(), a.abs(), j));
            }
            cands.sort_by(|x, y| x.0.total_cmp(&y.0).then(y.1.total_cmp(&x.1)).then(x.2.cmp(&y.2)));
            let mut remaining = viol;
            let mut enter: Option<usize> = None;
            let mut flipped = false;
            for &(_, amag, j) in &cands {
                let cap = (self.ub[j] - self.lb[j]) * amag;
                if !cap.is_finite() || cap + 1e-9 >= remaining {
                    enter = Some(j);
                    break;
                }
                self.status[j] =
                    if self.status[j] == VStat::AtUpper { VStat::AtLower } else { VStat::AtUpper };
                flipped = true;
                remaining -= cap;
            }
            let Some(e) = enter else {
                // Even with every eligible column at its most helpful bound
                // the row stays violated: the LP is infeasible.
                return DualOutcome::Done(LpStatus::Infeasible);
            };
            if flipped {
                self.recompute_xb();
            }

            alpha.iter_mut().for_each(|v| *v = 0.0);
            self.sf.matrix.col_axpy(e, 1.0, &mut alpha);
            self.fact.ftran(&mut alpha);
            if alpha[r].abs() < self.cfg.pivot_tol {
                // FTRAN disagrees with the BTRAN row: refactorize and retry.
                // The retry burns an iteration so that a deterministic
                // disagreement (fresh factors reproducing the same pivot)
                // drains the budget and falls back instead of spinning.
                self.iterations += 1;
                if !self.refactorize() {
                    return DualOutcome::Fallback;
                }
                continue;
            }

            let b_leave = self.basis[r];
            let target = if above { self.ub[b_leave] } else { self.lb[b_leave] };
            let t = (self.xb[r] - target) / alpha[r];
            if t.abs() <= 1e-11 && !flipped {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }
            // Position r lands exactly on `target` here and is then
            // overwritten with the entering value inside `pivot`.
            for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                if a != 0.0 {
                    *x -= t * a;
                }
            }
            let entering_value = self.nonbasic_value(e) + t;
            self.iterations += 1;
            if !self.pivot(r, e, entering_value, above, &alpha) {
                return DualOutcome::Fallback;
            }
        }
    }

    /// Executes a basis change: `e` enters in row `r`, the leaving column
    /// rests at the bound it reached. Returns `false` on numerical failure.
    fn pivot(
        &mut self,
        r: usize,
        e: usize,
        entering_value: f64,
        leaves_upper: bool,
        alpha: &[f64],
    ) -> bool {
        let leaving = self.basis[r];
        self.status[leaving] = if leaves_upper { VStat::AtUpper } else { VStat::AtLower };
        self.in_basis[leaving] = false;
        self.basis[r] = e;
        self.in_basis[e] = true;
        self.status[e] = VStat::Basic;
        self.xb[r] = entering_value;
        if !self.fact.update(r, alpha, self.cfg.pivot_tol) {
            return self.refactorize();
        }
        true
    }

    /// Assembles an [`LpResult`] from the final state.
    fn result(&self, status: LpStatus) -> LpResult {
        let n_struct = self.sf.n_struct;
        let mut values = vec![0.0f64; n_struct];
        for (j, value) in values.iter_mut().enumerate() {
            *value = self.nonbasic_value(j);
        }
        for (i, &b) in self.basis.iter().enumerate() {
            if b < n_struct {
                values[b] = self.xb[i];
            }
        }
        let objective = if status == LpStatus::Optimal || status == LpStatus::IterationLimit {
            let raw: f64 = self.sf.obj.iter().enumerate().map(|(j, &c)| c * values[j]).sum();
            self.sf.obj_constant + if self.sf.maximize { -raw } else { raw }
        } else {
            f64::NAN
        };
        LpResult { status, objective, values, iterations: self.iterations }
    }
}

/// Solves the LP relaxation of a model (integrality requirements are ignored,
/// variable kinds only contribute their bounds).
pub fn solve_lp(model: &Model, config: &LpConfig) -> LpResult {
    StandardForm::from_model(model).solve(config)
}

/// Returns `true` if every integer/binary variable of the model takes an
/// integral value (within `tol`) in the assignment.
pub fn is_integral(model: &Model, values: &[f64], tol: f64) -> bool {
    model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind.is_integral())
        .all(|(j, _)| (values[j] - values[j].round()).abs() <= tol)
}

/// Convenience: `true` when the variable kind at index `j` is integral.
pub fn is_integer_var(model: &Model, j: usize) -> bool {
    matches!(model.vars()[j].kind, crate::model::VarKind::Integer | crate::model::VarKind::Binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> obj 36 at (2,6).
        let mut m = Model::new("lp1", Sense::Maximize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("c1", LinExpr::from(x), ConOp::Le, 4.0);
        m.add_con("c2", LinExpr::from(y) * 2.0, ConOp::Le, 12.0);
        m.add_con("c3", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 2.0, ConOp::Le, 18.0);
        m.set_objective(LinExpr::from(x) * 3.0 + LinExpr::from(y) * 5.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 36.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn simple_minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1 -> x=9, y=1, obj 21.
        let mut m = Model::new("lp2", Sense::Minimize);
        let x = m.cont_var("x", 2.0, f64::INFINITY);
        let y = m.cont_var("y", 1.0, f64::INFINITY);
        m.add_con("cover", LinExpr::from(x) + y, ConOp::Ge, 10.0);
        m.set_objective(LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 21.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 8, x - y = 2 -> x=4, y=2, obj 6.
        let mut m = Model::new("lp3", Sense::Minimize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("e1", LinExpr::from(x) + LinExpr::from(y) * 2.0, ConOp::Eq, 8.0);
        m.add_con("e2", LinExpr::from(x) - y, ConOp::Eq, 2.0);
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[x.index()] - 4.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((r.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem_detected() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 1.0);
        m.add_con("hi", LinExpr::from(x), ConOp::Ge, 2.0);
        m.set_objective(LinExpr::from(x));
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut m = Model::new("unb", Sense::Maximize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("c", LinExpr::from(x) - y, ConOp::Le, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn crossed_bounds_are_infeasible() {
        let mut m = Model::new("xb", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        m.set_objective(LinExpr::from(x));
        let sf = StandardForm::from_model(&m);
        let r = sf.solve_with_bounds(Some(&[(3.0, 2.0)]), &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn crossed_native_bounds_are_infeasible_without_override() {
        // The model's own bounds can be crossed via set_bounds; the solver
        // must report infeasibility, matching the dense oracle, rather than
        // parking the column outside its bounds and claiming optimality.
        let mut m = Model::new("xbn", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        m.set_bounds(x, 3.0, 2.0);
        m.set_objective(LinExpr::from(x));
        let r = StandardForm::from_model(&m).solve(&cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
        let d = crate::dense::DenseForm::from_model(&m).solve(&cfg());
        assert_eq!(d.status, LpStatus::Infeasible);
    }

    #[test]
    fn bound_overrides_are_respected() {
        // min x with default bound [0, 5] but overridden to [2, 5].
        let mut m = Model::new("bo", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        let y = m.cont_var("y", 0.0, 5.0);
        m.add_con("link", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 10.0);
        let sf = StandardForm::from_model(&m);
        let base = sf.solve(&cfg());
        assert!((base.objective - 3.0).abs() < 1e-6, "x=3, y=0");
        let tightened = sf.solve_with_bounds(Some(&[(0.0, 1.0), (0.0, 5.0)]), &cfg());
        assert_eq!(tightened.status, LpStatus::Optimal);
        // x can only reach 1, y must cover the remaining 2.
        assert!((tightened.objective - 21.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_handled() {
        // x - y >= -2 with minimization pushing towards the constraint.
        let mut m = Model::new("neg", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) - y, ConOp::Ge, -2.0);
        m.set_objective(LinExpr::from(x) * 2.0 - LinExpr::from(y));
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        // Optimum: x = 0, y = 2 -> objective -2.
        assert!((r.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut m = Model::new("degen", Sense::Maximize);
        let x = m.cont_var("x", 0.0, 1.0);
        let y = m.cont_var("y", 0.0, 1.0);
        for i in 0..30 {
            m.add_con(format!("r{i}"), LinExpr::from(x) + y, ConOp::Le, 1.0);
        }
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut m = Model::new("const", Sense::Minimize);
        let x = m.cont_var("x", 1.0, 4.0);
        m.set_objective(LinExpr::from(x) + 100.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 101.0).abs() < 1e-6);
    }

    #[test]
    fn warm_dual_resolve_matches_cold_solve() {
        // min x + 2y s.t. x + y >= 4, x <= 3, y <= 5.
        let mut m = Model::new("warm", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 3.0);
        let y = m.cont_var("y", 0.0, 5.0);
        m.add_con("cover", LinExpr::from(x) + y, ConOp::Ge, 4.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 2.0);
        let sf = StandardForm::from_model(&m);
        let (root, snap) = sf.solve_cold(None, &cfg());
        assert_eq!(root.status, LpStatus::Optimal);
        assert!((root.objective - 5.0).abs() < 1e-6, "x=3, y=1");
        let snap = snap.unwrap();
        // Tighten x <= 1: optimum moves to x=1, y=3 -> 7.
        let (warm, warm_snap) = sf.solve_warm(&snap, Some(&[(0.0, 1.0), (0.0, 5.0)]), &cfg());
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - 7.0).abs() < 1e-6, "objective {}", warm.objective);
        assert!(warm_snap.is_some());
        let cold = sf.solve_with_bounds(Some(&[(0.0, 1.0), (0.0, 5.0)]), &cfg());
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        // And an infeasible tightening is detected dually.
        let (inf, _) = sf.solve_warm(&snap, Some(&[(0.0, 1.0), (0.0, 1.0)]), &cfg());
        assert_eq!(inf.status, LpStatus::Infeasible);
    }

    #[test]
    fn appended_cut_rows_are_honoured() {
        // max x + y s.t. x + y <= 10 with a cut x + y <= 4 appended.
        let mut m = Model::new("cuts", Sense::Maximize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("cap", LinExpr::from(x) + y, ConOp::Le, 10.0);
        m.set_objective(LinExpr::from(x) + y);
        let mut sf = StandardForm::from_model(&m);
        let (root, snap) = sf.solve_cold(None, &cfg());
        assert!((root.objective - 10.0).abs() < 1e-6);
        sf.add_rows(&[(vec![(x.index(), 1.0), (y.index(), 1.0)], ConOp::Le, 4.0)]);
        let ext = sf.extend_snapshot(&snap.unwrap()).unwrap();
        let (cut, _) = sf.solve_warm(&ext, None, &cfg());
        assert_eq!(cut.status, LpStatus::Optimal);
        assert!((cut.objective - 4.0).abs() < 1e-6, "objective {}", cut.objective);
        // A cold solve of the extended form agrees.
        let cold = sf.solve(&cfg());
        assert!((cold.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2-D index math reads clearest as written
    fn bigger_random_like_lp_is_consistent() {
        // A transportation-style LP with a known optimum of 150.
        let mut m = Model::new("transport", Sense::Minimize);
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let supply = [20.0, 30.0];
        let demand = [10.0, 25.0, 15.0];
        let mut vars = [[None; 3]; 2];
        for s in 0..2 {
            for d in 0..3 {
                vars[s][d] = Some(m.cont_var(format!("x{s}{d}"), 0.0, f64::INFINITY));
            }
        }
        for s in 0..2 {
            let e = LinExpr::weighted_sum((0..3).map(|d| (vars[s][d].unwrap(), 1.0)));
            m.add_con(format!("supply{s}"), e, ConOp::Le, supply[s]);
        }
        for d in 0..3 {
            let e = LinExpr::weighted_sum((0..2).map(|s| (vars[s][d].unwrap(), 1.0)));
            m.add_con(format!("demand{d}"), e, ConOp::Ge, demand[d]);
        }
        let obj = LinExpr::weighted_sum(
            (0..2).flat_map(|s| (0..3).map(move |d| (vars[s][d].unwrap(), costs[s][d]))),
        );
        m.set_objective(obj.clone());
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(m.is_feasible(&r.values, 1e-6));
        assert!((r.objective - obj.eval(&r.values)).abs() < 1e-6);
        assert!((r.objective - 150.0).abs() < 1e-6, "objective was {}", r.objective);
    }
}
