//! Bounded-variable two-phase primal simplex.
//!
//! The LP relaxations solved during branch and bound are small to mid-size
//! dense problems, so the implementation favours robustness and clarity over
//! sparse-algebra sophistication:
//!
//! * every constraint is converted to an equality by adding a slack variable;
//! * variable bounds are handled natively (non-basic variables sit at their
//!   lower or upper bound and may *bound-flip* without a basis change);
//! * phase 1 minimises the sum of artificial variables starting from the
//!   all-artificial basis; phase 2 then minimises the real objective with the
//!   artificials fixed to zero;
//! * Dantzig pricing with an automatic switch to Bland's rule after a run of
//!   degenerate pivots guarantees termination.
//!
//! The solver is exact in the LP sense up to the configured tolerances and is
//! fully deterministic.

use crate::model::{ConOp, Model, Sense, VarKind};

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was hit before optimality was proven.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value in the *model's* sense (meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the structural (model) variables.
    pub values: Vec<f64>,
    /// Number of simplex iterations performed (both phases).
    pub iterations: usize,
}

/// Tunable parameters of the simplex.
#[derive(Debug, Clone)]
pub struct LpConfig {
    /// Feasibility / reduced-cost tolerance.
    pub tol: f64,
    /// Minimum magnitude accepted for a pivot element.
    pub pivot_tol: f64,
    /// Hard cap on simplex iterations (both phases combined). `0` means
    /// "derive from problem size".
    pub max_iterations: usize,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig { tol: 1e-7, pivot_tol: 1e-9, max_iterations: 0 }
    }
}

/// Pre-processed standard form of a model: all constraints as equalities with
/// slack variables, ready to be instantiated into a dense tableau.
///
/// The standard form depends only on the constraint matrix, so branch and
/// bound builds it once and re-solves with different variable bounds.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of structural (model) variables.
    n_struct: usize,
    /// Number of slack variables (one per inequality constraint).
    n_slack: usize,
    /// Sparse rows over structural+slack columns.
    rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides.
    rhs: Vec<f64>,
    /// Default bounds of structural + slack variables.
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Minimisation objective over structural variables (sign-adjusted).
    obj: Vec<f64>,
    /// `true` if the model maximises (objective value is negated back).
    maximize: bool,
    /// Constant term of the objective.
    obj_constant: f64,
}

impl StandardForm {
    /// Builds the standard form of a model.
    pub fn from_model(model: &Model) -> StandardForm {
        let n_struct = model.n_vars();
        let maximize = model.sense == Sense::Maximize;

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(model.n_cons());
        let mut rhs: Vec<f64> = Vec::with_capacity(model.n_cons());
        let mut slack_bounds: Vec<(f64, f64)> = Vec::new();

        for con in model.constraints() {
            let mut row: Vec<(usize, f64)> = con.expr.iter().map(|(v, c)| (v.index(), c)).collect();
            match con.op {
                ConOp::Le => {
                    // expr + s = rhs, s >= 0
                    let s_col = n_struct + slack_bounds.len();
                    slack_bounds.push((0.0, f64::INFINITY));
                    row.push((s_col, 1.0));
                }
                ConOp::Ge => {
                    // expr - s = rhs, s >= 0
                    let s_col = n_struct + slack_bounds.len();
                    slack_bounds.push((0.0, f64::INFINITY));
                    row.push((s_col, -1.0));
                }
                ConOp::Eq => {}
            }
            rows.push(row);
            rhs.push(con.rhs);
        }

        let n_slack = slack_bounds.len();
        let mut lb = Vec::with_capacity(n_struct + n_slack);
        let mut ub = Vec::with_capacity(n_struct + n_slack);
        for v in model.vars() {
            // The simplex requires finite lower bounds; clamp pathological
            // values rather than failing (floorplanning models never need
            // free variables).
            lb.push(if v.lb.is_finite() { v.lb } else { -1e12 });
            ub.push(v.ub);
        }
        for (l, u) in slack_bounds {
            lb.push(l);
            ub.push(u);
        }

        let mut obj = vec![0.0; n_struct];
        for (v, c) in model.objective.iter() {
            obj[v.index()] = if maximize { -c } else { c };
        }
        let obj_constant = model.objective.constant_term();

        StandardForm { n_struct, n_slack, rows, rhs, lb, ub, obj, maximize, obj_constant }
    }

    /// Number of structural variables.
    pub fn n_struct(&self) -> usize {
        self.n_struct
    }

    /// Number of rows (constraints).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Solves the LP with the model's own bounds.
    pub fn solve(&self, config: &LpConfig) -> LpResult {
        self.solve_with_bounds(None, config)
    }

    /// Solves the LP overriding the bounds of the structural variables.
    ///
    /// `bounds_override` must contain one `(lb, ub)` pair per structural
    /// variable when provided.
    pub fn solve_with_bounds(
        &self,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> LpResult {
        let m = self.rows.len();
        let n = self.n_struct + self.n_slack;
        let total = n + m; // + artificials

        // Working bounds.
        let mut lb = self.lb.clone();
        let mut ub = self.ub.clone();
        if let Some(over) = bounds_override {
            debug_assert_eq!(over.len(), self.n_struct);
            for (j, &(l, u)) in over.iter().enumerate() {
                lb[j] = if l.is_finite() { l } else { -1e12 };
                ub[j] = u;
            }
        }
        // Quick infeasibility check on crossed bounds.
        for j in 0..n {
            if lb[j] > ub[j] + config.tol {
                return LpResult {
                    status: LpStatus::Infeasible,
                    objective: f64::NAN,
                    values: vec![0.0; self.n_struct],
                    iterations: 0,
                };
            }
        }
        // Artificials: fixed later, start in [0, inf).
        lb.extend(std::iter::repeat_n(0.0, m));
        ub.extend(std::iter::repeat_n(f64::INFINITY, m));

        // Dense tableau rows over all columns (structural + slack + artificial).
        let mut tab = vec![0.0f64; m * total];
        let mut b = self.rhs.clone();
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, c) in row {
                tab[i * total + j] = c;
            }
        }

        // Non-basic variables start at the finite bound of smallest magnitude.
        let mut at_upper = vec![false; total];
        let value_of_nonbasic = |j: usize, at_upper: &Vec<bool>, lb: &Vec<f64>, ub: &Vec<f64>| {
            if at_upper[j] {
                ub[j]
            } else {
                lb[j]
            }
        };
        for j in 0..n {
            if !ub[j].is_finite() {
                at_upper[j] = false;
            } else {
                at_upper[j] = lb[j].abs() > ub[j].abs();
            }
        }

        // Residuals r_i = b_i - sum_j a_ij * x_j(nonbasic).
        let mut xb = vec![0.0f64; m];
        for i in 0..m {
            let mut r = b[i];
            for j in 0..n {
                let a = tab[i * total + j];
                if a != 0.0 {
                    r -= a * value_of_nonbasic(j, &at_upper, &lb, &ub);
                }
            }
            xb[i] = r;
        }
        // Negate rows with negative residuals so artificials start >= 0.
        for i in 0..m {
            if xb[i] < 0.0 {
                for j in 0..n {
                    tab[i * total + j] = -tab[i * total + j];
                }
                b[i] = -b[i];
                xb[i] = -xb[i];
            }
            // Artificial column for row i.
            tab[i * total + n + i] = 1.0;
        }
        let mut basis: Vec<usize> = (n..n + m).collect();

        // Phase-1 and phase-2 reduced-cost rows.
        // Phase 1: cost 1 on artificials. With the all-artificial basis the
        // reduced cost of column j is -sum_i tab[i][j] (and 0 on artificials).
        let mut d1 = vec![0.0f64; total];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..m {
                s += tab[i * total + j];
            }
            d1[j] = -s;
        }
        // Phase 2: artificials have zero cost, so reduced costs start equal to
        // the raw objective coefficients.
        let mut d2 = vec![0.0f64; total];
        for (j, &c) in self.obj.iter().enumerate() {
            d2[j] = c;
        }

        let max_iter = if config.max_iterations > 0 {
            config.max_iterations
        } else {
            20_000 + 60 * (m + total)
        };

        let mut iterations = 0usize;
        let tol = config.tol;
        let mut degenerate_run = 0usize;

        // The main pivoting loop, shared by both phases.
        // phase = 1 uses d1, phase = 2 uses d2.
        let mut phase = 1;
        loop {
            if iterations >= max_iter {
                return self.finish(LpStatus::IterationLimit, &basis, &xb, &at_upper, &lb, &ub);
            }

            // Entering variable selection.
            let use_bland = degenerate_run > 2 * (m + 10);
            let d = if phase == 1 { &d1 } else { &d2 };
            let mut enter: Option<(usize, f64, i8)> = None; // (col, score, direction)
            for j in 0..total {
                if basis.contains(&j) {
                    continue;
                }
                // Fixed variables can never improve.
                if (ub[j] - lb[j]).abs() < 1e-15 {
                    continue;
                }
                let dj = d[j];
                let dir: i8 = if !at_upper[j] && dj < -tol {
                    1
                } else if at_upper[j] && dj > tol {
                    -1
                } else {
                    continue;
                };
                let score = dj.abs();
                match (&enter, use_bland) {
                    (_, true) => {
                        enter = Some((j, score, dir));
                        break;
                    }
                    (None, false) => enter = Some((j, score, dir)),
                    (Some((_, best, _)), false) if score > *best => enter = Some((j, score, dir)),
                    _ => {}
                }
            }

            let (j_enter, _, dir) = match enter {
                Some(e) => e,
                None => {
                    // Optimal for the current phase.
                    if phase == 1 {
                        let infeas: f64 = basis
                            .iter()
                            .enumerate()
                            .filter(|(_, &v)| v >= n)
                            .map(|(i, _)| xb[i])
                            .sum();
                        if infeas > 1e-6 {
                            return self.finish(
                                LpStatus::Infeasible,
                                &basis,
                                &xb,
                                &at_upper,
                                &lb,
                                &ub,
                            );
                        }
                        // Fix artificials at zero and move to phase 2.
                        for a in n..total {
                            lb[a] = 0.0;
                            ub[a] = 0.0;
                        }
                        phase = 2;
                        degenerate_run = 0;
                        continue;
                    } else {
                        let mut res =
                            self.finish(LpStatus::Optimal, &basis, &xb, &at_upper, &lb, &ub);
                        res.iterations = iterations;
                        return res;
                    }
                }
            };

            // Ratio test along the entering direction.
            let dirf = dir as f64;
            let range = ub[j_enter] - lb[j_enter]; // may be inf
            let mut t_max = range;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for i in 0..m {
                let a = tab[i * total + j_enter];
                if a.abs() < config.pivot_tol {
                    continue;
                }
                let delta = dirf * a;
                let (limit, goes_upper) = if delta > 0.0 {
                    // Basic variable decreases towards its lower bound.
                    ((xb[i] - lb[basis[i]]) / delta, false)
                } else {
                    // Basic variable increases towards its upper bound.
                    if !ub[basis[i]].is_finite() {
                        continue;
                    }
                    ((ub[basis[i]] - xb[i]) / (-delta), true)
                };
                let limit = limit.max(0.0);
                if limit < t_max - 1e-12 {
                    t_max = limit;
                    leave = Some((i, goes_upper));
                }
            }

            if !t_max.is_finite() {
                // Entering variable can increase forever: unbounded (only
                // meaningful in phase 2; phase 1 objective is bounded below).
                return self.finish(LpStatus::Unbounded, &basis, &xb, &at_upper, &lb, &ub);
            }

            iterations += 1;
            if t_max <= 1e-11 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip: the entering variable moves to its other bound.
                    for i in 0..m {
                        let a = tab[i * total + j_enter];
                        if a != 0.0 {
                            xb[i] -= dirf * t_max * a;
                        }
                    }
                    at_upper[j_enter] = !at_upper[j_enter];
                }
                Some((r, goes_upper)) => {
                    // Update basic values.
                    for i in 0..m {
                        let a = tab[i * total + j_enter];
                        if a != 0.0 {
                            xb[i] -= dirf * t_max * a;
                        }
                    }
                    let entering_value =
                        value_of_nonbasic(j_enter, &at_upper, &lb, &ub) + dirf * t_max;
                    let leaving = basis[r];
                    at_upper[leaving] = goes_upper;
                    basis[r] = j_enter;
                    xb[r] = entering_value;

                    // Pivot the tableau and both cost rows on (r, j_enter).
                    let pivot = tab[r * total + j_enter];
                    let inv = 1.0 / pivot;
                    for j in 0..total {
                        tab[r * total + j] *= inv;
                    }
                    for i in 0..m {
                        if i == r {
                            continue;
                        }
                        let factor = tab[i * total + j_enter];
                        if factor != 0.0 {
                            for j in 0..total {
                                tab[i * total + j] -= factor * tab[r * total + j];
                            }
                        }
                    }
                    let f1 = d1[j_enter];
                    if f1 != 0.0 {
                        for j in 0..total {
                            d1[j] -= f1 * tab[r * total + j];
                        }
                    }
                    let f2 = d2[j_enter];
                    if f2 != 0.0 {
                        for j in 0..total {
                            d2[j] -= f2 * tab[r * total + j];
                        }
                    }
                }
            }
        }
    }

    /// Assembles an [`LpResult`] from the final simplex state.
    fn finish(
        &self,
        status: LpStatus,
        basis: &[usize],
        xb: &[f64],
        at_upper: &[bool],
        lb: &[f64],
        ub: &[f64],
    ) -> LpResult {
        let mut values = vec![0.0f64; self.n_struct];
        for j in 0..self.n_struct {
            values[j] = if at_upper[j] { ub[j] } else { lb[j] };
        }
        for (i, &v) in basis.iter().enumerate() {
            if v < self.n_struct {
                values[v] = xb[i];
            }
        }
        let mut objective = self.obj_constant;
        if status == LpStatus::Optimal || status == LpStatus::IterationLimit {
            let raw: f64 = self.obj.iter().enumerate().map(|(j, &c)| c * values[j]).sum();
            objective += if self.maximize { -raw } else { raw };
        } else {
            objective = f64::NAN;
        }
        LpResult { status, objective, values, iterations: 0 }
    }
}

/// Solves the LP relaxation of a model (integrality requirements are ignored,
/// variable kinds only contribute their bounds).
pub fn solve_lp(model: &Model, config: &LpConfig) -> LpResult {
    StandardForm::from_model(model).solve(config)
}

/// Returns `true` if every integer/binary variable of the model takes an
/// integral value (within `tol`) in the assignment.
pub fn is_integral(model: &Model, values: &[f64], tol: f64) -> bool {
    model
        .vars()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind.is_integral())
        .all(|(j, _)| (values[j] - values[j].round()).abs() <= tol)
}

/// Convenience: `true` when the variable kind at index `j` is integral.
pub fn is_integer_var(model: &Model, j: usize) -> bool {
    matches!(model.vars()[j].kind, VarKind::Integer | VarKind::Binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> obj 36 at (2,6).
        let mut m = Model::new("lp1", Sense::Maximize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("c1", LinExpr::from(x), ConOp::Le, 4.0);
        m.add_con("c2", LinExpr::from(y) * 2.0, ConOp::Le, 12.0);
        m.add_con("c3", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 2.0, ConOp::Le, 18.0);
        m.set_objective(LinExpr::from(x) * 3.0 + LinExpr::from(y) * 5.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 36.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn simple_minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 1 -> x=9, y=1, obj 21.
        let mut m = Model::new("lp2", Sense::Minimize);
        let x = m.cont_var("x", 2.0, f64::INFINITY);
        let y = m.cont_var("y", 1.0, f64::INFINITY);
        m.add_con("cover", LinExpr::from(x) + y, ConOp::Ge, 10.0);
        m.set_objective(LinExpr::from(x) * 2.0 + LinExpr::from(y) * 3.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 21.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 8, x - y = 2 -> x=4, y=2, obj 6.
        let mut m = Model::new("lp3", Sense::Minimize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("e1", LinExpr::from(x) + LinExpr::from(y) * 2.0, ConOp::Eq, 8.0);
        m.add_con("e2", LinExpr::from(x) - y, ConOp::Eq, 2.0);
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[x.index()] - 4.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
        assert!((r.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem_detected() {
        let mut m = Model::new("inf", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 1.0);
        m.add_con("hi", LinExpr::from(x), ConOp::Ge, 2.0);
        m.set_objective(LinExpr::from(x));
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut m = Model::new("unb", Sense::Maximize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("c", LinExpr::from(x) - y, ConOp::Le, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn crossed_bounds_are_infeasible() {
        let mut m = Model::new("xb", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        m.set_objective(LinExpr::from(x));
        let sf = StandardForm::from_model(&m);
        let r = sf.solve_with_bounds(Some(&[(3.0, 2.0)]), &cfg());
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn bound_overrides_are_respected() {
        // min x with default bound [0, 5] but overridden to [2, 5].
        let mut m = Model::new("bo", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        let y = m.cont_var("y", 0.0, 5.0);
        m.add_con("link", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 10.0);
        let sf = StandardForm::from_model(&m);
        let base = sf.solve(&cfg());
        assert!((base.objective - 3.0).abs() < 1e-6, "x=3, y=0");
        let tightened = sf.solve_with_bounds(Some(&[(0.0, 1.0), (0.0, 5.0)]), &cfg());
        assert_eq!(tightened.status, LpStatus::Optimal);
        // x can only reach 1, y must cover the remaining 2.
        assert!((tightened.objective - 21.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_handled() {
        // x - y >= -2 with minimization pushing towards the constraint.
        let mut m = Model::new("neg", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) - y, ConOp::Ge, -2.0);
        m.set_objective(LinExpr::from(x) * 2.0 - LinExpr::from(y));
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        // Optimum: x = 0, y = 2 -> objective -2.
        assert!((r.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the optimum.
        let mut m = Model::new("degen", Sense::Maximize);
        let x = m.cont_var("x", 0.0, 1.0);
        let y = m.cont_var("y", 0.0, 1.0);
        for i in 0..30 {
            m.add_con(format!("r{i}"), LinExpr::from(x) + y, ConOp::Le, 1.0);
        }
        m.set_objective(LinExpr::from(x) + y);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut m = Model::new("const", Sense::Minimize);
        let x = m.cont_var("x", 1.0, 4.0);
        m.set_objective(LinExpr::from(x) + 100.0);
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 101.0).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2-D index math reads clearest as written
    fn bigger_random_like_lp_is_consistent() {
        // A transportation-style LP with a known optimum.
        // Supplies: 20, 30; demands: 10, 25, 15.
        // Costs: [[2,3,1],[5,4,8]] -> optimal cost = 10*2+15*1+... compute:
        // ship s1->d1:10, s1->d3:10 (cost 2*10+1*10=30), s2->d2:25, s2->d3:5
        // (4*25+8*5=140) -> wait capacity s1=20 used 20, s2=30 used 30.
        // total = 170. A cheaper plan: s1->d3:15, s1->d1:5 (15+10=25 cost),
        // s2->d1:5, s2->d2:25 (25+100=125) total=150... let the solver decide
        // and just verify feasibility + objective consistency.
        let mut m = Model::new("transport", Sense::Minimize);
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let supply = [20.0, 30.0];
        let demand = [10.0, 25.0, 15.0];
        let mut vars = [[None; 3]; 2];
        for s in 0..2 {
            for d in 0..3 {
                vars[s][d] = Some(m.cont_var(format!("x{s}{d}"), 0.0, f64::INFINITY));
            }
        }
        for s in 0..2 {
            let e = LinExpr::weighted_sum((0..3).map(|d| (vars[s][d].unwrap(), 1.0)));
            m.add_con(format!("supply{s}"), e, ConOp::Le, supply[s]);
        }
        for d in 0..3 {
            let e = LinExpr::weighted_sum((0..2).map(|s| (vars[s][d].unwrap(), 1.0)));
            m.add_con(format!("demand{d}"), e, ConOp::Ge, demand[d]);
        }
        let obj = LinExpr::weighted_sum(
            (0..2).flat_map(|s| (0..3).map(move |d| (vars[s][d].unwrap(), costs[s][d]))),
        );
        m.set_objective(obj.clone());
        let r = solve_lp(&m, &cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(
            m.is_feasible(&r.values, 1e-6) || {
                // The LP relaxation ignores integrality, but there are no integer
                // vars here, so feasibility must hold.
                false
            }
        );
        assert!((r.objective - obj.eval(&r.values)).abs() < 1e-6);
        // Known optimum for this data is 150.
        assert!((r.objective - 150.0).abs() < 1e-6, "objective was {}", r.objective);
    }
}
