//! # rfp-milp — a from-scratch Mixed-Integer Linear Programming solver
//!
//! The floorplanner of the paper is built on a MILP formulation solved by a
//! commercial branch-and-cut engine. This crate provides the substrate the
//! reproduction needs, implemented entirely in safe Rust with no external
//! solver bindings:
//!
//! * a [`model::Model`] builder with continuous, integer and binary variables,
//!   linear constraints, a linear objective ([`expr::LinExpr`]) and
//!   structural hints (mutual-exclusion groups) for the cut separator;
//! * a sparse **revised simplex** for the LP relaxations ([`simplex`]): CSC
//!   constraint storage ([`sparse`]), an LU basis factorization with eta
//!   updates ([`basis`]), a composite-phase-1 primal and a **dual simplex**
//!   entry point for warm re-solves after bound changes;
//! * a **branch-and-bound** MILP search ([`branch_bound`]) with best-bound
//!   node selection, warm-started node re-solves from the parent basis,
//!   **pseudo-cost branching** (most-fractional fallback while cold), root
//!   **cover/clique cutting planes** ([`cuts`]), LP-guided diving and a
//!   rounding heuristic;
//! * solution reporting and feasibility checking ([`solution`]), with shared
//!   numerical tolerances in [`tol`];
//! * an LP-format exporter for debugging and golden tests ([`io`]).
//!
//! The solver is deterministic: identical models produce identical search
//! trees and solutions, which the benchmark harness relies on.
//!
//! ## Scale
//!
//! The revised simplex re-solves a branch-and-bound child from its parent's
//! basis after a single bound change, so per-node cost is a handful of
//! pivots at O(nnz) each instead of a dense from-scratch tableau solve. The
//! retired dense implementation is kept in [`dense`] as a property-test
//! oracle and benchmark baseline. The full-die SDR2/SDR3 instances of the
//! paper are solved by the specialised combinatorial engine in
//! `rfp-floorplan`; DESIGN.md discusses this substitution.
//!
//! ## Example
//!
//! ```
//! use rfp_milp::prelude::*;
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x - y >= -2, x,y integer in [0,10]
//! let mut m = Model::new("demo", Sense::Maximize);
//! let x = m.int_var("x", 0.0, 10.0);
//! let y = m.int_var("y", 0.0, 10.0);
//! m.add_con("cap", LinExpr::from(x) + y, ConOp::Le, 4.0);
//! m.add_con("diff", LinExpr::from(x) - y, ConOp::Ge, -2.0);
//! m.set_objective(LinExpr::from(x) * 3.0 + LinExpr::from(y) * 2.0);
//! let sol = Solver::default().solve(&m);
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert!((sol.objective - 12.0).abs() < 1e-6); // x=4, y=0
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
// The deprecated `SolveReport` alias lives on for downstream callers, but no
// internal code path may use it.
#![deny(deprecated)]

pub mod basis;
pub mod branch_bound;
pub mod cancel;
pub mod cuts;
pub mod dense;
pub mod expr;
pub mod io;
pub mod model;
pub(crate) mod parallel;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod sparse;
pub mod tol;

/// Convenient glob import for users of the solver.
pub mod prelude {
    pub use crate::branch_bound::{BranchRule, ExternalIncumbents, Solver, SolverConfig};
    pub use crate::cancel::CancelToken;
    pub use crate::expr::LinExpr;
    pub use crate::model::{ConOp, Model, Sense, VarId, VarKind};
    pub use crate::solution::{Solution, SolveStatus};
}

pub use branch_bound::{BranchRule, ExternalIncumbents, Solver, SolverConfig};
pub use cancel::CancelToken;
pub use expr::LinExpr;
pub use model::{ConOp, Model, Sense, VarId, VarKind};
pub use solution::{Solution, SolveStatus};

/// The MILP-level solve report under an unambiguous name.
///
/// Historically both this crate (via its solution type) and `rfp-floorplan`
/// exposed a "solve report", which collided in downstream glob imports. The
/// floorplan-level report is now `rfp_floorplan::FloorplanReport` and the
/// engine API's `SolveOutcome`; this alias names the MILP-level one.
pub use solution::Solution as MilpSolution;

/// Deprecated alias kept so pre-unification call sites keep compiling.
#[deprecated(
    since = "0.1.0",
    note = "use `Solution` (or the `MilpSolution` alias); the unified floorplan-level \
            report is `rfp_floorplan::engine::SolveOutcome`"
)]
pub type SolveReport = Solution;
