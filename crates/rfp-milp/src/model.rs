//! The MILP model builder.

use crate::expr::LinExpr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a variable inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(u32);

impl VarId {
    /// Builds a `VarId` from a raw index. Intended for tests and internal use.
    pub fn from_index(i: usize) -> Self {
        VarId(i as u32)
    }

    /// Index of the variable inside the model's variable array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer variable.
    Integer,
    /// Binary variable (integer restricted to {0, 1}).
    Binary,
}

impl VarKind {
    /// Returns `true` for [`VarKind::Integer`] and [`VarKind::Binary`].
    pub fn is_integral(self) -> bool {
        matches!(self, VarKind::Integer | VarKind::Binary)
    }
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for ConOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConOp::Le => write!(f, "<="),
            ConOp::Ge => write!(f, ">="),
            ConOp::Eq => write!(f, "="),
        }
    }
}

/// Definition of a decision variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDef {
    /// Name used in exports and error messages.
    pub name: String,
    /// Variable kind.
    pub kind: VarKind,
    /// Lower bound (finite).
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
}

/// A linear constraint `expr (op) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Name used in exports and error messages.
    pub name: String,
    /// Left-hand-side expression (its constant term is folded into `rhs`).
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: ConOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed-integer linear program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Objective sense.
    pub sense: Sense,
    /// Objective expression.
    pub objective: LinExpr,
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    /// Structural hint: groups of binary variables of which at most one can
    /// be 1 in any integral solution. Not constraints — the branch-and-bound
    /// cut separator turns violated groups into clique cutting planes.
    mutex_groups: Vec<(String, Vec<VarId>)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>, sense: Sense) -> Self {
        Model {
            name: name.into(),
            sense,
            objective: LinExpr::zero(),
            vars: Vec::new(),
            constraints: Vec::new(),
            mutex_groups: Vec::new(),
        }
    }

    /// Adds a variable with explicit kind and bounds.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lb: f64, ub: f64) -> VarId {
        debug_assert!(lb <= ub, "variable lower bound must not exceed upper bound");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef { name: name.into(), kind, lb, ub });
        id
    }

    /// Adds a continuous variable in `[lb, ub]`.
    pub fn cont_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds an integer variable in `[lb, ub]`.
    pub fn int_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(name, VarKind::Integer, lb, ub)
    }

    /// Adds a binary variable.
    pub fn bin_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a constraint `expr (op) rhs`. The constant term of `expr` is
    /// moved to the right-hand side.
    pub fn add_con(&mut self, name: impl Into<String>, expr: LinExpr, op: ConOp, rhs: f64) {
        let constant = expr.constant_term();
        let mut e = expr;
        e.add_constant(-constant);
        self.constraints.push(Constraint { name: name.into(), expr: e, op, rhs: rhs - constant });
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, objective: LinExpr) {
        self.objective = objective;
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn n_cons(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer/binary variables.
    pub fn n_integer_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.kind.is_integral()).count()
    }

    /// Total number of non-zero coefficients over all constraints.
    pub fn n_nonzeros(&self) -> usize {
        self.constraints.iter().map(|c| c.expr.n_terms()).sum()
    }

    /// Variable definition by id.
    pub fn var(&self, id: VarId) -> &VarDef {
        &self.vars[id.index()]
    }

    /// All variable definitions, in id order.
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// All constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Mutable access to the constraints, for in-place strengthening by the
    /// presolver (coefficient tightening rewrites rows without changing the
    /// integer-feasible set).
    pub(crate) fn constraints_mut(&mut self) -> &mut [Constraint] {
        &mut self.constraints
    }

    /// Declares that at most one of the given binary variables can be 1 in
    /// any integral solution (a *clique* in the conflict graph).
    ///
    /// This is a structural hint, not a constraint: it does not change the
    /// feasible set reported by [`Model::violations`], but the
    /// branch-and-bound cut separator turns groups that the LP relaxation
    /// violates into clique cutting planes, tightening the relaxation. The
    /// caller is responsible for the hint's validity — a wrong hint can cut
    /// off integral solutions.
    pub fn add_mutex_group(&mut self, name: impl Into<String>, vars: Vec<VarId>) {
        debug_assert!(vars.iter().all(|v| self.vars[v.index()].kind == VarKind::Binary));
        if vars.len() >= 2 {
            self.mutex_groups.push((name.into(), vars));
        }
    }

    /// The registered mutual-exclusion hints.
    pub fn mutex_groups(&self) -> &[(String, Vec<VarId>)] {
        &self.mutex_groups
    }

    /// Tightens the bounds of a variable (used by branch and bound).
    pub fn set_bounds(&mut self, id: VarId, lb: f64, ub: f64) {
        let v = &mut self.vars[id.index()];
        v.lb = lb;
        v.ub = ub;
    }

    /// Checks a candidate assignment against every constraint, bound and
    /// integrality requirement. Returns the list of violation descriptions
    /// (empty when feasible).
    pub fn violations(&self, values: &[f64], tol: f64) -> Vec<String> {
        let mut out = Vec::new();
        if values.len() != self.vars.len() {
            out.push(format!(
                "assignment has {} values but the model has {} variables",
                values.len(),
                self.vars.len()
            ));
            return out;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                out.push(format!("variable {} = {x} outside bounds [{}, {}]", v.name, v.lb, v.ub));
            }
            if v.kind.is_integral() && (x - x.round()).abs() > tol {
                out.push(format!("variable {} = {x} is not integral", v.name));
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(values);
            let ok = match c.op {
                ConOp::Le => lhs <= c.rhs + tol,
                ConOp::Ge => lhs >= c.rhs - tol,
                ConOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                out.push(format!("constraint {} violated: {lhs} {} {}", c.name, c.op, c.rhs));
            }
        }
        out
    }

    /// Returns `true` if the assignment satisfies every constraint, bound and
    /// integrality requirement within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        self.violations(values, tol).is_empty()
    }

    /// [`Model::violations`] with the solver-wide default tolerance
    /// [`crate::tol::FEASIBILITY`].
    pub fn violations_default(&self, values: &[f64]) -> Vec<String> {
        self.violations(values, crate::tol::FEASIBILITY)
    }

    /// [`Model::is_feasible`] with the solver-wide default tolerance
    /// [`crate::tol::FEASIBILITY`].
    pub fn is_feasible_default(&self, values: &[f64]) -> bool {
        self.is_feasible(values, crate::tol::FEASIBILITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_helpers_set_kinds_and_bounds() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.cont_var("x", -1.0, 2.0);
        let y = m.int_var("y", 0.0, 5.0);
        let z = m.bin_var("z");
        assert_eq!(m.n_vars(), 3);
        assert_eq!(m.var(x).kind, VarKind::Continuous);
        assert_eq!(m.var(y).kind, VarKind::Integer);
        assert_eq!(m.var(z).kind, VarKind::Binary);
        assert_eq!(m.var(z).ub, 1.0);
        assert_eq!(m.n_integer_vars(), 2);
    }

    #[test]
    fn constant_terms_fold_into_rhs() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 10.0);
        m.add_con("c", LinExpr::from(x) + 3.0, ConOp::Le, 5.0);
        let c = &m.constraints()[0];
        assert_eq!(c.rhs, 2.0);
        assert_eq!(c.expr.constant_term(), 0.0);
    }

    #[test]
    fn violations_detects_bound_integrality_and_constraint_breaches() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.int_var("x", 0.0, 4.0);
        let y = m.cont_var("y", 0.0, 10.0);
        m.add_con("cap", LinExpr::from(x) + y, ConOp::Le, 5.0);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        let v = m.violations(&[2.5, 4.0], 1e-9);
        assert_eq!(v.len(), 2); // non-integral x and violated constraint
        assert!(m.violations(&[5.0, 0.0], 1e-9).iter().any(|s| s.contains("outside bounds")));
        assert_eq!(m.violations(&[1.0], 1e-9).len(), 1);
    }

    #[test]
    fn statistics_count_nonzeros() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 1.0);
        let y = m.cont_var("y", 0.0, 1.0);
        m.add_con("a", LinExpr::from(x) + y, ConOp::Le, 1.0);
        m.add_con("b", LinExpr::from(y) * 2.0, ConOp::Ge, 0.5);
        assert_eq!(m.n_cons(), 2);
        assert_eq!(m.n_nonzeros(), 3);
    }

    #[test]
    fn mutex_groups_are_hints_not_constraints() {
        let mut m = Model::new("t", Sense::Minimize);
        let a = m.bin_var("a");
        let b = m.bin_var("b");
        m.add_mutex_group("ab", vec![a, b]);
        // Singleton groups are dropped — a clique needs at least two members.
        m.add_mutex_group("solo", vec![a]);
        assert_eq!(m.mutex_groups().len(), 1);
        assert_eq!(m.mutex_groups()[0].1, vec![a, b]);
        // The hint does not change feasibility checking.
        assert!(m.is_feasible_default(&[1.0, 1.0]));
    }

    #[test]
    fn set_bounds_overwrites() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.int_var("x", 0.0, 9.0);
        m.set_bounds(x, 2.0, 3.0);
        assert_eq!(m.var(x).lb, 2.0);
        assert_eq!(m.var(x).ub, 3.0);
    }
}
