//! The retired dense-tableau simplex, kept as an oracle and baseline.
//!
//! This is the bounded-variable two-phase primal simplex that powered the
//! solver before the sparse revised engine ([`crate::simplex`]) replaced it.
//! It is retained for two jobs:
//!
//! * **test oracle** — the property suites solve random LPs with both
//!   engines and require matching objectives, which guards the much more
//!   intricate revised implementation;
//! * **benchmark baseline** — `rfp-bench`'s `solve_times` binary runs branch
//!   and bound against both engines to report the per-node LP re-solve
//!   speedup ([`crate::branch_bound::SolverConfig::use_dense_lp`]).
//!
//! Implementation notes (unchanged from its time as the production path):
//! every constraint gains a slack, phase 1 minimises the sum of artificial
//! variables from the all-artificial basis, phase 2 minimises the real
//! objective, and Dantzig pricing switches to Bland's rule after a run of
//! degenerate pivots.

use crate::model::{ConOp, Model, Sense};
use crate::simplex::{LpConfig, LpResult, LpStatus};

/// Pre-processed standard form of a model for the dense tableau: all
/// constraints as equalities with slack variables.
#[derive(Debug, Clone)]
pub struct DenseForm {
    /// Number of structural (model) variables.
    n_struct: usize,
    /// Number of slack variables (one per inequality constraint).
    n_slack: usize,
    /// Sparse rows over structural+slack columns.
    rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides.
    rhs: Vec<f64>,
    /// Default bounds of structural + slack variables.
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Minimisation objective over structural variables (sign-adjusted).
    obj: Vec<f64>,
    /// `true` if the model maximises (objective value is negated back).
    maximize: bool,
    /// Constant term of the objective.
    obj_constant: f64,
}

impl DenseForm {
    /// Builds the dense standard form of a model.
    pub fn from_model(model: &Model) -> DenseForm {
        let n_struct = model.n_vars();
        let maximize = model.sense == Sense::Maximize;

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(model.n_cons());
        let mut rhs: Vec<f64> = Vec::with_capacity(model.n_cons());
        let mut slack_bounds: Vec<(f64, f64)> = Vec::new();

        for con in model.constraints() {
            let mut row: Vec<(usize, f64)> = con.expr.iter().map(|(v, c)| (v.index(), c)).collect();
            match con.op {
                ConOp::Le => {
                    // expr + s = rhs, s >= 0
                    let s_col = n_struct + slack_bounds.len();
                    slack_bounds.push((0.0, f64::INFINITY));
                    row.push((s_col, 1.0));
                }
                ConOp::Ge => {
                    // expr - s = rhs, s >= 0
                    let s_col = n_struct + slack_bounds.len();
                    slack_bounds.push((0.0, f64::INFINITY));
                    row.push((s_col, -1.0));
                }
                ConOp::Eq => {}
            }
            rows.push(row);
            rhs.push(con.rhs);
        }

        let n_slack = slack_bounds.len();
        let mut lb = Vec::with_capacity(n_struct + n_slack);
        let mut ub = Vec::with_capacity(n_struct + n_slack);
        for v in model.vars() {
            // The simplex requires finite lower bounds; clamp pathological
            // values rather than failing (floorplanning models never need
            // free variables).
            lb.push(if v.lb.is_finite() { v.lb } else { -crate::tol::INFINITE_BOUND });
            ub.push(v.ub);
        }
        for (l, u) in slack_bounds {
            lb.push(l);
            ub.push(u);
        }

        let mut obj = vec![0.0; n_struct];
        for (v, c) in model.objective.iter() {
            obj[v.index()] = if maximize { -c } else { c };
        }
        let obj_constant = model.objective.constant_term();

        DenseForm { n_struct, n_slack, rows, rhs, lb, ub, obj, maximize, obj_constant }
    }

    /// Number of structural variables.
    pub fn n_struct(&self) -> usize {
        self.n_struct
    }

    /// Number of rows (constraints).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Solves the LP with the model's own bounds.
    pub fn solve(&self, config: &LpConfig) -> LpResult {
        self.solve_with_bounds(None, config)
    }

    /// Solves the LP overriding the bounds of the structural variables.
    ///
    /// `bounds_override` must contain one `(lb, ub)` pair per structural
    /// variable when provided.
    pub fn solve_with_bounds(
        &self,
        bounds_override: Option<&[(f64, f64)]>,
        config: &LpConfig,
    ) -> LpResult {
        let m = self.rows.len();
        let n = self.n_struct + self.n_slack;
        let total = n + m; // + artificials

        // Working bounds.
        let mut lb = self.lb.clone();
        let mut ub = self.ub.clone();
        if let Some(over) = bounds_override {
            debug_assert_eq!(over.len(), self.n_struct);
            for (j, &(l, u)) in over.iter().enumerate() {
                lb[j] = if l.is_finite() { l } else { -crate::tol::INFINITE_BOUND };
                ub[j] = u;
            }
        }
        // Quick infeasibility check on crossed bounds.
        for j in 0..n {
            if lb[j] > ub[j] + config.tol {
                return LpResult {
                    status: LpStatus::Infeasible,
                    objective: f64::NAN,
                    values: vec![0.0; self.n_struct],
                    iterations: 0,
                };
            }
        }
        // Artificials: fixed later, start in [0, inf).
        lb.extend(std::iter::repeat_n(0.0, m));
        ub.extend(std::iter::repeat_n(f64::INFINITY, m));

        // Dense tableau rows over all columns (structural + slack + artificial).
        let mut tab = vec![0.0f64; m * total];
        let mut b = self.rhs.clone();
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, c) in row {
                tab[i * total + j] = c;
            }
        }

        // Non-basic variables start at the finite bound of smallest magnitude.
        let mut at_upper = vec![false; total];
        let value_of_nonbasic = |j: usize, at_upper: &Vec<bool>, lb: &Vec<f64>, ub: &Vec<f64>| {
            if at_upper[j] {
                ub[j]
            } else {
                lb[j]
            }
        };
        for j in 0..n {
            if !ub[j].is_finite() {
                at_upper[j] = false;
            } else {
                at_upper[j] = lb[j].abs() > ub[j].abs();
            }
        }

        // Residuals r_i = b_i - sum_j a_ij * x_j(nonbasic).
        let mut xb = vec![0.0f64; m];
        for i in 0..m {
            let mut r = b[i];
            for j in 0..n {
                let a = tab[i * total + j];
                if a != 0.0 {
                    r -= a * value_of_nonbasic(j, &at_upper, &lb, &ub);
                }
            }
            xb[i] = r;
        }
        // Negate rows with negative residuals so artificials start >= 0.
        for i in 0..m {
            if xb[i] < 0.0 {
                for j in 0..n {
                    tab[i * total + j] = -tab[i * total + j];
                }
                b[i] = -b[i];
                xb[i] = -xb[i];
            }
            // Artificial column for row i.
            tab[i * total + n + i] = 1.0;
        }
        let mut basis: Vec<usize> = (n..n + m).collect();

        // Phase-1 and phase-2 reduced-cost rows.
        // Phase 1: cost 1 on artificials. With the all-artificial basis the
        // reduced cost of column j is -sum_i tab[i][j] (and 0 on artificials).
        let mut d1 = vec![0.0f64; total];
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..m {
                s += tab[i * total + j];
            }
            d1[j] = -s;
        }
        // Phase 2: artificials have zero cost, so reduced costs start equal to
        // the raw objective coefficients.
        let mut d2 = vec![0.0f64; total];
        for (j, &c) in self.obj.iter().enumerate() {
            d2[j] = c;
        }

        let max_iter = if config.max_iterations > 0 {
            config.max_iterations
        } else {
            20_000 + 60 * (m + total)
        };

        let mut iterations = 0usize;
        let tol = config.tol;
        let mut degenerate_run = 0usize;

        // The main pivoting loop, shared by both phases.
        // phase = 1 uses d1, phase = 2 uses d2.
        let mut phase = 1;
        loop {
            if iterations >= max_iter || config.interrupted() {
                return self.finish(LpStatus::IterationLimit, &basis, &xb, &at_upper, &lb, &ub);
            }

            // Entering variable selection.
            let use_bland = degenerate_run > 2 * (m + 10);
            let d = if phase == 1 { &d1 } else { &d2 };
            let mut enter: Option<(usize, f64, i8)> = None; // (col, score, direction)
            for j in 0..total {
                if basis.contains(&j) {
                    continue;
                }
                // Fixed variables can never improve.
                if (ub[j] - lb[j]).abs() < 1e-15 {
                    continue;
                }
                let dj = d[j];
                let dir: i8 = if !at_upper[j] && dj < -tol {
                    1
                } else if at_upper[j] && dj > tol {
                    -1
                } else {
                    continue;
                };
                let score = dj.abs();
                match (&enter, use_bland) {
                    (_, true) => {
                        enter = Some((j, score, dir));
                        break;
                    }
                    (None, false) => enter = Some((j, score, dir)),
                    (Some((_, best, _)), false) if score > *best => enter = Some((j, score, dir)),
                    _ => {}
                }
            }

            let (j_enter, _, dir) = match enter {
                Some(e) => e,
                None => {
                    // Optimal for the current phase.
                    if phase == 1 {
                        let infeas: f64 = basis
                            .iter()
                            .enumerate()
                            .filter(|(_, &v)| v >= n)
                            .map(|(i, _)| xb[i])
                            .sum();
                        if infeas > 1e-6 {
                            return self.finish(
                                LpStatus::Infeasible,
                                &basis,
                                &xb,
                                &at_upper,
                                &lb,
                                &ub,
                            );
                        }
                        // Fix artificials at zero and move to phase 2.
                        for a in n..total {
                            lb[a] = 0.0;
                            ub[a] = 0.0;
                        }
                        phase = 2;
                        degenerate_run = 0;
                        continue;
                    } else {
                        let mut res =
                            self.finish(LpStatus::Optimal, &basis, &xb, &at_upper, &lb, &ub);
                        res.iterations = iterations;
                        return res;
                    }
                }
            };

            // Ratio test along the entering direction.
            let dirf = dir as f64;
            let range = ub[j_enter] - lb[j_enter]; // may be inf
            let mut t_max = range;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for i in 0..m {
                let a = tab[i * total + j_enter];
                if a.abs() < config.pivot_tol {
                    continue;
                }
                let delta = dirf * a;
                let (limit, goes_upper) = if delta > 0.0 {
                    // Basic variable decreases towards its lower bound.
                    ((xb[i] - lb[basis[i]]) / delta, false)
                } else {
                    // Basic variable increases towards its upper bound.
                    if !ub[basis[i]].is_finite() {
                        continue;
                    }
                    ((ub[basis[i]] - xb[i]) / (-delta), true)
                };
                let limit = limit.max(0.0);
                if limit < t_max - 1e-12 {
                    t_max = limit;
                    leave = Some((i, goes_upper));
                }
            }

            if !t_max.is_finite() {
                // Entering variable can increase forever: unbounded (only
                // meaningful in phase 2; phase 1 objective is bounded below).
                return self.finish(LpStatus::Unbounded, &basis, &xb, &at_upper, &lb, &ub);
            }

            iterations += 1;
            if t_max <= 1e-11 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip: the entering variable moves to its other bound.
                    for i in 0..m {
                        let a = tab[i * total + j_enter];
                        if a != 0.0 {
                            xb[i] -= dirf * t_max * a;
                        }
                    }
                    at_upper[j_enter] = !at_upper[j_enter];
                }
                Some((r, goes_upper)) => {
                    // Update basic values.
                    for i in 0..m {
                        let a = tab[i * total + j_enter];
                        if a != 0.0 {
                            xb[i] -= dirf * t_max * a;
                        }
                    }
                    let entering_value =
                        value_of_nonbasic(j_enter, &at_upper, &lb, &ub) + dirf * t_max;
                    let leaving = basis[r];
                    at_upper[leaving] = goes_upper;
                    basis[r] = j_enter;
                    xb[r] = entering_value;

                    // Pivot the tableau and both cost rows on (r, j_enter).
                    let pivot = tab[r * total + j_enter];
                    let inv = 1.0 / pivot;
                    for j in 0..total {
                        tab[r * total + j] *= inv;
                    }
                    for i in 0..m {
                        if i == r {
                            continue;
                        }
                        let factor = tab[i * total + j_enter];
                        if factor != 0.0 {
                            for j in 0..total {
                                tab[i * total + j] -= factor * tab[r * total + j];
                            }
                        }
                    }
                    let f1 = d1[j_enter];
                    if f1 != 0.0 {
                        for j in 0..total {
                            d1[j] -= f1 * tab[r * total + j];
                        }
                    }
                    let f2 = d2[j_enter];
                    if f2 != 0.0 {
                        for j in 0..total {
                            d2[j] -= f2 * tab[r * total + j];
                        }
                    }
                }
            }
        }
    }

    /// Assembles an [`LpResult`] from the final simplex state.
    fn finish(
        &self,
        status: LpStatus,
        basis: &[usize],
        xb: &[f64],
        at_upper: &[bool],
        lb: &[f64],
        ub: &[f64],
    ) -> LpResult {
        let mut values = vec![0.0f64; self.n_struct];
        for j in 0..self.n_struct {
            values[j] = if at_upper[j] { ub[j] } else { lb[j] };
        }
        for (i, &v) in basis.iter().enumerate() {
            if v < self.n_struct {
                values[v] = xb[i];
            }
        }
        let mut objective = self.obj_constant;
        if status == LpStatus::Optimal || status == LpStatus::IterationLimit {
            let raw: f64 = self.obj.iter().enumerate().map(|(j, &c)| c * values[j]).sum();
            objective += if self.maximize { -raw } else { raw };
        } else {
            objective = f64::NAN;
        }
        LpResult { status, objective, values, iterations: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Model, Sense};

    fn cfg() -> LpConfig {
        LpConfig::default()
    }

    #[test]
    fn oracle_solves_a_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2,6).
        let mut m = Model::new("lp1", Sense::Maximize);
        let x = m.cont_var("x", 0.0, f64::INFINITY);
        let y = m.cont_var("y", 0.0, f64::INFINITY);
        m.add_con("c1", LinExpr::from(x), ConOp::Le, 4.0);
        m.add_con("c2", LinExpr::from(y) * 2.0, ConOp::Le, 12.0);
        m.add_con("c3", LinExpr::from(x) * 3.0 + LinExpr::from(y) * 2.0, ConOp::Le, 18.0);
        m.set_objective(LinExpr::from(x) * 3.0 + LinExpr::from(y) * 5.0);
        let r = DenseForm::from_model(&m).solve(&cfg());
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 36.0).abs() < 1e-6);
    }

    #[test]
    fn oracle_detects_infeasibility_and_unboundedness() {
        let mut inf = Model::new("inf", Sense::Minimize);
        let x = inf.cont_var("x", 0.0, 1.0);
        inf.add_con("hi", LinExpr::from(x), ConOp::Ge, 2.0);
        inf.set_objective(LinExpr::from(x));
        assert_eq!(DenseForm::from_model(&inf).solve(&cfg()).status, LpStatus::Infeasible);

        let mut unb = Model::new("unb", Sense::Maximize);
        let x = unb.cont_var("x", 0.0, f64::INFINITY);
        let y = unb.cont_var("y", 0.0, f64::INFINITY);
        unb.add_con("c", LinExpr::from(x) - y, ConOp::Le, 1.0);
        unb.set_objective(LinExpr::from(x) + y);
        assert_eq!(DenseForm::from_model(&unb).solve(&cfg()).status, LpStatus::Unbounded);
    }

    #[test]
    fn oracle_respects_bound_overrides() {
        let mut m = Model::new("bo", Sense::Minimize);
        let x = m.cont_var("x", 0.0, 5.0);
        let y = m.cont_var("y", 0.0, 5.0);
        m.add_con("link", LinExpr::from(x) + y, ConOp::Ge, 3.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y) * 10.0);
        let sf = DenseForm::from_model(&m);
        let tightened = sf.solve_with_bounds(Some(&[(0.0, 1.0), (0.0, 5.0)]), &cfg());
        assert_eq!(tightened.status, LpStatus::Optimal);
        assert!((tightened.objective - 21.0).abs() < 1e-6);
    }
}
