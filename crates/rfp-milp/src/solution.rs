//! MILP solution reporting.

use crate::model::{Model, VarId};
use serde::{Deserialize, Serialize};

/// Status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found and proven.
    Optimal,
    /// A feasible solution was found, but optimality was not proven within
    /// the node/time limits.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The problem is unbounded in the optimisation direction.
    Unbounded,
    /// The search stopped (node/time limit) without finding any feasible
    /// solution; feasibility is unknown.
    Unknown,
}

impl SolveStatus {
    /// Returns `true` if a usable assignment is available
    /// ([`SolveStatus::Optimal`] or [`SolveStatus::Feasible`]).
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Final status.
    pub status: SolveStatus,
    /// Objective value of the incumbent (meaningful when
    /// [`SolveStatus::has_solution`] is `true`).
    pub objective: f64,
    /// Best proven bound on the optimal objective (in the model's sense).
    pub best_bound: f64,
    /// Values of all model variables, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex iterations across all LP relaxations.
    pub lp_iterations: usize,
    /// Number of LP (re-)solves performed (nodes, dives and cut rounds).
    pub lp_solves: usize,
    /// Wall-clock seconds spent inside LP solves.
    pub lp_seconds: f64,
    /// Cutting planes added at the root.
    pub cuts: usize,
    /// Wall-clock solve time in seconds.
    pub solve_seconds: f64,
    /// `true` when the search stopped because the configured
    /// [`crate::CancelToken`] was cancelled (rather than by proof or by a
    /// node/time limit).
    pub cancelled: bool,
}

impl Solution {
    /// Creates a solution with no assignment (infeasible/unbounded/unknown).
    pub fn empty(status: SolveStatus, n_vars: usize) -> Self {
        Solution {
            status,
            objective: f64::NAN,
            best_bound: f64::NAN,
            values: vec![0.0; n_vars],
            nodes: 0,
            lp_iterations: 0,
            lp_solves: 0,
            lp_seconds: 0.0,
            cuts: 0,
            solve_seconds: 0.0,
            cancelled: false,
        }
    }

    /// Mean wall-clock seconds per LP (re-)solve, or 0 when none were run.
    pub fn lp_seconds_per_solve(&self) -> f64 {
        if self.lp_solves == 0 {
            0.0
        } else {
            self.lp_seconds / self.lp_solves as f64
        }
    }

    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// Value of a binary variable as a boolean.
    pub fn bool_value(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }

    /// Relative optimality gap `|objective - best_bound| / max(|objective|, 1)`.
    ///
    /// Returns `f64::INFINITY` when no incumbent is available.
    pub fn gap(&self) -> f64 {
        if !self.status.has_solution() || !self.best_bound.is_finite() {
            return f64::INFINITY;
        }
        (self.objective - self.best_bound).abs() / self.objective.abs().max(1.0)
    }

    /// Checks the assignment against the model (bounds, integrality and
    /// constraints) within tolerance `tol`.
    pub fn verify(&self, model: &Model, tol: f64) -> Vec<String> {
        if !self.status.has_solution() {
            return vec![format!("no solution available (status {:?})", self.status)];
        }
        model.violations(&self.values, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{ConOp, Sense};

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unknown.has_solution());
    }

    #[test]
    fn accessors_and_gap() {
        let sol = Solution {
            status: SolveStatus::Feasible,
            objective: 10.0,
            best_bound: 9.0,
            values: vec![1.2, 0.0, 3.0],
            nodes: 5,
            lp_iterations: 42,
            lp_solves: 6,
            lp_seconds: 0.06,
            cuts: 0,
            solve_seconds: 0.1,
            cancelled: false,
        };
        assert_eq!(sol.value(VarId::from_index(0)), 1.2);
        assert_eq!(sol.int_value(VarId::from_index(2)), 3);
        assert!(!sol.bool_value(VarId::from_index(1)));
        assert!((sol.gap() - 0.1).abs() < 1e-12);
        assert!((sol.lp_seconds_per_solve() - 0.01).abs() < 1e-12);
        assert_eq!(Solution::empty(SolveStatus::Infeasible, 2).gap(), f64::INFINITY);
        assert_eq!(Solution::empty(SolveStatus::Infeasible, 2).lp_seconds_per_solve(), 0.0);
    }

    #[test]
    fn verify_reports_violations() {
        let mut m = Model::new("t", Sense::Minimize);
        let x = m.int_var("x", 0.0, 3.0);
        m.add_con("c", LinExpr::from(x), ConOp::Le, 2.0);
        let mut sol = Solution::empty(SolveStatus::Optimal, 1);
        sol.values = vec![2.0];
        assert!(sol.verify(&m, 1e-9).is_empty());
        sol.values = vec![2.5];
        assert_eq!(sol.verify(&m, 1e-9).len(), 2); // non-integral + violated
        sol.status = SolveStatus::Infeasible;
        assert_eq!(sol.verify(&m, 1e-9).len(), 1);
    }
}
