//! Property tests pinning the sparse revised simplex to the dense oracle.
//!
//! Random small LPs (finite bounds, integer data) are solved by both the
//! revised engine and the retired dense tableau ([`rfp_milp::dense`]); the
//! two must agree on status and, when optimal, on the objective within 1e-6.
//! A second property checks the warm-start path: a dual-simplex re-solve
//! after a bound tightening must match a from-scratch solve of the tightened
//! LP.

use proptest::prelude::*;
use rfp_milp::dense::DenseForm;
use rfp_milp::model::{ConOp, Model, Sense};
use rfp_milp::simplex::{LpConfig, LpStatus, StandardForm};
use rfp_milp::LinExpr;

/// Tiny deterministic generator so one `u64` seed yields a whole LP.
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Builds a random small LP with finite bounds (never unbounded).
fn random_lp(seed: u64) -> Model {
    let mut rng = Rng64(seed);
    let n = rng.int(1, 5) as usize;
    let m = rng.int(1, 6) as usize;
    let sense = if rng.int(0, 1) == 0 { Sense::Minimize } else { Sense::Maximize };
    let mut model = Model::new(format!("prop{seed}"), sense);
    let vars: Vec<_> =
        (0..n).map(|j| model.cont_var(format!("x{j}"), 0.0, rng.int(1, 10) as f64)).collect();
    for i in 0..m {
        let expr = LinExpr::weighted_sum(
            vars.iter().map(|&v| (v, rng.int(-3, 3) as f64)).filter(|&(_, c)| c != 0.0),
        );
        let op = match rng.int(0, 5) {
            0 => ConOp::Eq, // equalities are rarer: they often force infeasibility
            1 | 2 => ConOp::Ge,
            _ => ConOp::Le,
        };
        model.add_con(format!("c{i}"), expr, op, rng.int(-5, 15) as f64);
    }
    model.set_objective(LinExpr::weighted_sum(vars.iter().map(|&v| (v, rng.int(-5, 5) as f64))));
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The revised simplex agrees with the dense-tableau oracle on random
    /// LPs: same status, and objectives within 1e-6 when optimal.
    #[test]
    fn revised_simplex_matches_dense_oracle(seed in any::<u64>()) {
        let model = random_lp(seed);
        let cfg = LpConfig::default();
        let revised = StandardForm::from_model(&model).solve(&cfg);
        let dense = DenseForm::from_model(&model).solve(&cfg);
        prop_assert_eq!(
            revised.status, dense.status,
            "status mismatch on seed {}: revised {:?} vs dense {:?}",
            seed, revised.status, dense.status
        );
        if revised.status == LpStatus::Optimal {
            prop_assert!(
                (revised.objective - dense.objective).abs() <= 1e-6,
                "objective mismatch on seed {}: revised {} vs dense {}",
                seed, revised.objective, dense.objective
            );
            // The revised solution must actually satisfy the model.
            prop_assert!(
                model.is_feasible(&revised.values, 1e-6),
                "revised solution infeasible on seed {}: {:?}",
                seed, model.violations(&revised.values, 1e-6)
            );
        }
    }

    /// A dual-simplex warm re-solve after a bound tightening matches a
    /// from-scratch solve of the tightened LP.
    #[test]
    fn dual_resolve_matches_cold_solve(seed in any::<u64>()) {
        let model = random_lp(seed);
        let cfg = LpConfig::default();
        let sf = StandardForm::from_model(&model);
        let (root, snap) = sf.solve_cold(None, &cfg);
        prop_assume!(root.status == LpStatus::Optimal);
        let snap = snap.expect("optimal cold solve returns a snapshot");

        // Tighten one variable's bound through the optimal value, the way a
        // branch-and-bound child would.
        let mut rng = Rng64(seed ^ 0xabcd_ef01);
        let j = rng.int(0, model.n_vars() as i64 - 1) as usize;
        let mut bounds: Vec<(f64, f64)> =
            model.vars().iter().map(|v| (v.lb, v.ub)).collect();
        let v = root.values[j];
        let (lb, ub) = bounds[j];
        bounds[j] = if rng.int(0, 1) == 0 {
            // "down" child: x_j <= floor(v).
            (lb, v.floor().max(lb))
        } else {
            // "up" child: x_j >= ceil(v).
            (v.ceil().min(ub), ub)
        };

        let (warm, _) = sf.solve_warm(&snap, Some(&bounds), &cfg);
        let cold = sf.solve_with_bounds(Some(&bounds), &cfg);
        prop_assert_eq!(
            warm.status, cold.status,
            "status mismatch on seed {}: warm {:?} vs cold {:?}",
            seed, warm.status, cold.status
        );
        if warm.status == LpStatus::Optimal {
            prop_assert!(
                (warm.objective - cold.objective).abs() <= 1e-6,
                "objective mismatch on seed {}: warm {} vs cold {}",
                seed, warm.objective, cold.objective
            );
        }
    }
}
