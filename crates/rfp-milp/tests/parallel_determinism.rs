//! Result-determinism of the work-stealing parallel branch-and-bound.
//!
//! The parallel search is free to explore the tree in any order — node
//! counts differ run to run — but the *results* must be deterministic:
//! at every thread count the proven objective and the `Optimal` status must
//! match the serial search on the same model. A cancelled or time-limited
//! parallel solve must additionally report an *honest* bound: the best-bound
//! side of the gap must still enclose the true optimum.

use proptest::prelude::*;
use rfp_milp::prelude::*;
use rfp_milp::LinExpr;

/// Thread counts the fixed instances are checked at.
const THREADS: [usize; 3] = [2, 4, 8];

fn solve_with_threads(model: &Model, threads: usize) -> Solution {
    let cfg = SolverConfig { threads, ..SolverConfig::default() };
    Solver::new(cfg).solve(model)
}

/// Classic 0/1 knapsack; optimum 56.
fn knapsack() -> Model {
    let values = [10.0, 13.0, 18.0, 31.0, 7.0, 15.0];
    let weights = [2.0, 3.0, 4.0, 5.0, 1.0, 4.0];
    let mut m = Model::new("knapsack", Sense::Maximize);
    let vars: Vec<_> = (0..6).map(|i| m.bin_var(format!("item{i}"))).collect();
    m.add_con(
        "capacity",
        LinExpr::weighted_sum(vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w))),
        ConOp::Le,
        10.0,
    );
    m.set_objective(LinExpr::weighted_sum(vars.iter().zip(values.iter()).map(|(&v, &c)| (v, c))));
    m
}

/// Subset-sum probe with no integrality gap: bound-tied nodes everywhere,
/// the hardest shape for parallel pruning to get wrong.
fn subset_sum() -> Model {
    let mut m = Model::new("subset", Sense::Maximize);
    let vars: Vec<_> = (0..16).map(|i| m.bin_var(format!("b{i}"))).collect();
    let w = |i: usize| (2 * i + 3) as f64;
    m.add_con(
        "cap",
        LinExpr::weighted_sum(vars.iter().enumerate().map(|(i, &v)| (v, w(i)))),
        ConOp::Le,
        55.0,
    );
    m.set_objective(LinExpr::weighted_sum(vars.iter().enumerate().map(|(i, &v)| (v, w(i)))));
    m
}

/// 4x4 assignment problem (equality-constrained, minimisation).
fn assignment() -> Model {
    let cost =
        [[4.0, 1.0, 3.0, 6.0], [2.0, 0.0, 5.0, 4.0], [3.0, 2.0, 2.0, 1.0], [5.0, 3.0, 1.0, 2.0]];
    let mut m = Model::new("assign", Sense::Minimize);
    let x: Vec<Vec<_>> =
        (0..4).map(|i| (0..4).map(|j| m.bin_var(format!("x{i}{j}"))).collect()).collect();
    for (i, row) in x.iter().enumerate() {
        m.add_con(
            format!("row{i}"),
            LinExpr::weighted_sum(row.iter().map(|&v| (v, 1.0))),
            ConOp::Eq,
            1.0,
        );
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..4 {
        m.add_con(
            format!("col{j}"),
            LinExpr::weighted_sum((0..4).map(|i| (x[i][j], 1.0))),
            ConOp::Eq,
            1.0,
        );
    }
    m.set_objective(LinExpr::weighted_sum(
        (0..4).flat_map(|i| (0..4).map(|j| (x[i][j], cost[i][j])).collect::<Vec<_>>()),
    ));
    m
}

#[test]
fn fixed_instances_prove_the_serial_objective_at_every_thread_count() {
    for build in [knapsack, subset_sum, assignment] {
        let model = build();
        let serial = Solver::default().solve(&model);
        assert_eq!(serial.status, SolveStatus::Optimal, "{}", model.name);
        for threads in THREADS {
            let par = solve_with_threads(&model, threads);
            assert_eq!(
                par.status,
                SolveStatus::Optimal,
                "{} at {threads} threads must prove optimality",
                model.name
            );
            assert!(
                (par.objective - serial.objective).abs() < 1e-6,
                "{} at {threads} threads: {} vs serial {}",
                model.name,
                par.objective,
                serial.objective
            );
            assert!(par.verify(&model, 1e-6).is_empty());
            // A proven solve's reported gap is closed in every thread mode.
            assert!(par.gap() < 1e-6, "{} at {threads} threads: gap {}", model.name, par.gap());
        }
    }
}

#[test]
fn threads_one_is_the_serial_search_bit_for_bit() {
    let model = subset_sum();
    let a = Solver::default().solve(&model);
    let b = solve_with_threads(&model, 1);
    assert_eq!(a.status, b.status);
    assert_eq!(a.values, b.values);
    // Same node order ⇒ same node count and same LP tallies.
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.lp_solves, b.lp_solves);
    assert_eq!(a.lp_iterations, b.lp_iterations);
}

#[test]
fn cancellation_mid_parallel_search_leaves_honest_bounds() {
    // A model big enough that 4 threads are still searching when the cancel
    // lands; the bound reported afterwards must enclose the true optimum
    // (known: 55 for the subset-sum probe).
    let model = subset_sum();
    let token = CancelToken::new();
    let cfg = SolverConfig {
        threads: 4,
        // Slow the pruning down so the search is genuinely mid-flight.
        dive_period: 0,
        cut_rounds: 0,
        cancel: token.clone(),
        ..SolverConfig::default()
    };
    // Cancel deterministically *mid-search*: the moment the first incumbent
    // is installed, the user token fires while workers still hold open
    // subtrees.
    let sol = Solver::new(cfg).solve_controlled(&model, None, Some(&move |_, _| token.cancel()));
    assert!(sol.cancelled, "the user token must be reported");
    // Honest bounds: whatever was proven, the true optimum 55 lies between
    // the incumbent objective and the best bound (maximisation sense).
    if sol.status.has_solution() {
        assert!(sol.objective <= 55.0 + 1e-6, "objective {} overclaims", sol.objective);
        assert!(sol.best_bound >= 55.0 - 1e-6, "bound {} cuts off the optimum", sol.best_bound);
        assert!(sol.verify(&model, 1e-6).is_empty());
    } else {
        assert!(sol.best_bound >= 55.0 - 1e-6 || sol.best_bound.is_infinite());
    }
}

#[test]
fn node_limited_parallel_search_reports_a_valid_bound() {
    let model = subset_sum();
    let cfg = SolverConfig { threads: 4, max_nodes: 8, ..SolverConfig::default() };
    let sol = Solver::new(cfg).solve(&model);
    // Never a false proof under a budget that cannot close the gap — unless
    // the gap really did close first (heuristics can be that lucky).
    if sol.status == SolveStatus::Optimal {
        assert!((sol.objective - 55.0).abs() < 1e-6);
    }
    if sol.status.has_solution() {
        assert!(sol.objective <= 55.0 + 1e-6);
        assert!(sol.best_bound >= 55.0 - 1e-6);
    }
}

/// Deterministic splitmix64, same idiom as the revised-vs-dense suite.
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Random small MILP with bounded integer variables (never unbounded).
fn random_milp(seed: u64) -> Model {
    let mut rng = Rng64(seed);
    let n = rng.int(2, 6) as usize;
    let m = rng.int(1, 5) as usize;
    let sense = if rng.int(0, 1) == 0 { Sense::Minimize } else { Sense::Maximize };
    let mut model = Model::new(format!("pprop{seed}"), sense);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            if rng.int(0, 3) == 0 {
                model.cont_var(format!("x{j}"), 0.0, rng.int(1, 8) as f64)
            } else {
                model.int_var(format!("x{j}"), 0.0, rng.int(1, 4) as f64)
            }
        })
        .collect();
    for i in 0..m {
        let expr = LinExpr::weighted_sum(
            vars.iter().map(|&v| (v, rng.int(-3, 3) as f64)).filter(|&(_, c)| c != 0.0),
        );
        let op = if rng.int(0, 3) == 0 { ConOp::Ge } else { ConOp::Le };
        model.add_con(format!("c{i}"), expr, op, rng.int(-4, 12) as f64);
    }
    model.set_objective(LinExpr::weighted_sum(vars.iter().map(|&v| (v, rng.int(-5, 5) as f64))));
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial and parallel agree on status and proven objective on random
    /// small MILPs, at 2 and 4 threads.
    #[test]
    fn parallel_matches_serial_on_random_milps(seed in any::<u64>()) {
        let model = random_milp(seed);
        let serial = Solver::default().solve(&model);
        for threads in [2usize, 4] {
            let par = solve_with_threads(&model, threads);
            prop_assert_eq!(
                par.status, serial.status,
                "status mismatch on seed {} at {} threads: {:?} vs {:?}",
                seed, threads, par.status, serial.status
            );
            if serial.status == SolveStatus::Optimal {
                prop_assert!(
                    (par.objective - serial.objective).abs() <= 1e-6,
                    "objective mismatch on seed {} at {} threads: {} vs {}",
                    seed, threads, par.objective, serial.objective
                );
                prop_assert!(par.verify(&model, 1e-6).is_empty());
            }
        }
    }
}
