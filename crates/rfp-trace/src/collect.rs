//! The collector: thread-local scopes, per-thread buffers, one-lock drain.
//!
//! Emission never touches a lock: every [`TraceHandle::install`] scope
//! accumulates into a thread-owned [`TrackBuf`] and flushes it **once**,
//! when the scope ends, into the collector's shared state. Counters merge
//! by summation and histogram samples by multiset union, so the flush
//! order of concurrent scopes cannot change the drained document as long
//! as concurrent scopes use distinct track names (which the
//! instrumentation does: worker indices, job ids, engine ids).

use crate::doc::TraceDoc;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One span boundary recorded in thread order.
#[derive(Debug, Clone)]
pub(crate) enum SpanEvent {
    /// A span named `0` opened.
    Enter(String),
    /// The innermost open span closed.
    Exit,
}

/// Everything one track accumulated: span boundaries in emission order,
/// counters and histogram samples.
#[derive(Debug, Default)]
pub(crate) struct TrackBuf {
    pub(crate) events: Vec<SpanEvent>,
    pub(crate) counts: BTreeMap<String, u64>,
    pub(crate) values: BTreeMap<String, Vec<u64>>,
}

impl TrackBuf {
    fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counts.is_empty() && self.values.is_empty()
    }

    fn merge(&mut self, other: TrackBuf) {
        self.events.extend(other.events);
        for (name, delta) in other.counts {
            *self.counts.entry(name).or_insert(0) += delta;
        }
        for (name, mut samples) in other.values {
            self.values.entry(name).or_default().append(&mut samples);
        }
    }
}

/// The collector-side accumulation of every flushed scope.
#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) tracks: BTreeMap<String, TrackBuf>,
    /// Out-of-band wall-clock seconds by name — never part of the document.
    pub(crate) wall: BTreeMap<String, f64>,
}

/// Shared between the [`Collector`] and every [`TraceHandle`] clone.
struct Shared {
    state: Mutex<State>,
    wall_clock: bool,
    counters_only: bool,
}

/// Aggregates trace scopes and drains them to a deterministic [`TraceDoc`].
pub struct Collector {
    shared: Arc<Shared>,
}

impl Collector {
    /// A collector with logical clocks only — the deterministic default.
    pub fn new() -> Collector {
        Collector::build(false, false)
    }

    /// A collector that *additionally* measures real span durations and
    /// accepts [`wall`] measurements. The wall numbers stay out-of-band
    /// ([`Collector::wall_timings`]); the drained document is unchanged.
    pub fn with_wall_clock() -> Collector {
        Collector::build(true, false)
    }

    /// A collector that keeps **only counters** — span boundaries and
    /// histogram samples are dropped at emission, so memory stays bounded
    /// no matter how long the process lives. Built for the serve loop's
    /// live `stats` snapshots.
    pub fn counters_only() -> Collector {
        Collector::build(false, true)
    }

    fn build(wall_clock: bool, counters_only: bool) -> Collector {
        Collector {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                wall_clock,
                counters_only,
            }),
        }
    }

    /// A cheap, cloneable, `Send + Sync` handle for installing scopes —
    /// including on spawned threads.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle { shared: self.shared.clone() }
    }

    /// Installs this collector on the current thread under `track` (a
    /// convenience for [`TraceHandle::install`]).
    pub fn install(&self, track: &str) -> ScopeGuard {
        self.handle().install(track)
    }

    /// Drains every flushed scope into the deterministic document and
    /// clears the span/counter state. Out-of-band wall timings survive a
    /// drain and keep accumulating.
    pub fn drain(&self) -> TraceDoc {
        let mut state = self.shared.state.lock().expect("trace state lock");
        let tracks = std::mem::take(&mut state.tracks);
        TraceDoc::build(&tracks)
    }

    /// The accumulated out-of-band wall-clock seconds, `(name, seconds)`
    /// sorted by name. Span durations appear under the span's name (only
    /// when the collector was built [`Collector::with_wall_clock`]);
    /// explicit [`wall`] measurements always land here.
    pub fn wall_timings(&self) -> Vec<(String, f64)> {
        let state = self.shared.state.lock().expect("trace state lock");
        state.wall.iter().map(|(n, &s)| (n.clone(), s)).collect()
    }

    /// A live snapshot of every counter, summed across tracks — the serve
    /// protocol's `stats` verb. Non-destructive; only flushed scopes are
    /// visible.
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        snapshot_counters(&self.shared)
    }
}

fn snapshot_counters(shared: &Shared) -> BTreeMap<String, u64> {
    let state = shared.state.lock().expect("trace state lock");
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for buf in state.tracks.values() {
        for (name, &v) in &buf.counts {
            *merged.entry(name.clone()).or_insert(0) += v;
        }
    }
    merged
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("wall_clock", &self.shared.wall_clock)
            .field("counters_only", &self.shared.counters_only)
            .finish()
    }
}

/// A cloneable reference to a [`Collector`], safe to move into spawned
/// threads.
#[derive(Clone)]
pub struct TraceHandle {
    shared: Arc<Shared>,
}

impl TraceHandle {
    /// Installs the collector on the current thread for a lexical scope;
    /// everything emitted until the returned guard drops lands on `track`.
    /// Scopes nest (the innermost wins); a scope that emitted nothing
    /// flushes nothing, so its track never materialises.
    pub fn install(&self, track: &str) -> ScopeGuard {
        SCOPES.with(|scopes| {
            scopes.borrow_mut().push(LocalScope {
                shared: self.shared.clone(),
                track: track.to_string(),
                buf: TrackBuf::default(),
                wall: BTreeMap::new(),
                wall_clock: self.shared.wall_clock,
                counters_only: self.shared.counters_only,
                open_starts: Vec::new(),
            });
        });
        ACTIVE.with(|a| a.set(true));
        ScopeGuard { _not_send: PhantomData }
    }

    /// A live counter snapshot through the handle (see
    /// [`Collector::counter_snapshot`]) — lets a protocol layer report
    /// counters without holding the collector itself.
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        snapshot_counters(&self.shared)
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceHandle")
    }
}

/// One installed scope on this thread.
struct LocalScope {
    shared: Arc<Shared>,
    track: String,
    buf: TrackBuf,
    wall: BTreeMap<String, f64>,
    wall_clock: bool,
    counters_only: bool,
    /// Start instants of the open spans, innermost last (wall mode only).
    open_starts: Vec<(String, Instant)>,
}

impl LocalScope {
    fn flush(mut self) {
        // Wall mode: charge still-open spans up to the flush point so an
        // early scope drop doesn't silently lose their time.
        while let Some((name, started)) = self.open_starts.pop() {
            *self.wall.entry(name).or_insert(0.0) += started.elapsed().as_secs_f64();
        }
        if self.buf.is_empty() && self.wall.is_empty() {
            return;
        }
        let mut state = self.shared.state.lock().expect("trace state lock");
        if !self.buf.is_empty() {
            state.tracks.entry(self.track).or_default().merge(self.buf);
        }
        for (name, secs) in self.wall {
            *state.wall.entry(name).or_insert(0.0) += secs;
        }
    }
}

thread_local! {
    /// The stack of installed scopes; emission targets the top.
    static SCOPES: RefCell<Vec<LocalScope>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `!SCOPES.is_empty()` — the one-read fast path that makes
    /// every emission free when tracing is off.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// `true` when a collector scope is installed on this thread. Use it to
/// gate *computing* an expensive metric; plain emissions self-gate.
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

/// The innermost installed collector, for handing to spawned threads.
pub fn current() -> Option<TraceHandle> {
    if !enabled() {
        return None;
    }
    SCOPES.with(|scopes| {
        scopes.borrow().last().map(|scope| TraceHandle { shared: scope.shared.clone() })
    })
}

fn with_top<R>(f: impl FnOnce(&mut LocalScope) -> R) -> Option<R> {
    SCOPES.with(|scopes| scopes.borrow_mut().last_mut().map(f))
}

/// Adds `delta` to the counter `name` on the current track. No-op when
/// tracing is off or `delta` is zero (zero counters never materialise).
pub fn count(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_top(|scope| *scope.buf.counts.entry(name.to_string()).or_insert(0) += delta);
}

/// Adds one sample to the histogram `name` on the current track.
pub fn record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_top(|scope| {
        if !scope.counters_only {
            scope.buf.values.entry(name.to_string()).or_default().push(value);
        }
    });
}

/// Adds out-of-band wall-clock seconds under `name` — queue waits, worker
/// busy time. Never appears in the deterministic document; read it back
/// with [`Collector::wall_timings`].
pub fn wall(name: &str, seconds: f64) {
    if !enabled() {
        return;
    }
    with_top(|scope| *scope.wall.entry(name.to_string()).or_insert(0.0) += seconds);
}

/// Opens a span named `name` on the current track; it closes when the
/// guard drops. The guard must not outlive the scope it was opened in.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    with_top(|scope| {
        if !scope.counters_only {
            scope.buf.events.push(SpanEvent::Enter(name.to_string()));
        }
        if scope.wall_clock {
            scope.open_starts.push((name.to_string(), Instant::now()));
        }
    });
    SpanGuard { armed: true }
}

/// Closes its span on drop. When tracing was off at [`span`] time the
/// guard is inert.
#[must_use = "a span closes when its guard drops"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed || !enabled() {
            return;
        }
        with_top(|scope| {
            if !scope.counters_only {
                scope.buf.events.push(SpanEvent::Exit);
            }
            if scope.wall_clock {
                if let Some((name, started)) = scope.open_starts.pop() {
                    *scope.wall.entry(name).or_insert(0.0) += started.elapsed().as_secs_f64();
                }
            }
        });
    }
}

/// Uninstalls its scope on drop, flushing the scope's buffer into the
/// collector. Not `Send`: a scope must end on the thread that opened it.
#[must_use = "the scope ends (and flushes) when its guard drops"]
pub struct ScopeGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let scope = SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            let scope = scopes.pop();
            ACTIVE.with(|a| a.set(!scopes.is_empty()));
            scope
        });
        if let Some(scope) = scope {
            scope.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_without_a_scope_is_a_no_op() {
        assert!(!enabled());
        count("orphan", 1);
        record("orphan", 1);
        wall("orphan", 1.0);
        let _g = span("orphan");
        assert!(current().is_none());
    }

    #[test]
    fn scopes_flush_once_and_merge_by_track() {
        let collector = Collector::new();
        {
            let _a = collector.install("main");
            count("n", 2);
            record("h", 5);
        }
        {
            let _b = collector.install("main");
            count("n", 3);
            record("h", 7);
        }
        let doc = collector.drain();
        assert_eq!(doc.tracks.len(), 1);
        assert_eq!(doc.tracks[0].counters, vec![("n".to_string(), 5)]);
        assert_eq!(doc.tracks[0].histograms[0].1.total, 12);
        // Drained: the next drain is empty.
        assert!(collector.drain().tracks.is_empty());
    }

    #[test]
    fn empty_scopes_leave_no_track_and_zero_counts_vanish() {
        let collector = Collector::new();
        {
            let _idle = collector.install("worker0");
        }
        {
            let _main = collector.install("main");
            count("zero", 0);
        }
        assert!(collector.drain().tracks.is_empty());
    }

    #[test]
    fn nested_installs_route_to_the_innermost_track() {
        let collector = Collector::new();
        let _outer = collector.install("outer");
        count("x", 1);
        {
            let _inner = collector.install("inner");
            count("x", 10);
        }
        count("x", 1);
        drop(_outer);
        let doc = collector.drain();
        let get = |t: &str| {
            doc.tracks.iter().find(|tr| tr.name == t).map(|tr| tr.counters[0].1).unwrap_or(0)
        };
        assert_eq!(get("outer"), 2);
        assert_eq!(get("inner"), 10);
    }

    #[test]
    fn handles_cross_threads() {
        let collector = Collector::new();
        let handle = collector.handle();
        std::thread::scope(|scope| {
            for w in 0..2 {
                let handle = handle.clone();
                scope.spawn(move || {
                    let _s = handle.install(&format!("worker{w}"));
                    count("done", 1);
                });
            }
        });
        let doc = collector.drain();
        assert_eq!(doc.tracks.len(), 2);
        assert_eq!(collector.counter_snapshot().len(), 0, "drain cleared the counters");
    }

    #[test]
    fn counters_only_mode_drops_spans_and_samples() {
        let collector = Collector::counters_only();
        {
            let _s = collector.install("main");
            let _sp = span("ignored");
            count("kept", 4);
            record("dropped", 9);
        }
        assert_eq!(collector.counter_snapshot().get("kept"), Some(&4));
        let doc = collector.drain();
        assert!(doc.tracks[0].spans.is_empty());
        assert!(doc.tracks[0].histograms.is_empty());
    }

    #[test]
    fn wall_clock_stays_out_of_band() {
        let collector = Collector::with_wall_clock();
        {
            let _s = collector.install("main");
            let _sp = span("work");
            wall("queue_wait", 0.25);
        }
        let doc = collector.drain();
        assert_eq!(doc.tracks[0].spans[0].name, "work");
        let timings = collector.wall_timings();
        assert!(timings.iter().any(|(n, _)| n == "queue_wait"));
        assert!(timings.iter().any(|(n, _)| n == "work"));
        assert!(!doc.to_json().contains("queue_wait\" :"), "wall names never gain fields");
    }
}
