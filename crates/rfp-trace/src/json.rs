//! Hand-rolled JSON support for the `rfp-trace` v1 schema: a string
//! escaper for the writer and a recursive-descent parser specialised to
//! the document shape (objects, arrays, strings, unsigned integers), with
//! positioned errors. Integers parse exactly as `u64` — no float detour —
//! so a write→parse→write round trip is byte-identical.

use crate::doc::{CountStats, Span, TraceDoc, Track};

/// Why a trace document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Appends `value` to `out` as a JSON string literal.
pub(crate) fn write_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", byte as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("non-scalar \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-borrow the raw UTF-8: step back one byte and take
                    // the full code point.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        ParseError { offset: self.pos, message: "invalid UTF-8".to_string() }
                    })?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return self.err("unescaped control character");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected an unsigned integer");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| ParseError { offset: start, message: "integer overflow".to_string() })
    }

    /// Parses `{ "key": ..., ... }`, calling `field` for each key with the
    /// parser positioned at the value.
    fn object(
        &mut self,
        mut field: impl FnMut(&mut Self, &str) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, &key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    /// Parses `[ ..., ... ]`, calling `item` once per element.
    fn array(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            item(self)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn span(&mut self) -> Result<Span, ParseError> {
        let mut span = Span { name: String::new(), seq: 0, end: 0, children: Vec::new() };
        self.object(|p, key| {
            match key {
                "name" => span.name = p.string()?,
                "seq" => span.seq = p.integer()?,
                "end" => span.end = p.integer()?,
                "children" => p.array(|p| {
                    span.children.push(p.span()?);
                    Ok(())
                })?,
                other => return p.err(format!("unknown span field `{other}`")),
            }
            Ok(())
        })?;
        Ok(span)
    }

    fn histogram(&mut self) -> Result<CountStats, ParseError> {
        let mut h = CountStats { n: 0, total: 0, p50: 0, p95: 0, min: 0, max: 0 };
        self.object(|p, key| {
            let slot = match key {
                "n" => &mut h.n,
                "total" => &mut h.total,
                "p50" => &mut h.p50,
                "p95" => &mut h.p95,
                "min" => &mut h.min,
                "max" => &mut h.max,
                other => return p.err(format!("unknown histogram field `{other}`")),
            };
            *slot = p.integer()?;
            Ok(())
        })?;
        Ok(h)
    }

    fn track(&mut self) -> Result<Track, ParseError> {
        let mut track = Track {
            name: String::new(),
            spans: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        };
        self.object(|p, key| {
            match key {
                "name" => track.name = p.string()?,
                "spans" => p.array(|p| {
                    track.spans.push(p.span()?);
                    Ok(())
                })?,
                "counters" => p.object(|p, name| {
                    let value = p.integer()?;
                    track.counters.push((name.to_string(), value));
                    Ok(())
                })?,
                "histograms" => p.object(|p, name| {
                    let h = p.histogram()?;
                    track.histograms.push((name.to_string(), h));
                    Ok(())
                })?,
                other => return p.err(format!("unknown track field `{other}`")),
            }
            Ok(())
        })?;
        Ok(track)
    }
}

/// Parses a complete `rfp-trace` v1 document.
pub(crate) fn parse_doc(text: &str) -> Result<TraceDoc, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let mut format = String::new();
    let mut version = 0u64;
    let mut tracks = Vec::new();
    p.object(|p, key| {
        match key {
            "format" => format = p.string()?,
            "version" => version = p.integer()?,
            "tracks" => p.array(|p| {
                tracks.push(p.track()?);
                Ok(())
            })?,
            other => return p.err(format!("unknown document field `{other}`")),
        }
        Ok(())
    })?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after the document");
    }
    if format != "rfp-trace" {
        return Err(ParseError {
            offset: 0,
            message: format!("not an rfp-trace file: format `{format}`"),
        });
    }
    if version != 1 {
        return Err(ParseError {
            offset: 0,
            message: format!("unsupported rfp-trace version {version}"),
        });
    }
    Ok(TraceDoc { tracks })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_foreign_documents() {
        assert!(parse_doc("{}").is_err());
        assert!(parse_doc(r#"{"format": "rfp-trace", "version": 2, "tracks": []}"#).is_err());
        assert!(parse_doc(r#"{"format": "other", "version": 1, "tracks": []}"#).is_err());
        let err = parse_doc("{\"format\": \"rfp-trace\"").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let text = r#"{"format": "rfp-trace", "version": 1, "tracks": [
            {"name": "mäin \"x\"\\", "spans": [], "counters": {"a": 7}, "histograms": {}}
        ]}"#;
        let doc = parse_doc(text).expect("parses");
        assert_eq!(doc.tracks[0].name, "mäin \"x\"\\");
        assert_eq!(doc.tracks[0].counters, vec![("a".to_string(), 7)]);
    }

    #[test]
    fn escaper_and_parser_agree_on_awkward_strings() {
        for value in ["plain", "with \"quotes\"", "tab\there", "null\u{0}byte", "emoji 🦀"] {
            let mut s = String::new();
            write_string(&mut s, value);
            let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
            assert_eq!(p.string().expect("parses"), value);
        }
    }
}
