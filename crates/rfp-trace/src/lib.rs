//! Structured tracing and metrics for the relocfp stack, with **zero
//! external dependencies** and **deterministic output**.
//!
//! The design splits the classic tracing concerns along the same line the
//! sweep harness draws between its report and its wall clock:
//!
//! * **Logical structure is deterministic.** Spans carry *logical sequence
//!   numbers* — a counter that ticks once per span boundary, assigned at
//!   drain time in canonical track order — never wall-clock timestamps, so
//!   a trace of a deterministic computation is byte-identical run to run
//!   and can be committed as a golden file. Counters merge by summation and
//!   histograms summarise multisets ([`summarize_counts`]), so neither
//!   depends on thread interleaving.
//! * **Wall clock is opt-in and out-of-band.** A collector built with
//!   [`Collector::with_wall_clock`] additionally accumulates real span
//!   durations and explicit [`wall`] measurements, but those only ever
//!   surface through [`Collector::wall_timings`] — they cannot leak into
//!   the deterministic [`TraceDoc`].
//!
//! # Installation model
//!
//! Nothing here is process-global: a [`Collector`] is installed on the
//! current thread for a lexical scope via [`TraceHandle::install`], which
//! names the **track** the scope's events land on (`"main"`, `"job00003"`,
//! `"milp.worker1"`, an engine id …). Emission ([`span`], [`count`],
//! [`record`], [`wall`]) is a thread-local no-op when no scope is active —
//! one `Cell<bool>` read — which is what keeps fully-uninstrumented runs
//! (and every run of the test suite that doesn't opt in) overhead-free and
//! cross-test-pollution-free.
//!
//! Spawned threads inherit nothing implicitly: code that fans out captures
//! [`current`] before spawning and installs the handle under a new track
//! name inside each worker. A scope that emits nothing flushes nothing —
//! idle workers leave no track behind, which is why a parallel solve that
//! never leaves the root produces the same trace as a serial one.
//!
//! # The document
//!
//! [`Collector::drain`] folds the flushed per-scope buffers into a
//! [`TraceDoc`]: tracks sorted canonically (`"main"` first, the rest
//! lexicographic), each holding a span tree, non-zero counters and count
//! histograms. [`TraceDoc::to_json`] / [`TraceDoc::from_json`] round-trip
//! the `rfp-trace` v1 JSON format.
//!
//! ```
//! let collector = rfp_trace::Collector::new();
//! {
//!     let _scope = collector.handle().install("main");
//!     let _solve = rfp_trace::span("solve");
//!     rfp_trace::count("nodes", 3);
//!     rfp_trace::record("lp.iterations", 17);
//! }
//! let doc = collector.drain();
//! assert_eq!(doc.tracks[0].name, "main");
//! assert_eq!(doc.tracks[0].spans[0].name, "solve");
//! let round = rfp_trace::TraceDoc::from_json(&doc.to_json()).unwrap();
//! assert_eq!(doc, round);
//! ```

mod collect;
mod doc;
mod json;

pub use collect::{
    count, current, enabled, record, span, wall, Collector, ScopeGuard, SpanGuard, TraceHandle,
};
pub use doc::{summarize_counts, CountStats, Span, TraceDoc, Track};
pub use json::ParseError;
