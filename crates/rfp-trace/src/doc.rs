//! The deterministic `rfp-trace` v1 document: span trees on named tracks,
//! non-zero counters, and count histograms.
//!
//! Logical sequence numbers are assigned **here**, at build time, by
//! walking tracks in canonical order (`"main"` first, the rest
//! lexicographic) and each track's span boundaries in emission order —
//! not at emission time — so the numbering is a pure function of the
//! recorded structure, independent of thread scheduling.

use crate::collect::{SpanEvent, TrackBuf};
use crate::json;
use std::collections::BTreeMap;

/// Summary statistics over dimensionless integer samples — the same shape
/// (and nearest-rank percentile definition) as the criterion stub's
/// `CountStats`, re-derived here so the trace crate stays dependency-free.
/// Order-independent: a multiset of samples has exactly one summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountStats {
    /// Number of samples.
    pub n: u64,
    /// Sum of all samples.
    pub total: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// Computes [`CountStats`] over a sample multiset (all-zero when empty).
pub fn summarize_counts(samples: &[u64]) -> CountStats {
    if samples.is_empty() {
        return CountStats { n: 0, total: 0, p50: 0, p95: 0, min: 0, max: 0 };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pct = |p: u64| {
        let rank = (p as usize * sorted.len()).div_ceil(100);
        sorted[rank.max(1) - 1]
    };
    CountStats {
        n: sorted.len() as u64,
        total: sorted.iter().sum(),
        p50: pct(50),
        p95: pct(95),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
    }
}

/// One node of a track's span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The name passed to [`crate::span`].
    pub name: String,
    /// Logical sequence number of the span's opening.
    pub seq: u64,
    /// Logical sequence number of the span's closing (`> seq`).
    pub end: u64,
    /// Spans opened and closed while this one was open.
    pub children: Vec<Span>,
}

impl Span {
    /// The span's extent on the logical clock.
    pub fn logical_len(&self) -> u64 {
        self.end.saturating_sub(self.seq)
    }
}

/// One track: everything a named scope (or several scopes sharing the
/// name) emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Track name (`"main"`, `"job00003"`, `"milp.worker1"`, …).
    pub name: String,
    /// Top-level spans in emission order.
    pub spans: Vec<Span>,
    /// Non-zero counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, CountStats)>,
}

/// A drained trace: the deterministic `rfp-trace` v1 document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDoc {
    /// Tracks in canonical order: `"main"` first, the rest lexicographic.
    pub tracks: Vec<Track>,
}

impl TraceDoc {
    /// Folds the collector's raw buffers into the canonical document.
    pub(crate) fn build(tracks: &BTreeMap<String, TrackBuf>) -> TraceDoc {
        let mut names: Vec<&String> = tracks.keys().collect();
        names.sort_by_key(|n| (n.as_str() != "main", n.as_str()));
        let mut seq = 0u64;
        let mut out = Vec::new();
        for name in names {
            let buf = &tracks[name];
            let spans = build_tree(&buf.events, &mut seq);
            let counters: Vec<(String, u64)> =
                buf.counts.iter().filter(|(_, &v)| v != 0).map(|(n, &v)| (n.clone(), v)).collect();
            let histograms: Vec<(String, CountStats)> = buf
                .values
                .iter()
                .filter(|(_, samples)| !samples.is_empty())
                .map(|(n, samples)| (n.clone(), summarize_counts(samples)))
                .collect();
            if spans.is_empty() && counters.is_empty() && histograms.is_empty() {
                continue;
            }
            out.push(Track { name: name.clone(), spans, counters, histograms });
        }
        TraceDoc { tracks: out }
    }

    /// Serialises to the pretty-printed `rfp-trace` v1 JSON (trailing
    /// newline included). Integers only — the document is byte-stable.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"format\": \"rfp-trace\",\n  \"version\": 1,\n  \"tracks\": [");
        for (i, track) in self.tracks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n      \"name\": ");
            json::write_string(&mut s, &track.name);
            s.push_str(",\n      \"spans\": [");
            write_spans(&mut s, &track.spans, 8);
            s.push_str("],\n      \"counters\": {");
            for (j, (name, value)) in track.counters.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("\n        ");
                json::write_string(&mut s, name);
                s.push_str(&format!(": {value}"));
            }
            if !track.counters.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("},\n      \"histograms\": {");
            for (j, (name, h)) in track.histograms.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("\n        ");
                json::write_string(&mut s, name);
                s.push_str(&format!(
                    ": {{\"n\": {}, \"total\": {}, \"p50\": {}, \"p95\": {}, \"min\": {}, \"max\": {}}}",
                    h.n, h.total, h.p50, h.p95, h.min, h.max
                ));
            }
            if !track.histograms.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("}\n    }");
        }
        if !self.tracks.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses an `rfp-trace` v1 JSON document.
    pub fn from_json(text: &str) -> Result<TraceDoc, ParseError> {
        json::parse_doc(text)
    }
}

pub use crate::json::ParseError;

fn write_spans(s: &mut String, spans: &[Span], indent: usize) {
    let pad = " ".repeat(indent);
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&pad);
        s.push_str("{\"name\": ");
        json::write_string(s, &span.name);
        s.push_str(&format!(", \"seq\": {}, \"end\": {}, \"children\": [", span.seq, span.end));
        if !span.children.is_empty() {
            write_spans(s, &span.children, indent + 2);
            s.push('\n');
            s.push_str(&pad);
        }
        s.push_str("]}");
    }
    if !spans.is_empty() {
        s.push('\n');
        s.push_str(&" ".repeat(indent.saturating_sub(2)));
    }
}

/// Builds the span forest of one track, ticking the document-global
/// logical clock once per boundary. Unbalanced exits are dropped;
/// unclosed spans close at the track's end.
fn build_tree(events: &[SpanEvent], seq: &mut u64) -> Vec<Span> {
    let mut roots: Vec<Span> = Vec::new();
    let mut stack: Vec<Span> = Vec::new();
    let mut tick = || {
        let s = *seq;
        *seq += 1;
        s
    };
    for event in events {
        match event {
            SpanEvent::Enter(name) => {
                stack.push(Span { name: name.clone(), seq: tick(), end: 0, children: Vec::new() })
            }
            SpanEvent::Exit => {
                if let Some(mut span) = stack.pop() {
                    span.end = tick();
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(span),
                        None => roots.push(span),
                    }
                }
            }
        }
    }
    while let Some(mut span) = stack.pop() {
        span.end = tick();
        match stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => roots.push(span),
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, record, span, Collector};

    #[test]
    fn summarize_matches_the_nearest_rank_definition() {
        let s = summarize_counts(&[4, 1, 3, 2]);
        assert_eq!(s, CountStats { n: 4, total: 10, p50: 2, p95: 4, min: 1, max: 4 });
        assert_eq!(summarize_counts(&[]).n, 0);
        let shuffled = summarize_counts(&[2, 4, 1, 3]);
        assert_eq!(s, shuffled, "order-independent");
    }

    #[test]
    fn span_trees_nest_and_sequence_canonically() {
        let collector = Collector::new();
        {
            let _s = collector.install("main");
            let _outer = span("solve");
            {
                let _inner = span("presolve");
            }
            {
                let _inner = span("search");
                count("nodes", 1);
            }
        }
        {
            let _s = collector.install("aux");
            let _sp = span("side");
        }
        let doc = collector.drain();
        assert_eq!(doc.tracks.len(), 2);
        assert_eq!(doc.tracks[0].name, "main", "main sorts first");
        let solve = &doc.tracks[0].spans[0];
        assert_eq!(solve.seq, 0);
        assert_eq!(solve.children[0].name, "presolve");
        assert_eq!(solve.children[0].seq, 1);
        assert_eq!(solve.children[0].end, 2);
        assert_eq!(solve.children[1].name, "search");
        assert_eq!(solve.end, 5);
        assert_eq!(doc.tracks[1].spans[0].seq, 6, "the clock is document-global");
    }

    #[test]
    fn unclosed_spans_close_at_track_end() {
        let collector = Collector::new();
        {
            let _s = collector.install("main");
            let open = span("left-open");
            std::mem::forget(open);
        }
        let doc = collector.drain();
        assert_eq!(doc.tracks[0].spans[0].end, 1);
    }

    #[test]
    fn json_round_trips() {
        let collector = Collector::new();
        {
            let _s = collector.install("main");
            let _a = span("a");
            count("c\"tricky\\name", 3);
            record("h", 1);
            record("h", 2);
        }
        let doc = collector.drain();
        let text = doc.to_json();
        let parsed = TraceDoc::from_json(&text).expect("parses");
        assert_eq!(doc, parsed);
        assert_eq!(parsed.to_json(), text, "writer is a fixpoint");
    }

    #[test]
    fn empty_doc_round_trips() {
        let doc = TraceDoc::default();
        assert_eq!(TraceDoc::from_json(&doc.to_json()).unwrap(), doc);
    }
}
