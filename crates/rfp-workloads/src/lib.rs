//! # rfp-workloads — case studies and workload generators
//!
//! * [`sdr`] — the software-defined-radio design of the paper's evaluation
//!   (Section VI, Table I): five reconfigurable regions connected in a chain
//!   by a 64-bit bus, plus the SDR2/SDR3 relocation variants.
//! * [`generator`] — reproducible synthetic workloads and devices for the
//!   scaling and ablation benchmarks.
//! * [`defrag`] — Fekete-style online defragmentation traces for the
//!   `rfp-runtime` simulator, plus the deterministic CI-smoke scenario.
//! * [`hetero`] — heterogeneous fabric device families (striped special
//!   columns, hard blocks, die boundaries) and the golden instances of the
//!   CI `hetero-smoke` job.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod defrag;
pub mod generator;
pub mod hetero;
pub mod sdr;

pub use defrag::{smoke_scenario, smoke_scenario_json, DefragWorkloadSpec};
pub use hetero::{
    hetero_constraint_problem, hetero_golden_problem, hetero_problem_json, hetero_scenario_json,
    hetero_smoke_scenario,
    HeteroDeviceSpec,
};
pub use generator::{SyntheticWorkload, WorkloadSpec};
pub use sdr::{
    sdr2_problem, sdr3_problem, sdr_problem, sdr_problem_json, sdr_region_table, SdrRegionRow,
};
