//! # rfp-workloads — case studies and workload generators
//!
//! * [`sdr`] — the software-defined-radio design of the paper's evaluation
//!   (Section VI, Table I): five reconfigurable regions connected in a chain
//!   by a 64-bit bus, plus the SDR2/SDR3 relocation variants.
//! * [`generator`] — reproducible synthetic workloads and devices for the
//!   scaling and ablation benchmarks.
//! * [`defrag`] — Fekete-style online defragmentation traces for the
//!   `rfp-runtime` simulator, plus the deterministic CI-smoke scenario.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod defrag;
pub mod generator;
pub mod sdr;

pub use defrag::{smoke_scenario, smoke_scenario_json, DefragWorkloadSpec};
pub use generator::{SyntheticWorkload, WorkloadSpec};
pub use sdr::{
    sdr2_problem, sdr3_problem, sdr_problem, sdr_problem_json, sdr_region_table, SdrRegionRow,
};
