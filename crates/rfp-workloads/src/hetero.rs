//! Heterogeneous fabric device families and their golden instances.
//!
//! The paper's evaluation runs on a columnar Virtex-5, but modern fabrics
//! (Zynq, UltraScale) break the columnar assumption: BRAM/DSP columns are
//! interrupted by hard blocks, the resource pattern varies between clock
//! regions, and multi-die (SSI) devices add boundaries a partial bitstream
//! cannot be relocated across. [`HeteroDeviceSpec`] generates reproducible
//! devices of that shape — row-striped special columns, an optional hard
//! block, die-boundary rows — for the scaling studies and the CI
//! `hetero-smoke` job.
//!
//! Two pinned instances live here:
//!
//! * [`hetero_golden_problem`] — the static floorplanning instance committed
//!   as `tests/golden/hetero.problem.{json,rfpb}`, sized so every registered
//!   engine (including the exact MILP on its per-cell assignment model)
//!   solves it in CI.
//! * [`hetero_smoke_scenario`] — the online defragmentation trace committed
//!   as `tests/golden/hetero.scenario.{json,rfpb}`. Its die boundaries are
//!   placed so every module tall enough to be worth moving spans one, which
//!   guarantees the simulator exercises (and counts, via the
//!   `runtime.die_crossing_rejections` counter) the relocation-refused →
//!   regenerate fallback.

use rfp_device::{
    fabric_partition_with_boundaries, Device, FabricPartition, ForbiddenArea, Rect, ResourceVec,
    TileGrid, TileType, TileTypeRegistry,
};
use rfp_floorplan::{FloorplanProblem, RegionSpec, RelocationRequest};
use rfp_runtime::Scenario;
use serde::{Deserialize, Serialize};

/// Specification of a heterogeneous fabric device.
///
/// Columns default to CLB; every `bram_every`-th column carries BRAM tiles in
/// alternating row stripes of height `bram_stripe` (stripe, gap, stripe, …
/// starting at row 1). A stripe shorter than the device makes the column
/// non-uniform, so the device has no columnar partition and exercises the
/// per-cell fabric paths end to end. `bram_stripe == 0` (or `>= rows`) keeps
/// the special columns uniform — the columnar special case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeteroDeviceSpec {
    /// Device columns.
    pub cols: u32,
    /// Device rows.
    pub rows: u32,
    /// Every `bram_every`-th column is a BRAM column (0 = all-CLB).
    pub bram_every: u32,
    /// Rows per BRAM stripe within a BRAM column (see type docs).
    pub bram_stripe: u32,
    /// Optional hard block: a forbidden `(w, h)` rectangle anchored at the
    /// device centre.
    pub hard_block: Option<(u32, u32)>,
    /// Die-boundary rows (boundary `r` separates rows `r` and `r + 1`).
    pub die_boundaries: Vec<u32>,
}

impl Default for HeteroDeviceSpec {
    fn default() -> Self {
        HeteroDeviceSpec {
            cols: 8,
            rows: 4,
            bram_every: 3,
            bram_stripe: 2,
            hard_block: None,
            die_boundaries: vec![2],
        }
    }
}

impl HeteroDeviceSpec {
    /// The generated device's name, derived from the spec fields.
    pub fn device_name(&self) -> String {
        format!("hetero-{}x{}-b{}s{}", self.cols, self.rows, self.bram_every, self.bram_stripe)
    }

    /// `true` when cell `(col, row)` (1-based) carries a BRAM tile.
    fn is_bram_cell(&self, col: u32, row: u32) -> bool {
        if self.bram_every == 0 || col % self.bram_every != 0 {
            return false;
        }
        if self.bram_stripe == 0 || self.bram_stripe >= self.rows {
            return true;
        }
        ((row - 1) / self.bram_stripe) % 2 == 0
    }

    /// Builds the device.
    ///
    /// # Panics
    /// Panics if the dimensions are degenerate (zero columns or rows) or the
    /// hard block does not fit on the device.
    pub fn build(&self) -> Device {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        // Register BRAM only when it actually appears on the grid, keeping
        // the registry minimal for byte-stable serialisation round trips.
        let bram = (self.bram_every > 0)
            .then(|| reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap());
        let mut grid = TileGrid::new(self.cols, self.rows).expect("non-degenerate dimensions");
        for col in 1..=self.cols {
            for row in 1..=self.rows {
                let ty = match bram {
                    Some(bram) if self.is_bram_cell(col, row) => bram,
                    _ => clb,
                };
                grid.set(col, row, Some(ty)).unwrap();
            }
        }
        let forbidden = self
            .hard_block
            .map(|(w, h)| {
                let x = (self.cols - w) / 2 + 1;
                let y = (self.rows - h) / 2 + 1;
                vec![ForbiddenArea::new("hard-block", Rect::new(x, y, w, h))]
            })
            .unwrap_or_default();
        Device::new(self.device_name(), reg, grid, forbidden).expect("spec builds a valid device")
    }

    /// Builds the device and partitions it into a fabric with the spec's die
    /// boundaries.
    ///
    /// # Panics
    /// Panics on degenerate dimensions or out-of-range die boundaries.
    pub fn partition(&self) -> FabricPartition {
        fabric_partition_with_boundaries(&self.build(), &self.die_boundaries)
            .expect("spec partitions into a fabric")
    }
}

/// Recovers the CLB and BRAM type ids of a [`HeteroDeviceSpec`] fabric by
/// frame weight (36/30), mirroring the SDR builder's convention.
fn clb_bram_types(
    partition: &FabricPartition,
) -> (rfp_device::TileTypeId, Option<rfp_device::TileTypeId>) {
    let mut clb = None;
    let mut bram = None;
    for &ty in partition.cell_types() {
        match partition.frames_per_tile(ty) {
            36 => clb = Some(ty),
            30 => bram = Some(ty),
            _ => {}
        }
    }
    (clb.expect("hetero devices always have CLB cells"), bram)
}

/// The golden heterogeneous floorplanning instance
/// (`tests/golden/hetero.problem.{json,rfpb}`).
///
/// An 8x4 fabric whose columns 3 and 6 are BRAM on rows 1-2 and CLB on rows
/// 3-4 (no columnar partition exists), with one die boundary between rows 2
/// and 3. Three regions: a relocatable all-CLB region with two
/// free-compatible areas requested in **metric** mode — the all-CLB band
/// below the boundary holds three disjoint compatible windows, so the
/// relocation-aware engines reserve both without crossing the boundary,
/// while the relocation-unaware baselines may legally (if expensively)
/// leave them unidentified and all five registry engines solve the
/// instance — plus a BRAM consumer and a second CLB region, chained by a
/// 16-bit bus. [`hetero_constraint_problem`] is the hard-constraint
/// variant.
pub fn hetero_golden_problem() -> FloorplanProblem {
    let mut problem = hetero_constraint_problem();
    problem.relocation.clear();
    problem.request_relocation(RelocationRequest::metric(0, 2, 4.0));
    problem
}

/// [`hetero_golden_problem`] with the relocation request as a hard
/// constraint: only the relocation-aware engines (`milp`, `ho`,
/// `combinatorial`) can solve it — the baselines refuse by design.
pub fn hetero_constraint_problem() -> FloorplanProblem {
    let partition = HeteroDeviceSpec::default().partition();
    let (clb, bram) = clb_bram_types(&partition);
    let bram = bram.expect("default hetero spec has BRAM stripes");
    let mut problem = FloorplanProblem::new(partition);
    // A nonzero relocation weight prices unreserved metric-mode areas, so
    // the relocation-aware engines have a reason to reserve them.
    problem.weights.relocation = 4.0;
    let a = problem.add_region(RegionSpec::new("FIR", vec![(clb, 4)]));
    let b = problem.add_region(RegionSpec::new("FFT", vec![(clb, 2), (bram, 2)]));
    let c = problem.add_region(RegionSpec::new("CTRL", vec![(clb, 4)]));
    problem.connect(a, b, 16.0);
    problem.connect(b, c, 16.0);
    problem.request_relocation(RelocationRequest::constraint(a, 2));
    problem
}

/// [`hetero_golden_problem`] as an `rfp-problem` v2 JSON document.
pub fn hetero_problem_json() -> String {
    rfp_floorplan::jsonio::write_problem(&hetero_golden_problem())
}

/// The golden heterogeneous defragmentation trace
/// (`tests/golden/hetero.scenario.{json,rfpb}`).
///
/// A narrow 4x8 fabric — column 3 carries BRAM on the odd rows, so no
/// columnar partition exists — whose die boundaries sit after *every* row:
/// any rectangle taller than one row spans a boundary. No single row holds
/// more than four CLBs, so the 5-CLB fillers place at height >= 2 and every
/// defragmentation move of one is refused relocation
/// (`CompatReport::CrossesDieBoundary`) and falls back to regeneration —
/// the path the `runtime.die_crossing_rejections` counter (and the CI
/// `hetero-smoke` grep) pins.
///
/// The stream itself mirrors the columnar smoke scenario: four fillers pack
/// the fabric, alternating departures shatter the free space, and a 9-CLB
/// arrival forces the planner to relocate a survivor before it fits. Under
/// the relocation-aware policy that is a single forced (and counted)
/// resynthesis move; the oblivious baseline left-compacts and pays for
/// three.
pub fn hetero_smoke_scenario() -> Scenario {
    let spec = HeteroDeviceSpec {
        cols: 4,
        rows: 8,
        bram_every: 3,
        bram_stripe: 1,
        hard_block: None,
        die_boundaries: vec![1, 2, 3, 4, 5, 6, 7],
    };
    let partition = spec.partition();
    let (clb, _) = clb_bram_types(&partition);
    let mut s = Scenario::new("hetero-smoke", partition);
    let fillers: Vec<_> =
        (0..4).map(|i| s.add_module(RegionSpec::new(format!("F{i}"), vec![(clb, 5)]))).collect();
    let big = s.add_module(RegionSpec::new("BIG", vec![(clb, 9)]));
    let tail = s.add_module(RegionSpec::new("TAIL", vec![(clb, 3)]));
    for (i, &f) in fillers.iter().enumerate() {
        s.arrive(i as u64, f);
    }
    s.depart(4, fillers[0]);
    s.depart(5, fillers[2]);
    s.checkpoint(6);
    s.arrive(7, big); // fits only after a (die-crossing) relocation
    s.checkpoint(8);
    s.depart(9, fillers[1]);
    s.arrive(10, tail);
    s.checkpoint(11);
    s
}

/// The hetero smoke scenario as an `rfp-scenario` v2 JSON document.
pub fn hetero_scenario_json() -> String {
    rfp_runtime::write_scenario(&hetero_smoke_scenario())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::columnar_partition;

    #[test]
    fn striped_devices_are_not_columnar() {
        let spec = HeteroDeviceSpec::default();
        assert!(columnar_partition(&spec.build()).is_err());
        let p = spec.partition();
        assert!(p.columnar().is_none());
        assert!(!p.is_columnar_legacy());
        assert_eq!(p.die_boundaries, vec![2]);
        // Column 3, rows 1-2 are the BRAM stripe; rows 3-4 revert to CLB.
        assert_eq!(p.frames_per_tile(p.tile_type_at(3, 1).unwrap()), 30);
        assert_eq!(p.frames_per_tile(p.tile_type_at(3, 3).unwrap()), 36);
    }

    #[test]
    fn uniform_stripes_keep_the_columnar_special_case() {
        let spec = HeteroDeviceSpec {
            bram_stripe: 0,
            die_boundaries: vec![],
            ..HeteroDeviceSpec::default()
        };
        let p = spec.partition();
        assert!(p.is_columnar_legacy(), "uniform special columns stay columnar");
    }

    #[test]
    fn hard_blocks_are_centred_and_forbidden() {
        let spec = HeteroDeviceSpec { hard_block: Some((2, 2)), ..HeteroDeviceSpec::default() };
        let p = spec.partition();
        assert_eq!(p.forbidden.len(), 1);
        assert_eq!(p.forbidden[0].rect, Rect::new(4, 2, 2, 2));
        assert!(!p.placement_legal(&Rect::new(4, 2, 1, 1)));
    }

    #[test]
    fn golden_problem_is_valid_and_requests_relocation() {
        for p in [hetero_golden_problem(), hetero_constraint_problem()] {
            assert!(p.validate().is_ok(), "{:?}", p.validate());
            assert_eq!(p.regions.len(), 3);
            assert_eq!(p.relocation.len(), 1);
            assert_eq!(p.n_fc_areas(), 2);
            assert!(!p.partition.is_columnar_legacy());
        }
    }

    #[test]
    fn smoke_scenario_is_valid_and_every_tall_rect_crosses_a_die() {
        let s = hetero_smoke_scenario();
        assert!(s.validate().is_empty(), "{:?}", s.validate());
        assert_eq!(s.n_arrivals(), 6);
        let p = &s.partition;
        // A boundary after every row: height-2 rects cross wherever they sit,
        // single-row rects never do.
        for y in 1..=7 {
            assert!(p.rect_crosses_die_boundary(&Rect::new(1, y, 3, 2)));
        }
        assert!(!p.rect_crosses_die_boundary(&Rect::new(1, 4, 4, 1)));
        // No single row holds a 5-CLB filler, so every placement is >= 2
        // rows tall and every move of one is refused relocation.
        let (clb, _) = clb_bram_types(p);
        for y in 1..=8 {
            let clbs = (1..=4).filter(|&x| p.tile_type_at(x, y) == Some(clb)).count();
            assert!(clbs < 5, "row {y} holds {clbs} CLBs");
        }
    }
}
