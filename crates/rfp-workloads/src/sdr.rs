//! The software-defined-radio (SDR) case study of Section VI.
//!
//! The SDR design (originally from the evaluation of [8]) consists of five
//! modules — matched filter, carrier recovery, demodulator, signal decoder
//! and video decoder — each implemented as a reconfigurable region with
//! mutually-exclusive modes, connected in sequential order by a 64-bit bus.
//! Table I of the paper gives the per-region tile requirements reproduced by
//! [`sdr_region_table`]; [`sdr_problem`] instantiates them on the Virtex-5
//! FX70T device model.
//!
//! The relocation variants of the evaluation are:
//!
//! * **SDR2** — two free-compatible areas requested (as constraints) for each
//!   *relocatable* region (carrier recovery, demodulator, signal decoder);
//! * **SDR3** — three free-compatible areas per relocatable region.

use rfp_device::{columnar_partition, xc5vfx70t, ColumnarPartition};
use rfp_floorplan::{FloorplanProblem, RegionSpec, RelocationRequest};
use serde::{Deserialize, Serialize};

/// Width of the bus connecting consecutive SDR modules.
pub const SDR_BUS_WIDTH: f64 = 64.0;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdrRegionRow {
    /// Region name.
    pub name: &'static str,
    /// CLB tiles required.
    pub clb_tiles: u32,
    /// BRAM tiles required.
    pub bram_tiles: u32,
    /// DSP tiles required.
    pub dsp_tiles: u32,
    /// Minimum configuration frames (last column of Table I).
    pub frames: u64,
}

/// The five rows of Table I (resource requirements of the SDR design).
pub fn sdr_region_table() -> Vec<SdrRegionRow> {
    vec![
        SdrRegionRow {
            name: "Matched Filter",
            clb_tiles: 25,
            bram_tiles: 0,
            dsp_tiles: 5,
            frames: 1040,
        },
        SdrRegionRow {
            name: "Carrier Recovery",
            clb_tiles: 7,
            bram_tiles: 0,
            dsp_tiles: 1,
            frames: 280,
        },
        SdrRegionRow {
            name: "Demodulator",
            clb_tiles: 5,
            bram_tiles: 2,
            dsp_tiles: 0,
            frames: 240,
        },
        SdrRegionRow {
            name: "Signal Decoder",
            clb_tiles: 12,
            bram_tiles: 1,
            dsp_tiles: 0,
            frames: 462,
        },
        SdrRegionRow {
            name: "Video Decoder",
            clb_tiles: 55,
            bram_tiles: 2,
            dsp_tiles: 5,
            frames: 2180,
        },
    ]
}

/// Names of the *relocatable* regions identified by the paper's feasibility
/// analysis (the regions for which a free-compatible area exists on the
/// FX70T).
pub const RELOCATABLE_REGIONS: [&str; 3] = ["Carrier Recovery", "Demodulator", "Signal Decoder"];

/// Builds the SDR floorplanning problem (no relocation requests) on the
/// Virtex-5 FX70T model, with the five regions connected in a chain by a
/// 64-bit bus and the paper's lexicographic objective (wasted area first,
/// then wire length).
pub fn sdr_problem() -> FloorplanProblem {
    sdr_problem_on(columnar_partition(&xc5vfx70t()).expect("FX70T is columnar"))
}

/// Builds the SDR problem on an arbitrary columnar device (used by the
/// scaling benchmarks on reduced devices). The device must expose tile types
/// named `CLB`, `BRAM` and `DSP`.
pub fn sdr_problem_on(partition: ColumnarPartition) -> FloorplanProblem {
    // Recover the tile-type ids by name through the portions' tile types:
    // the workload crate does not hold the device, only its partition, so we
    // identify types via their frame weights (36/30/28), which is how the
    // paper's Table I distinguishes them as well.
    let mut clb = None;
    let mut bram = None;
    let mut dsp = None;
    for portion in &partition.portions {
        let ty = portion.tile_type;
        match partition.frames_per_tile(ty) {
            36 => clb = Some(ty),
            30 => bram = Some(ty),
            28 => dsp = Some(ty),
            _ => {}
        }
    }
    let clb = clb.expect("device must expose CLB columns (36 frames/tile)");
    let bram = bram.expect("device must expose BRAM columns (30 frames/tile)");
    let dsp = dsp.expect("device must expose DSP columns (28 frames/tile)");

    let mut problem = FloorplanProblem::new(partition);
    let mut ids = Vec::new();
    for row in sdr_region_table() {
        let spec = RegionSpec::new(
            row.name,
            vec![(clb, row.clb_tiles), (bram, row.bram_tiles), (dsp, row.dsp_tiles)],
        );
        ids.push(problem.add_region(spec));
    }
    problem.connect_chain(&ids, SDR_BUS_WIDTH);
    problem
}

/// Adds `count` constraint-mode free-compatible areas for every relocatable
/// region of an SDR problem.
pub fn with_relocation_constraints(mut problem: FloorplanProblem, count: u32) -> FloorplanProblem {
    let relocatable: Vec<usize> = problem
        .regions
        .iter()
        .enumerate()
        .filter(|(_, r)| RELOCATABLE_REGIONS.contains(&r.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    for region in relocatable {
        problem.request_relocation(RelocationRequest::constraint(region, count));
    }
    problem
}

/// The SDR2 instance: two free-compatible areas per relocatable region
/// (6 areas in total).
pub fn sdr2_problem() -> FloorplanProblem {
    with_relocation_constraints(sdr_problem(), 2)
}

/// The SDR3 instance: three free-compatible areas per relocatable region
/// (9 areas in total).
pub fn sdr3_problem() -> FloorplanProblem {
    with_relocation_constraints(sdr_problem(), 3)
}

/// The SDR instance with `fc_per_region` constraint-mode areas per
/// relocatable region (0 = plain SDR, 2 = SDR2, 3 = SDR3), rendered as an
/// `rfp-problem` v1 JSON document ([`rfp_floorplan::jsonio`]). This is what
/// `rfp convert sdr|sdr2|sdr3` emits and what the golden files under
/// `tests/golden/` pin.
pub fn sdr_problem_json(fc_per_region: u32) -> String {
    let problem = if fc_per_region == 0 {
        sdr_problem()
    } else {
        with_relocation_constraints(sdr_problem(), fc_per_region)
    };
    rfp_floorplan::jsonio::write_problem(&problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_the_paper() {
        let rows = sdr_region_table();
        let clb: u32 = rows.iter().map(|r| r.clb_tiles).sum();
        let bram: u32 = rows.iter().map(|r| r.bram_tiles).sum();
        let dsp: u32 = rows.iter().map(|r| r.dsp_tiles).sum();
        let frames: u64 = rows.iter().map(|r| r.frames).sum();
        assert_eq!(clb, 104);
        assert_eq!(bram, 5);
        assert_eq!(dsp, 11);
        assert_eq!(frames, 4202);
    }

    #[test]
    fn per_row_frames_are_consistent_with_tile_weights() {
        for row in sdr_region_table() {
            let computed =
                row.clb_tiles as u64 * 36 + row.bram_tiles as u64 * 30 + row.dsp_tiles as u64 * 28;
            assert_eq!(computed, row.frames, "row {}", row.name);
        }
    }

    #[test]
    fn sdr_problem_reproduces_table1_on_the_fx70t() {
        let p = sdr_problem();
        assert_eq!(p.regions.len(), 5);
        assert_eq!(p.connections.len(), 4, "chain of five modules");
        assert_eq!(p.total_required_frames(), 4202);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn sdr_json_variants_round_trip_to_equal_problems() {
        for (fc, expected) in [(0u32, sdr_problem()), (2, sdr2_problem()), (3, sdr3_problem())] {
            let doc = sdr_problem_json(fc);
            let back = rfp_floorplan::jsonio::read_problem(&doc).unwrap();
            assert_eq!(back, expected, "fc_per_region = {fc}");
        }
    }

    #[test]
    fn sdr2_and_sdr3_request_areas_for_relocatable_regions_only() {
        let sdr2 = sdr2_problem();
        assert_eq!(sdr2.relocation.len(), 3);
        assert_eq!(sdr2.n_fc_areas(), 6);
        let sdr3 = sdr3_problem();
        assert_eq!(sdr3.n_fc_areas(), 9);
        for req in &sdr2.relocation {
            let name = &sdr2.regions[req.region].name;
            assert!(RELOCATABLE_REGIONS.contains(&name.as_str()));
        }
    }
}
