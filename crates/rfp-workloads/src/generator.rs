//! Reproducible synthetic workloads for scaling and ablation studies.
//!
//! The paper evaluates a single case study; the benchmark harness
//! additionally sweeps device sizes, region counts and relocation demands to
//! study how the floorplanner's cost and runtime scale. All randomness is
//! seeded, so a given [`WorkloadSpec`] always produces the same instance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_device::{fabric_partition, FabricPartition, SyntheticSpec};
use rfp_floorplan::{FloorplanProblem, RegionSpec, RelocationRequest};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic floorplanning workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// RNG seed (two specs with the same fields generate identical
    /// instances).
    pub seed: u64,
    /// Device description.
    pub device: SyntheticSpec,
    /// Number of reconfigurable regions.
    pub n_regions: usize,
    /// Fraction of the device's usable tiles consumed by all regions
    /// together (0.0 - 1.0); controls how tight the instance is.
    pub utilisation: f64,
    /// Fraction of regions that require BRAM tiles.
    pub bram_fraction: f64,
    /// Fraction of regions that require DSP tiles.
    pub dsp_fraction: f64,
    /// Connect consecutive regions in a chain with this bus width (0 disables
    /// connections).
    pub bus_width: f64,
    /// Free-compatible areas requested (as constraints) per region, applied
    /// to the first `relocatable_regions` regions.
    pub fc_per_region: u32,
    /// Number of regions that receive relocation requests.
    pub relocatable_regions: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 42,
            device: SyntheticSpec::default(),
            n_regions: 4,
            utilisation: 0.4,
            bram_fraction: 0.5,
            dsp_fraction: 0.25,
            bus_width: 32.0,
            fc_per_region: 0,
            relocatable_regions: 0,
        }
    }
}

/// A generated workload: the problem plus bookkeeping about how it was made.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// The generated problem.
    pub problem: FloorplanProblem,
    /// The spec it was generated from.
    pub spec: WorkloadSpec,
}

impl SyntheticWorkload {
    /// The generated problem as an `rfp-problem` v1 JSON document
    /// ([`rfp_floorplan::jsonio`]), ready for `rfp solve`.
    pub fn problem_json(&self) -> String {
        rfp_floorplan::jsonio::write_problem(&self.problem)
    }
}

impl WorkloadSpec {
    /// Generates the workload.
    ///
    /// # Panics
    /// Panics if the device specification cannot be built or partitioned
    /// (this only happens for degenerate dimensions).
    pub fn generate(&self) -> SyntheticWorkload {
        let device = self.device.build().expect("synthetic device must build");
        let partition = fabric_partition(&device).expect("synthetic device partitions");
        let problem = self.generate_on(partition);
        SyntheticWorkload { problem, spec: self.clone() }
    }

    /// Generates the workload on an existing partition (used to sweep
    /// workload parameters on a fixed device). The partition may be any
    /// fabric — columnar or heterogeneous.
    pub fn generate_on(&self, partition: impl Into<FabricPartition>) -> FloorplanProblem {
        let partition = partition.into();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Identify tile types by frame weight, as in the SDR builder.
        let mut clb = None;
        let mut bram = None;
        let mut dsp = None;
        for &ty in partition.cell_types() {
            match partition.frames_per_tile(ty) {
                36 => clb = Some(ty),
                30 => bram = Some(ty),
                28 => dsp = Some(ty),
                _ => {}
            }
        }
        let clb = clb.expect("synthetic devices always have CLB columns");

        let totals = partition.total_resources();
        let total_clb = totals[rfp_device::ResourceKind::Clb] as f64;
        let total_bram = totals[rfp_device::ResourceKind::Bram] as f64;
        let total_dsp = totals[rfp_device::ResourceKind::Dsp] as f64;

        let mut problem = FloorplanProblem::new(partition);
        let n = self.n_regions.max(1);
        let clb_budget = (total_clb * self.utilisation).max(n as f64);
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            // Split the CLB budget unevenly but deterministically.
            let share = rng.gen_range(0.5..1.5) / n as f64;
            let clb_tiles = ((clb_budget * share).round() as u32).max(1);
            let mut req = vec![(clb, clb_tiles)];
            if let Some(bram_ty) = bram {
                if rng.gen_bool(self.bram_fraction.clamp(0.0, 1.0)) && total_bram >= 1.0 {
                    let max_bram = (total_bram * self.utilisation / n as f64).ceil().max(1.0);
                    req.push((bram_ty, rng.gen_range(1..=max_bram as u32)));
                }
            }
            if let Some(dsp_ty) = dsp {
                if rng.gen_bool(self.dsp_fraction.clamp(0.0, 1.0)) && total_dsp >= 1.0 {
                    let max_dsp = (total_dsp * self.utilisation / n as f64).ceil().max(1.0);
                    req.push((dsp_ty, rng.gen_range(1..=max_dsp as u32)));
                }
            }
            ids.push(problem.add_region(RegionSpec::new(format!("R{i}"), req)));
        }
        if self.bus_width > 0.0 {
            problem.connect_chain(&ids, self.bus_width);
        }
        for &region in ids.iter().take(self.relocatable_regions) {
            if self.fc_per_region > 0 {
                problem
                    .request_relocation(RelocationRequest::constraint(region, self.fc_per_region));
            }
        }
        problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let a = spec.generate().problem;
        let b = spec.generate().problem;
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.connections, b.connections);
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let a = WorkloadSpec { seed: 1, ..WorkloadSpec::default() }.generate().problem;
        let b = WorkloadSpec { seed: 2, ..WorkloadSpec::default() }.generate().problem;
        assert_ne!(a.regions, b.regions);
    }

    #[test]
    fn region_count_and_connections_follow_the_spec() {
        let spec = WorkloadSpec { n_regions: 6, bus_width: 16.0, ..WorkloadSpec::default() };
        let p = spec.generate().problem;
        assert_eq!(p.regions.len(), 6);
        assert_eq!(p.connections.len(), 5);
        assert!(p.validate().is_ok(), "generated workloads must be structurally valid");
    }

    #[test]
    fn relocation_requests_follow_the_spec() {
        let spec =
            WorkloadSpec { fc_per_region: 2, relocatable_regions: 2, ..WorkloadSpec::default() };
        let p = spec.generate().problem;
        assert_eq!(p.relocation.len(), 2);
        assert_eq!(p.n_fc_areas(), 4);
    }

    #[test]
    fn generated_workloads_round_trip_through_the_json_format() {
        let w =
            WorkloadSpec { fc_per_region: 1, relocatable_regions: 2, ..WorkloadSpec::default() }
                .generate();
        let doc = w.problem_json();
        let back = rfp_floorplan::jsonio::read_problem(&doc).unwrap();
        assert_eq!(back, w.problem);
    }

    #[test]
    fn utilisation_scales_requirements() {
        let low = WorkloadSpec { utilisation: 0.2, ..WorkloadSpec::default() }.generate().problem;
        let high = WorkloadSpec { utilisation: 0.7, ..WorkloadSpec::default() }.generate().problem;
        assert!(high.total_required_frames() > low.total_required_frames());
    }
}
