//! Fekete-style defragmentation traces for the online simulator.
//!
//! "Defragmenting the Module Layout of a Partially Reconfigurable Device"
//! and "No-Break Dynamic Defragmentation of Reconfigurable Devices" (Fekete
//! et al.) evaluate module layouts on *event streams*: modules arrive with a
//! lifetime, depart, and the free space slowly shatters until a large
//! arrival forces the layout to be compacted. [`DefragWorkloadSpec`]
//! generates reproducible streams of that shape for
//! [`rfp_runtime::simulate`]; [`smoke_scenario`] is the small deterministic
//! instance pinned as `tests/golden/smoke.scenario.json` and run by the CI
//! `sim-smoke` job.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_device::{columnar_partition, DeviceBuilder, FabricPartition, ResourceVec, TileTypeId};
use rfp_floorplan::RegionSpec;
use rfp_runtime::Scenario;

use crate::hetero::HeteroDeviceSpec;

/// Specification of a synthetic defragmentation trace.
///
/// The device is built from scratch (rather than through
/// [`rfp_device::SyntheticSpec`]) so that only the tile types that actually
/// appear on it are registered — a requirement for byte-stable
/// `rfp-scenario` round trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefragWorkloadSpec {
    /// RNG seed; equal specs generate identical scenarios.
    pub seed: u64,
    /// Device columns.
    pub cols: u32,
    /// Device rows.
    pub rows: u32,
    /// Every `bram_every`-th column is a BRAM column (0 keeps the device
    /// all-CLB — a fully relocatable layout).
    pub bram_every: u32,
    /// Number of module instances in the stream.
    pub n_modules: usize,
    /// Smallest module requirement, in CLB tiles.
    pub min_tiles: u32,
    /// Largest module requirement, in CLB tiles.
    pub max_tiles: u32,
    /// Mean lifetime in logical time units (actual lifetimes are drawn
    /// uniformly from `mean_lifetime/2 ..= mean_lifetime*3/2`).
    pub mean_lifetime: u64,
    /// Insert a checkpoint every this many events (0 disables; a final
    /// checkpoint is always appended).
    pub checkpoint_every: usize,
    /// Generate the trace on a **heterogeneous fabric** instead of the
    /// columnar device: BRAM columns are striped (BRAM on odd rows only, so
    /// no columnar partition exists when `bram_every > 0`) and a die
    /// boundary splits the device at mid-height, making tall relocations
    /// fall back to regeneration. `false` keeps the original columnar
    /// device byte-for-byte.
    pub hetero: bool,
}

impl Default for DefragWorkloadSpec {
    fn default() -> Self {
        DefragWorkloadSpec {
            seed: 42,
            cols: 16,
            rows: 3,
            bram_every: 0,
            n_modules: 12,
            min_tiles: 3,
            max_tiles: 9,
            mean_lifetime: 6,
            checkpoint_every: 6,
            hetero: false,
        }
    }
}

impl DefragWorkloadSpec {
    /// A **high-utilisation** trace: modules are large relative to the
    /// device and live long, so many run concurrently and the free space
    /// rarely holds both buffers of a double-buffered move at once. This is
    /// the stress regime for the `no_break` policy — shadows are scarce, so
    /// its planner must chain and bounce moves (and the executor's
    /// stop-and-move fallback, with its non-zero downtime, actually gets
    /// exercised).
    pub fn high_utilisation(seed: u64) -> Self {
        DefragWorkloadSpec {
            seed,
            cols: 20,
            rows: 2,
            bram_every: 0,
            n_modules: 12,
            min_tiles: 5,
            max_tiles: 10,
            mean_lifetime: 10,
            checkpoint_every: 6,
            hetero: false,
        }
    }

    /// The device partition this spec generates its trace on, plus the CLB
    /// and (optional) BRAM tile-type ids of its registry.
    fn device_partition(&self) -> (FabricPartition, TileTypeId, Option<TileTypeId>) {
        if self.hetero {
            let spec = HeteroDeviceSpec {
                cols: self.cols,
                rows: self.rows,
                bram_every: self.bram_every,
                bram_stripe: 1,
                hard_block: None,
                die_boundaries: if self.rows >= 2 { vec![self.rows / 2] } else { vec![] },
            };
            let partition = spec.partition();
            let mut clb = None;
            let mut bram = None;
            for &ty in partition.cell_types() {
                match partition.frames_per_tile(ty) {
                    36 => clb = Some(ty),
                    30 => bram = Some(ty),
                    _ => {}
                }
            }
            (partition, clb.expect("hetero devices always have CLB cells"), bram)
        } else {
            let mut b = DeviceBuilder::new(format!("defrag-{}x{}", self.cols, self.rows));
            let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
            let bram =
                (self.bram_every > 0).then(|| b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30));
            b.rows(self.rows);
            for c in 1..=self.cols {
                match bram {
                    Some(bram) if c % self.bram_every == 0 => b.column(bram),
                    _ => b.column(clb),
                };
            }
            let device = b.build().expect("defrag workload device must build");
            let partition =
                columnar_partition(&device).expect("single-type columns are columnar");
            (partition.into(), clb, bram)
        }
    }

    /// Generates the scenario.
    ///
    /// Arrivals are spaced 1-2 time units apart; each instance departs after
    /// its lifetime. Departures at a timestamp precede arrivals at the same
    /// timestamp, so freed space is visible to the incoming module.
    ///
    /// # Panics
    /// Panics if the device dimensions are degenerate (zero columns/rows).
    pub fn generate(&self) -> Scenario {
        let (partition, clb, bram) = self.device_partition();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xDEF2A6);

        let mut scenario =
            Scenario::new(format!("defrag-{}x{}-{}", self.cols, self.rows, self.seed), partition);
        let lo = self.min_tiles.max(1);
        let hi = self.max_tiles.max(lo);
        // (time, is_departure, module): departures sort before arrivals at
        // the same timestamp.
        let mut timeline: Vec<(u64, bool, usize)> = Vec::new();
        let mut t = 0u64;
        for i in 0..self.n_modules {
            let tiles = rng.gen_range(lo..=hi);
            let mut req = vec![(clb, tiles)];
            if let Some(bram) = bram {
                // A quarter of the modules also need one BRAM tile, which
                // pins their relocation targets to the BRAM period.
                if rng.gen_bool(0.25) {
                    req.push((bram, 1));
                }
            }
            let id = scenario.add_module(RegionSpec::new(format!("M{i}"), req));
            timeline.push((t, false, id));
            // `mean_lifetime: 0` is clamped to 1 so the sample range is
            // never empty.
            let mean = self.mean_lifetime.max(1);
            let lifetime = rng.gen_range((mean / 2).max(1)..=(mean * 3 / 2).max(1));
            timeline.push((t + lifetime, true, id));
            t += rng.gen_range(1u64..=2);
        }
        timeline.sort_by_key(|&(t, depart, id)| (t, !depart, id));
        for (i, &(time, depart, id)) in timeline.iter().enumerate() {
            if depart {
                scenario.depart(time, id);
            } else {
                scenario.arrive(time, id);
            }
            if self.checkpoint_every > 0 && (i + 1) % self.checkpoint_every == 0 {
                scenario.checkpoint(time);
            }
        }
        let end = timeline.last().map(|&(t, ..)| t).unwrap_or(0);
        scenario.checkpoint(end);
        debug_assert!(scenario.validate().is_empty(), "{:?}", scenario.validate());
        scenario
    }
}

/// The deterministic CI-smoke scenario (golden file
/// `tests/golden/smoke.scenario.json`).
///
/// A 12x2 all-CLB device is filled with four 6-tile modules; two alternating
/// departures shatter the free space into islands, and a 10-tile arrival
/// then forces a defragmentation: the relocation-aware planner frees a
/// window with a single compatible move, while the oblivious baseline
/// left-compacts every survivor — the gap the acceptance test pins.
pub fn smoke_scenario() -> Scenario {
    let mut b = DeviceBuilder::new("smoke-12x2");
    let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
    b.rows(2).repeat_column(clb, 12);
    let partition = columnar_partition(&b.build().unwrap()).unwrap();
    let mut s = Scenario::new("defrag-smoke", partition);
    let fillers: Vec<_> =
        (0..4).map(|i| s.add_module(RegionSpec::new(format!("F{i}"), vec![(clb, 6)]))).collect();
    let big = s.add_module(RegionSpec::new("BIG", vec![(clb, 10)]));
    let tail = s.add_module(RegionSpec::new("TAIL", vec![(clb, 4)]));
    for (i, &f) in fillers.iter().enumerate() {
        s.arrive(i as u64, f);
    }
    s.depart(4, fillers[0]);
    s.depart(5, fillers[2]);
    s.checkpoint(6);
    s.arrive(7, big); // fits only after defragmentation
    s.checkpoint(8);
    s.depart(9, fillers[1]);
    s.arrive(10, tail);
    s.checkpoint(11);
    s
}

/// The smoke scenario as an `rfp-scenario` v1 JSON document.
pub fn smoke_scenario_json() -> String {
    rfp_runtime::write_scenario(&smoke_scenario())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_runtime::{simulate, DefragPolicy, OnlineConfig};

    #[test]
    fn generation_is_deterministic_and_valid() {
        let spec = DefragWorkloadSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert!(a.validate().is_empty(), "{:?}", a.validate());
        assert_eq!(a.n_arrivals(), spec.n_modules);
        let other = DefragWorkloadSpec { seed: 7, ..spec }.generate();
        assert_ne!(a.modules, other.modules);
    }

    #[test]
    fn generated_traces_round_trip_through_the_scenario_format() {
        let s = DefragWorkloadSpec::default().generate();
        let doc = rfp_runtime::write_scenario(&s);
        let back = rfp_runtime::read_scenario(&doc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn generated_traces_simulate_cleanly_under_all_policies() {
        let spec = DefragWorkloadSpec { n_modules: 8, ..DefragWorkloadSpec::default() };
        let s = spec.generate();
        for policy in DefragPolicy::ALL {
            let config = OnlineConfig { policy, ..OnlineConfig::default() };
            let report = simulate(&s, &config).unwrap();
            assert_eq!(report.violations(), 0, "{policy:?}: {report:#?}");
        }
    }

    #[test]
    fn high_utilisation_traces_keep_the_device_busy_and_stay_clean() {
        let spec = DefragWorkloadSpec::high_utilisation(3);
        let s = spec.generate();
        assert!(s.validate().is_empty(), "{:?}", s.validate());
        let device_tiles = u64::from(spec.cols) * u64::from(spec.rows);
        for policy in DefragPolicy::ALL {
            let config = OnlineConfig { policy, ..OnlineConfig::default() };
            let report = simulate(&s, &config).unwrap();
            assert_eq!(report.violations(), 0, "{policy:?}: {report:#?}");
            // The trace must actually reach high utilisation: at some point
            // at most a third of the device is free.
            let min_free = report.events.iter().map(|e| e.free_tiles).min().unwrap();
            assert!(
                min_free <= device_tiles / 3,
                "{policy:?}: trace never fills the device (min free {min_free})"
            );
        }
        // Stop-and-move policies pay downtime for every frame they move.
        let aware = simulate(
            &s,
            &OnlineConfig { policy: DefragPolicy::RelocationAware, ..OnlineConfig::default() },
        )
        .unwrap();
        assert_eq!(aware.downtime_frames(), aware.frames_moved());
    }

    #[test]
    fn smoke_scenario_is_valid_and_fragments_on_schedule() {
        let s = smoke_scenario();
        assert!(s.validate().is_empty());
        assert_eq!(s.n_arrivals(), 6);
        assert!(smoke_scenario_json().contains("\"rfp-scenario\""));
    }
}
