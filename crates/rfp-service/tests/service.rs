//! Job-lifecycle, queue-semantics and cache tests for [`SolveService`].

use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
use rfp_floorplan::engine::{
    CancelToken, EngineRegistry, EngineStats, FloorplanEngine, OutcomeStatus, SolveControl,
    SolveOutcome, SolveRequest,
};
use rfp_floorplan::problem::{FloorplanProblem, ObjectiveWeights, RegionSpec};
use rfp_service::{CacheDisposition, EngineChoice, JobSpec, JobState, ServiceConfig, SolveService};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tiny_problem() -> FloorplanProblem {
    let mut b = DeviceBuilder::new("service-tiny");
    let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
    let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
    b.rows(3).columns(&[clb, clb, bram, clb, clb]);
    let mut p = FloorplanProblem::new(columnar_partition(&b.build().unwrap()).unwrap());
    p.weights = ObjectiveWeights::area_only();
    p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
    p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
    p
}

/// A problem near `tiny_problem`: same device, one extra region.
fn near_problem() -> FloorplanProblem {
    let mut p = tiny_problem();
    let clb = p.partition.tile_type_at(1, 1).unwrap();
    p.add_region(RegionSpec::new("C", vec![(clb, 1)]));
    p
}

fn single_worker(registry: EngineRegistry) -> SolveService {
    SolveService::new(registry, ServiceConfig { workers: 1, ..ServiceConfig::default() })
}

/// An engine that records its dispatch order and spins until cancelled or
/// released — the controllable stand-in for a long solve.
struct Gate {
    order: Arc<Mutex<Vec<String>>>,
    tag: String,
    hold: bool,
}

impl FloorplanEngine for Gate {
    fn id(&self) -> &'static str {
        "gate"
    }
    fn description(&self) -> &'static str {
        "test engine"
    }
    fn solve(&self, req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
        self.order.lock().unwrap().push(self.tag.clone());
        while self.hold && !ctl.cancel.is_cancelled() {
            std::thread::yield_now();
        }
        let mut stats = EngineStats::new("gate");
        stats.cancelled = ctl.cancel.is_cancelled();
        let _ = req;
        SolveOutcome::without_floorplan(OutcomeStatus::BudgetExhausted, "gate", stats)
    }
}

#[test]
fn priority_order_is_high_first_fifo_within() {
    // Deterministic variant: paused single-worker service, per-priority
    // engines that append their tag when dispatched.
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    struct Tagged {
        order: Arc<Mutex<Vec<String>>>,
        id: &'static str,
    }
    impl FloorplanEngine for Tagged {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "tagged"
        }
        fn solve(&self, _req: &SolveRequest, _ctl: &SolveControl) -> SolveOutcome {
            self.order.lock().unwrap().push(self.id.to_string());
            SolveOutcome::without_floorplan(
                OutcomeStatus::BudgetExhausted,
                "tag",
                EngineStats::new(self.id),
            )
        }
    }

    let mut registry = EngineRegistry::empty();
    for id in ["t-low", "t-high", "t-mid", "t-low2"] {
        registry.register(Arc::new(Tagged { order: order.clone(), id }));
    }
    let mut service = SolveService::new(
        registry,
        ServiceConfig { workers: 1, paused: true, cache: false, ..ServiceConfig::default() },
    );
    let spec = |engine: &str, prio: i32| {
        JobSpec::new(SolveRequest::new(tiny_problem()))
            .with_engine(EngineChoice::Engine(engine.to_string()))
            .with_priority(prio)
    };
    service.submit(spec("t-low", 0));
    service.submit(spec("t-high", 5));
    service.submit(spec("t-mid", 2));
    service.submit(spec("t-low2", 0));
    service.shutdown(); // opens the gate, drains, joins
    assert_eq!(
        *order.lock().unwrap(),
        vec!["t-high".to_string(), "t-mid".to_string(), "t-low".to_string(), "t-low2".to_string()]
    );
}

#[test]
fn queue_budget_expiry_reports_budget_exhausted_not_dropped() {
    let service = SolveService::new(
        EngineRegistry::builtin(),
        ServiceConfig { workers: 1, paused: true, ..ServiceConfig::default() },
    );
    let id = service.submit(
        JobSpec::new(SolveRequest::new(tiny_problem())).with_queue_budget(Duration::from_millis(0)),
    );
    // Let the zero budget expire while the service is still paused.
    std::thread::sleep(Duration::from_millis(5));
    service.start();
    let result = service.join(id).expect("an expired job must still be joinable");
    assert_eq!(result.outcome.status, OutcomeStatus::BudgetExhausted);
    assert_eq!(result.engine, "queue");
    assert!(result.outcome.detail.as_deref().unwrap().contains("queue budget"));
}

#[test]
fn cancel_before_dispatch_completes_the_job() {
    let service = SolveService::new(
        EngineRegistry::builtin(),
        ServiceConfig { workers: 1, paused: true, ..ServiceConfig::default() },
    );
    let id = service.submit(JobSpec::new(SolveRequest::new(tiny_problem())));
    assert_eq!(service.status(id).unwrap().state, JobState::Queued);
    assert!(service.cancel(id), "a queued job must be cancellable");
    let result = service.join(id).expect("cancelled jobs still complete");
    assert_eq!(result.outcome.status, OutcomeStatus::BudgetExhausted);
    assert!(result.outcome.stats.cancelled);
    assert!(result.outcome.detail.as_deref().unwrap().contains("before dispatch"));
    assert!(!service.cancel(id), "a done job reports cancel=false");
}

#[test]
fn running_job_can_be_status_polled_and_cancelled() {
    // The acceptance scenario: submit a long-running job, observe it
    // `Running` via status polling, cancel it, and see the engine wind down
    // through its CancelToken.
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut registry = EngineRegistry::empty();
    registry.register(Arc::new(Gate { order, tag: "long".to_string(), hold: true }));
    let token = CancelToken::new();
    let service = single_worker(registry);
    let mut spec = JobSpec::new(SolveRequest::new(tiny_problem()))
        .with_engine(EngineChoice::Engine("gate".to_string()));
    spec.cancel = Some(token.clone());
    let id = service.submit(spec);

    // Poll until the worker picks it up.
    while service.status(id).unwrap().state != JobState::Running {
        std::thread::yield_now();
    }
    assert!(service.result(id).is_none(), "no result while running");
    assert!(!token.is_cancelled());

    assert!(service.cancel(id), "a running job must be cancellable");
    assert!(token.is_cancelled(), "cancel must fire the job's CancelToken");
    let result = service.join(id).expect("the cancelled job completes");
    assert_eq!(service.status(id).unwrap().state, JobState::Done);
    assert!(result.outcome.stats.cancelled, "the engine observed the token");
}

#[test]
fn concurrent_submit_and_poll_from_many_threads() {
    let service = Arc::new(SolveService::new(
        EngineRegistry::builtin(),
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    ));
    let completed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let service = service.clone();
            let completed = completed.clone();
            scope.spawn(move || {
                for i in 0..3 {
                    let id = service.submit(
                        JobSpec::new(SolveRequest::new(tiny_problem())).with_priority((t + i) % 3),
                    );
                    // Interleave polling with other threads' submissions.
                    loop {
                        match service.status(id).unwrap().state {
                            JobState::Done => break,
                            _ => std::thread::yield_now(),
                        }
                    }
                    let result = service.result(id).expect("done implies result");
                    assert!(result.outcome.status.has_floorplan());
                    completed.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(completed.load(Ordering::SeqCst), 12);
    let (hits, _near, misses) = service.cache_counters();
    // 12 identical problems: the first solve misses, and every job that
    // started after it completed hits. At least one of each is guaranteed.
    assert!(misses >= 1);
    assert!(hits >= 1, "identical re-submissions must eventually hit the cache");
}

#[test]
fn identical_resubmission_is_served_from_the_cache() {
    let service = single_worker(EngineRegistry::builtin());
    let first = service.submit(JobSpec::new(SolveRequest::new(tiny_problem())));
    let r1 = service.join(first).unwrap();
    assert_eq!(r1.cache, CacheDisposition::Miss);
    assert!(r1.outcome.is_proven());

    let second = service.submit(JobSpec::new(SolveRequest::new(tiny_problem())));
    let r2 = service.join(second).unwrap();
    assert_eq!(r2.cache, CacheDisposition::Hit, "same fingerprint must hit");
    assert_eq!(r2.engine, "cache", "no engine may run for an exact proven hit");
    assert_eq!(r2.outcome.floorplan, r1.outcome.floorplan);
    // Status carries the fingerprint; both jobs digest identically.
    assert_eq!(
        service.status(first).unwrap().fingerprint.digest(),
        service.status(second).unwrap().fingerprint.digest()
    );
}

#[test]
fn near_problem_warm_starts_from_the_cache() {
    let service = single_worker(EngineRegistry::builtin());
    let base = service.submit(JobSpec::new(SolveRequest::new(tiny_problem())));
    assert!(service.join(base).unwrap().outcome.is_proven());

    let near = service.submit(JobSpec::new(SolveRequest::new(near_problem())));
    let r = service.join(near).unwrap();
    match r.cache {
        CacheDisposition::Warm { distance } => assert!(distance > 0),
        other => panic!("expected a warm near-hit, got {other:?}"),
    }
    assert!(r.outcome.status.has_floorplan(), "{:?}", r.outcome.detail);
    let (_, near_hits, _) = service.cache_counters();
    assert_eq!(near_hits, 1);
}

#[test]
fn cache_opt_out_always_solves_cold() {
    let service = single_worker(EngineRegistry::builtin());
    let mut spec = JobSpec::new(SolveRequest::new(tiny_problem()));
    spec.use_cache = false;
    let a = service.submit(spec.clone());
    let b = service.submit(spec);
    assert_eq!(service.join(a).unwrap().cache, CacheDisposition::Off);
    assert_eq!(service.join(b).unwrap().cache, CacheDisposition::Off);
    assert_eq!(service.cache_counters(), (0, 0, 0));
}

#[test]
fn portfolio_jobs_carry_the_full_race() {
    let service = single_worker(EngineRegistry::builtin());
    let spec =
        JobSpec::new(SolveRequest::new(tiny_problem())).with_engine(EngineChoice::Portfolio(vec![
            "combinatorial".to_string(),
            "milp".to_string(),
        ]));
    let id = service.submit(spec);
    let result = service.join(id).unwrap();
    assert!(result.outcome.is_proven());
    let race = result.race.expect("portfolio jobs report the race");
    assert_eq!(race.entries.len(), 2);
    assert!(["combinatorial", "milp"].contains(&result.engine.as_str()));
}

#[test]
fn dispatcher_bridge_routes_through_queue_and_cache() {
    use rfp_floorplan::engine::SolveDispatcher;
    let service = single_worker(EngineRegistry::builtin());
    let ctl = SolveControl::default();
    let req = SolveRequest::new(tiny_problem());
    let first = service.dispatch("combinatorial", &req, &ctl);
    assert!(first.is_proven());
    let second = service.dispatch("combinatorial", &req, &ctl);
    assert_eq!(second.floorplan, first.floorplan);
    let (hits, _, _) = service.cache_counters();
    assert_eq!(hits, 1, "the second dispatch must be an exact cache hit");
    // Unknown engines surface as infeasible outcomes, not panics.
    let unknown = service.dispatch("nonsense", &req, &ctl);
    assert_eq!(unknown.status, OutcomeStatus::Infeasible);
}

#[test]
fn shutdown_drains_queued_jobs() {
    let mut service = SolveService::new(
        EngineRegistry::builtin(),
        ServiceConfig { workers: 1, paused: true, ..ServiceConfig::default() },
    );
    let ids: Vec<_> =
        (0..3).map(|_| service.submit(JobSpec::new(SolveRequest::new(tiny_problem())))).collect();
    assert_eq!(service.queued(), 3);
    service.shutdown();
    for id in ids {
        let result = service.result(id).expect("drained jobs have results");
        assert!(result.outcome.status.has_floorplan());
    }
}
