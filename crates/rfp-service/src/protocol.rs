//! The `rfp serve` NDJSON protocol.
//!
//! One JSON object per input line, one JSON response line per verb, in
//! order. Five verbs:
//!
//! | verb | fields | effect |
//! |------|--------|--------|
//! | `submit` | `id` (string, unique), `problem` (embedded `rfp-problem` v1), optional `priority` (int), `engine` (string) *or* `portfolio` (array of engine ids, `[]` = all), `time_limit` (secs), `node_limit`, `threads` (worker threads for parallel-capable engines, 0 = engine default), `queue_budget_ms`, `cache` (bool), `trace` (bool: collect a per-job `rfp-trace` v1 document, returned escaped on the job's `done` line) | queue a job |
//! | `status` | `id` | report `queued` / `running` / `done` (done jobs add outcome status, cache disposition and effective thread count) |
//! | `status` | — (no `id`) | service-wide snapshot: submitted/queued job counts and the full cache statistics (hits, near hits, misses, evictions, resident entries and cost-weight mass) |
//! | `cancel` | `id` | cancel a queued or running job |
//! | `stats` | — | live trace-counter snapshot ([`ServeConfig::trace`]) plus the same cache statistics |
//! | `shutdown` | — | stop reading, drain the queue |
//!
//! End of input acts like `shutdown`. After the drain one `done` line per
//! submitted job is emitted **in submission order**, each carrying the
//! outcome status, the engine that produced it, the cache disposition
//! (`hit` / `warm` / `miss` / `off`), the effective worker thread count the
//! engine ran with and, when a floorplan was found, its objective/metrics
//! and region rectangles. A final `stats` line reports the cache counters.
//!
//! No response field carries wall-clock times or other run-dependent noise,
//! so a fixed job stream on a single-worker deferred service produces
//! byte-identical output — the property the `serve-smoke` CI job pins with
//! a golden file.

use crate::service::{
    CacheDisposition, EngineChoice, JobId, JobSpec, JobState, ServiceConfig, SolveService,
};
use rfp_floorplan::engine::{EngineRegistry, SolveRequest};
use rfp_floorplan::jsonio::{self, JsonValue};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Configuration of a serve session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads.
    pub workers: usize,
    /// Whether the outcome cache is active.
    pub cache: bool,
    /// Deferred mode: queue every job first, run only at drain time. With
    /// one worker this makes the whole session deterministic (used by the
    /// `--jobs FILE` CLI mode and the golden tests); streaming sessions set
    /// it to `false` so jobs run while later lines are still being typed.
    pub deferred: bool,
    /// Default engine for submits that name none.
    pub default_engine: String,
    /// Trace collector handle: forwarded to the service workers (per-job
    /// tracks, queue-wait wall timings) and read back by the live `stats`
    /// verb. Long-lived sessions should hand in a
    /// [`rfp_trace::Collector::counters_only`] handle so memory stays
    /// bounded.
    pub trace: Option<rfp_trace::TraceHandle>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            cache: true,
            deferred: false,
            default_engine: "combinatorial".to_string(),
            trace: None,
        }
    }
}

/// Summary of a finished serve session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs submitted (including ones later cancelled).
    pub jobs: usize,
    /// Input lines rejected with an error response.
    pub errors: usize,
}

/// Runs a serve session: reads verbs from `input`, writes responses to
/// `output`, drains on `shutdown`/EOF. IO errors abort the session; protocol
/// errors produce `"ok":false` responses and keep it running.
pub fn serve(
    input: &mut dyn BufRead,
    output: &mut dyn Write,
    registry: EngineRegistry,
    config: &ServeConfig,
) -> std::io::Result<ServeSummary> {
    let mut service = SolveService::new(
        registry,
        ServiceConfig {
            workers: config.workers,
            cache: config.cache,
            default_engine: config.default_engine.clone(),
            paused: config.deferred,
            trace: config.trace.clone(),
            ..ServiceConfig::default()
        },
    );
    // Submission order and name → service-id mapping; names are the caller's
    // handles, ids are internal.
    let mut by_name: HashMap<String, JobId> = HashMap::new();
    let mut order: Vec<(String, JobId)> = Vec::new();
    let mut errors = 0usize;

    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break; // EOF drains like `shutdown`.
        }
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(&line, &service, config.trace.as_ref(), &mut by_name, &mut order) {
            Ok(Response::Line(l)) => writeln!(output, "{l}")?,
            Ok(Response::Shutdown(l)) => {
                writeln!(output, "{l}")?;
                break;
            }
            Err(e) => {
                errors += 1;
                writeln!(output, "{}", e.render())?;
            }
        }
        output.flush()?;
    }

    // Drain: open the gate of a deferred service, then join every job in
    // submission order and report it.
    service.start();
    for (name, id) in &order {
        let result = service.join(*id).expect("submitted ids are joinable");
        writeln!(output, "{}", done_line(name, &result))?;
    }
    let (hits, near, misses) = service.cache_counters();
    writeln!(
        output,
        "{{\"verb\":\"stats\",\"jobs\":{},\"cache_hits\":{hits},\"cache_near\":{near},\
         \"cache_misses\":{misses}}}",
        order.len()
    )?;
    output.flush()?;
    service.shutdown();
    Ok(ServeSummary { jobs: order.len(), errors })
}

enum Response {
    Line(String),
    Shutdown(String),
}

struct ProtocolError {
    verb: String,
    id: Option<String>,
    message: String,
}

impl ProtocolError {
    fn render(&self) -> String {
        let mut out = format!("{{\"ok\":false,\"verb\":\"{}\"", jsonio::escape(&self.verb));
        if let Some(id) = &self.id {
            out.push_str(&format!(",\"id\":\"{}\"", jsonio::escape(id)));
        }
        out.push_str(&format!(",\"error\":\"{}\"}}", jsonio::escape(&self.message)));
        out
    }
}

fn handle_line(
    line: &str,
    service: &SolveService,
    trace: Option<&rfp_trace::TraceHandle>,
    by_name: &mut HashMap<String, JobId>,
    order: &mut Vec<(String, JobId)>,
) -> Result<Response, ProtocolError> {
    let fail = |verb: &str, id: Option<&str>, msg: String| ProtocolError {
        verb: verb.to_string(),
        id: id.map(str::to_string),
        message: msg,
    };
    let doc = jsonio::parse(line).map_err(|e| fail("?", None, e.to_string()))?;
    let verb = doc
        .get("verb")
        .and_then(|v| v.as_str().ok().map(str::to_string))
        .ok_or_else(|| fail("?", None, "missing or non-string `verb`".to_string()))?;

    match verb.as_str() {
        "submit" => {
            let id = doc
                .get("id")
                .and_then(|v| v.as_str().ok())
                .ok_or_else(|| fail("submit", None, "submit needs a string `id`".to_string()))?
                .to_string();
            if by_name.contains_key(&id) {
                return Err(fail("submit", Some(&id), format!("duplicate job id `{id}`")));
            }
            let spec = parse_submit(&doc, service).map_err(|m| fail("submit", Some(&id), m))?;
            let job = service.submit(spec);
            by_name.insert(id.clone(), job);
            order.push((id.clone(), job));
            Ok(Response::Line(format!(
                "{{\"ok\":true,\"verb\":\"submit\",\"id\":\"{}\",\"job\":{job},\
                 \"state\":\"queued\"}}",
                jsonio::escape(&id)
            )))
        }
        "status" => {
            if doc.get("id").is_none() {
                // No `id` names the service itself: report the job counts
                // and the full cache statistics.
                return Ok(Response::Line(format!(
                    "{{\"ok\":true,\"verb\":\"status\",\"jobs\":{},\"queued\":{},{}}}",
                    order.len(),
                    service.queued(),
                    cache_fields(&service.cache_stats())
                )));
            }
            let (name, job) = lookup(&doc, by_name).map_err(|m| fail("status", None, m))?;
            let status = service
                .status(job)
                .ok_or_else(|| fail("status", Some(&name), "job record vanished".to_string()))?;
            let mut out = format!(
                "{{\"ok\":true,\"verb\":\"status\",\"id\":\"{}\",\"state\":\"{}\"",
                jsonio::escape(&name),
                status.state
            );
            if status.state == JobState::Done {
                if let Some(result) = service.result(job) {
                    out.push_str(&format!(
                        ",\"status\":\"{}\",\"cache\":\"{}\",\"threads\":{}",
                        result.outcome.status, result.cache, result.outcome.stats.threads
                    ));
                }
            }
            out.push('}');
            Ok(Response::Line(out))
        }
        "cancel" => {
            let (name, job) = lookup(&doc, by_name).map_err(|m| fail("cancel", None, m))?;
            let cancelled = service.cancel(job);
            Ok(Response::Line(format!(
                "{{\"ok\":true,\"verb\":\"cancel\",\"id\":\"{}\",\"cancelled\":{cancelled}}}",
                jsonio::escape(&name)
            )))
        }
        "stats" => {
            let mut out = format!(
                "{{\"ok\":true,\"verb\":\"stats\",\"jobs\":{},\"queued\":{},{},\"counters\":{{",
                order.len(),
                service.queued(),
                cache_fields(&service.cache_stats())
            );
            // Only flushed (finished-job) scopes are visible in the
            // snapshot; an untraced session reports an empty object.
            if let Some(handle) = trace {
                for (i, (name, value)) in handle.counter_snapshot().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{value}", jsonio::escape(name)));
                }
            }
            out.push_str("}}");
            Ok(Response::Line(out))
        }
        "shutdown" => Ok(Response::Shutdown(format!(
            "{{\"ok\":true,\"verb\":\"shutdown\",\"pending\":{}}}",
            service.queued()
        ))),
        other => Err(fail(other, None, format!("unknown verb `{other}`"))),
    }
}

/// Renders the shared cache-statistics fields of the service-wide `status`
/// and `stats` responses (no surrounding braces).
fn cache_fields(stats: &crate::cache::CacheStats) -> String {
    format!(
        "\"cache_hits\":{},\"cache_near\":{},\"cache_misses\":{},\"cache_evictions\":{},\
         \"cache_len\":{},\"cache_weight_mass\":{}",
        stats.hits,
        stats.near_hits,
        stats.misses,
        stats.evictions,
        stats.len,
        jsonio::num(stats.weight_mass)
    )
}

fn lookup(doc: &JsonValue, by_name: &HashMap<String, JobId>) -> Result<(String, JobId), String> {
    let name = doc
        .get("id")
        .and_then(|v| v.as_str().ok())
        .ok_or_else(|| "missing string `id`".to_string())?;
    let job = by_name.get(name).copied().ok_or_else(|| format!("unknown job id `{name}`"))?;
    Ok((name.to_string(), job))
}

fn parse_submit(doc: &JsonValue, service: &SolveService) -> Result<JobSpec, String> {
    let problem = jsonio::read_problem_value(doc.get("problem").ok_or("submit needs a `problem`")?)
        .map_err(|e| e.to_string())?;
    problem.validate().map_err(|e| format!("invalid problem: {e}"))?;

    let mut request = SolveRequest::new(problem);
    if let Some(v) = doc.get("time_limit") {
        let secs = v.as_f64().map_err(|e| e.to_string())?;
        if !(secs.is_finite() && secs > 0.0) {
            return Err(format!("invalid time_limit {secs}"));
        }
        request = request.with_time_limit(secs);
    }
    if let Some(v) = doc.get("node_limit") {
        request = request.with_node_limit(v.as_u64().map_err(|e| e.to_string())?);
    }
    if let Some(v) = doc.get("threads") {
        let threads = v.as_u64().map_err(|e| e.to_string())?;
        if threads > 256 {
            return Err(format!("invalid threads {threads} (max 256)"));
        }
        request = request.with_threads(threads as usize);
    }

    let mut spec = JobSpec::new(request);
    if let Some(v) = doc.get("priority") {
        let p = v.as_f64().map_err(|e| e.to_string())?;
        if p.fract() != 0.0 || p.abs() > i32::MAX as f64 {
            return Err(format!("invalid priority {p}"));
        }
        spec.priority = p as i32;
    }
    if let Some(v) = doc.get("queue_budget_ms") {
        spec.queue_budget = Some(Duration::from_millis(v.as_u64().map_err(|e| e.to_string())?));
    }
    if let Some(v) = doc.get("cache") {
        spec.use_cache = v.as_bool().map_err(|e| e.to_string())?;
    }
    if let Some(v) = doc.get("trace") {
        spec.trace = v.as_bool().map_err(|e| e.to_string())?;
    }
    match (doc.get("engine"), doc.get("portfolio")) {
        (Some(_), Some(_)) => return Err("`engine` and `portfolio` are exclusive".to_string()),
        (Some(v), None) => {
            let id = v.as_str().map_err(|e| e.to_string())?;
            if service.registry().get(id).is_none() {
                return Err(format!("unknown engine `{id}`"));
            }
            spec.engine = EngineChoice::Engine(id.to_string());
        }
        (None, Some(v)) => {
            let mut ids = Vec::new();
            for item in v.as_arr().map_err(|e| e.to_string())? {
                let id = item.as_str().map_err(|e| e.to_string())?;
                if service.registry().get(id).is_none() {
                    return Err(format!("unknown engine `{id}` in portfolio"));
                }
                ids.push(id.to_string());
            }
            spec.engine = EngineChoice::Portfolio(ids);
        }
        (None, None) => {}
    }
    Ok(spec)
}

/// Renders one completion line. Deliberately free of wall-clock fields so
/// repeated runs of the same stream compare byte-for-byte.
fn done_line(name: &str, result: &crate::service::JobResult) -> String {
    let mut out = format!(
        "{{\"verb\":\"done\",\"id\":\"{}\",\"engine\":\"{}\",\"status\":\"{}\",\"cache\":\"{}\",\
         \"threads\":{}",
        jsonio::escape(name),
        jsonio::escape(&result.engine),
        result.outcome.status,
        result.cache,
        result.outcome.stats.threads
    );
    if let CacheDisposition::Warm { distance } = result.cache {
        out.push_str(&format!(",\"cache_distance\":{distance}"));
    }
    if let Some(m) = &result.outcome.metrics {
        out.push_str(&format!(
            ",\"objective\":{},\"wasted_frames\":{},\"wirelength\":{},\"fc_found\":{},\
             \"fc_requested\":{}",
            jsonio::num(m.objective),
            m.wasted_frames,
            jsonio::num(m.wirelength),
            m.fc_found,
            m.fc_requested
        ));
    }
    if let Some(fp) = &result.outcome.floorplan {
        out.push_str(",\"regions\":[");
        for (i, r) in fp.regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{},{}]", r.x, r.y, r.w, r.h));
        }
        out.push(']');
    }
    if let Some(detail) = &result.outcome.detail {
        out.push_str(&format!(",\"detail\":\"{}\"", jsonio::escape(detail)));
    }
    if let Some(trace) = &result.trace {
        // The `rfp-trace` v1 document is pretty-printed (multi-line), so it
        // rides the single-line NDJSON response as an escaped JSON string;
        // consumers unescape and feed it to `rfp trace summarize` or the
        // `rfp-trace` reader.
        out.push_str(&format!(",\"trace\":\"{}\"", jsonio::escape(trace)));
    }
    out.push('}');
    out
}
