//! A hand-rolled MPMC job queue with per-job priorities.
//!
//! No async runtime, no channels: a [`std::sync::Mutex`] around a
//! [`BTreeMap`] plus a [`Condvar`]. The map is keyed by
//! `(Reverse(priority), sequence)`, so iteration order *is* dispatch order:
//! higher priorities first, FIFO within a priority. Any number of producers
//! push and any number of workers block in [`JobQueue::pop`]; closing the
//! queue lets the workers drain what is left and then observe
//! [`Pop::Closed`].

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Result of a (blocking) [`JobQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// A job was dequeued.
    Item {
        /// The id it was pushed under.
        id: u64,
        /// The job payload.
        item: T,
    },
    /// The queue was closed and fully drained; the worker should exit.
    Closed,
}

/// Dispatch order within the queue: higher priority first, then FIFO.
type QueueKey = (Reverse<i32>, u64);

struct QueueState<T> {
    entries: BTreeMap<QueueKey, (u64, T)>,
    /// Reverse index so [`JobQueue::remove`] does not scan: id → key.
    index: std::collections::HashMap<u64, QueueKey>,
    seq: u64,
    closed: bool,
}

/// A blocking multi-producer multi-consumer priority queue.
///
/// ```
/// use rfp_service::queue::{JobQueue, Pop};
/// let q: JobQueue<&str> = JobQueue::new();
/// q.push(1, 0, "background");
/// q.push(2, 5, "urgent");
/// assert_eq!(q.pop(), Pop::Item { id: 2, item: "urgent" });
/// q.close();
/// assert_eq!(q.pop(), Pop::Item { id: 1, item: "background" });
/// assert_eq!(q.pop(), Pop::Closed);
/// ```
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                entries: BTreeMap::new(),
                index: std::collections::HashMap::new(),
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job under `id`. Higher `priority` dispatches earlier; equal
    /// priorities dispatch in push order. Returns `false` (and drops the
    /// item) when the queue is closed.
    pub fn push(&self, id: u64, priority: i32, item: T) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return false;
        }
        let key = (Reverse(priority), s.seq);
        s.seq += 1;
        s.entries.insert(key, (id, item));
        s.index.insert(id, key);
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Blocks until a job is available or the queue is closed *and* drained.
    pub fn pop(&self) -> Pop<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((&key, _)) = s.entries.iter().next() {
                let (id, item) = s.entries.remove(&key).expect("key just observed");
                s.index.remove(&id);
                return Pop::Item { id, item };
            }
            if s.closed {
                return Pop::Closed;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Removes a not-yet-dispatched job — the cancel-before-dispatch path.
    /// Returns `None` when the job was already popped (or never pushed).
    pub fn remove(&self, id: u64) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let key = s.index.remove(&id)?;
        Some(s.entries.remove(&key).expect("index and entries agree").1)
    }

    /// Number of queued (not yet dispatched) jobs.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: further pushes are rejected, and once the remaining
    /// jobs are drained every blocked and future [`JobQueue::pop`] returns
    /// [`Pop::Closed`].
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn priorities_dispatch_high_first_and_fifo_within() {
        let q: JobQueue<u32> = JobQueue::new();
        q.push(1, 0, 10);
        q.push(2, 7, 20);
        q.push(3, 7, 30);
        q.push(4, -1, 40);
        assert_eq!(q.pop(), Pop::Item { id: 2, item: 20 });
        assert_eq!(q.pop(), Pop::Item { id: 3, item: 30 });
        assert_eq!(q.pop(), Pop::Item { id: 1, item: 10 });
        assert_eq!(q.pop(), Pop::Item { id: 4, item: 40 });
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q: JobQueue<&str> = JobQueue::new();
        q.push(1, 0, "left-over");
        q.close();
        assert!(!q.push(2, 0, "late"), "pushes after close must be rejected");
        assert_eq!(q.pop(), Pop::Item { id: 1, item: "left-over" });
        assert_eq!(q.pop(), Pop::Closed);
        assert_eq!(q.pop(), Pop::Closed);
    }

    #[test]
    fn remove_takes_a_queued_job_exactly_once() {
        let q: JobQueue<&str> = JobQueue::new();
        q.push(1, 0, "a");
        q.push(2, 0, "b");
        assert_eq!(q.remove(2), Some("b"));
        assert_eq!(q.remove(2), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Pop::Item { id: 1, item: "a" });
    }

    #[test]
    fn blocked_workers_wake_on_push_and_on_close() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new());
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(9, 0, 99);
        assert_eq!(popper.join().unwrap(), Pop::Item { id: 9, item: 99 });

        let closer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(closer.join().unwrap(), Pop::Closed);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q: Arc<JobQueue<u64>> = Arc::new(JobQueue::new());
        let n_producers = 4u64;
        let per_producer = 50u64;
        std::thread::scope(|scope| {
            for p in 0..n_producers {
                let q = q.clone();
                scope.spawn(move || {
                    for i in 0..per_producer {
                        let id = p * per_producer + i;
                        assert!(q.push(id, (i % 3) as i32, id));
                    }
                });
            }
            let mut seen = Vec::new();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = q.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match q.pop() {
                                Pop::Item { id, item } => {
                                    assert_eq!(id, item);
                                    got.push(id);
                                }
                                Pop::Closed => return got,
                            }
                        }
                    })
                })
                .collect();
            // Producers finish quickly; close once everything is pushed.
            while q.state.lock().unwrap().seq < n_producers * per_producer {
                std::thread::yield_now();
            }
            q.close();
            for c in consumers {
                seen.extend(c.join().unwrap());
            }
            seen.sort_unstable();
            let expected: Vec<u64> = (0..n_producers * per_producer).collect();
            assert_eq!(seen, expected);
        });
    }
}
