//! The cross-request outcome cache.
//!
//! Keyed on [`ProblemFingerprint`] — the stable digest of device structure,
//! demand and configuration — so two submissions of the *same* problem hit
//! the same entry no matter how their JSON was formatted or what the regions
//! were called. Three outcomes of a lookup:
//!
//! * **exact** — an identical problem was solved before; its
//!   [`SolveOutcome`] is returned as-is. A proven outcome can be served
//!   without running any engine at all (the fast path behind the service's
//!   repeat-job throughput).
//! * **near** — a problem on the same device at a small
//!   [`ProblemFingerprint::distance`]; the cached floorplan is adapted to
//!   the new region list (regions are matched *by name* across requests)
//!   and handed back as a warm start.
//! * **miss** — nothing usable; the job solves cold.
//!
//! Only floorplan-bearing outcomes are cached: an infeasibility proof is
//! cheap to re-derive relative to the risk of serving it for a near-match,
//! and a budget-exhausted run carries nothing to warm-start from.

use rfp_floorplan::engine::{adapt_floorplan, SolveOutcome};
use rfp_floorplan::fingerprint::ProblemFingerprint;
use rfp_floorplan::placement::Floorplan;
use rfp_floorplan::problem::FloorplanProblem;

/// Result of an [`OutcomeCache::lookup`].
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// An identical problem (same fingerprint) was solved before. Boxed so
    /// the miss arm of a lookup stays pointer-sized.
    Exact(Box<SolveOutcome>),
    /// A nearby problem's floorplan was adapted into a warm start.
    Near {
        /// The adapted, validated floorplan to warm-start from.
        warm: Floorplan,
        /// The fingerprint distance of the donor entry.
        distance: u64,
    },
    /// Nothing usable cached.
    Miss,
}

struct CacheEntry {
    fingerprint: ProblemFingerprint,
    /// Region names of the cached problem, in region order — the join key
    /// that maps a near-match's regions onto the cached floorplan.
    region_names: Vec<String>,
    outcome: SolveOutcome,
    /// Times this entry served a lookup (exact, or as a near-hit donor).
    hits: u64,
    /// Seconds the stored outcome took to solve — what a miss on this entry
    /// would cost to re-derive.
    cost_seconds: f64,
}

impl CacheEntry {
    /// Eviction weight: expected re-derivation cost saved by keeping the
    /// entry, `(1 + hits) × solve seconds`. The `1 +` keeps never-hit
    /// entries comparable by cost instead of uniformly zero, and the floor
    /// keeps instant solves from pinning the weight to zero regardless of
    /// how hot the entry is.
    fn weight(&self) -> f64 {
        (1 + self.hits) as f64 * self.cost_seconds.max(MIN_COST_SECONDS)
    }
}

/// Floor on an entry's recorded solve cost when computing eviction weights.
const MIN_COST_SECONDS: f64 = 1e-6;

/// A bounded outcome cache with cost-weighted eviction: when full, the entry
/// with the lowest `(1 + hits) × solve seconds` weight goes first, ties
/// broken by insertion order (oldest first). A frequently-hit entry survives
/// a flood of one-off submissions, and an expensive-to-recompute outcome
/// survives a flood of cheap ones. Exact re-insertions refresh the entry's
/// position and keep its accumulated hit count.
pub struct OutcomeCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    max_distance: u64,
    hits: u64,
    near_hits: u64,
    misses: u64,
    evictions: u64,
}

/// A lifetime snapshot of the cache's behaviour, as exposed by the serve
/// protocol's service-wide `status` and `stats` responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Outcomes currently held.
    pub len: usize,
    /// Exact-fingerprint lookups served.
    pub hits: u64,
    /// Lookups served by adapting a nearby entry's floorplan.
    pub near_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries displaced by the cost-weighted eviction policy.
    pub evictions: u64,
    /// Sum of the resident entries' eviction weights,
    /// `(1 + hits) × solve seconds` — the re-derivation cost the cache is
    /// currently protecting.
    pub weight_mass: f64,
}

/// Default maximum number of cached outcomes.
pub const DEFAULT_CAPACITY: usize = 256;

/// Default maximum fingerprint distance accepted for a near hit. The
/// distance scale (see [`ProblemFingerprint::distance`]) charges 1 for a
/// weight change, and `16 + 4·Δregions + Δframes` for a demand change, so
/// 256 admits moderate demand edits while rejecting wholesale rewrites.
pub const DEFAULT_MAX_DISTANCE: u64 = 256;

impl Default for OutcomeCache {
    fn default() -> Self {
        OutcomeCache::new(DEFAULT_CAPACITY, DEFAULT_MAX_DISTANCE)
    }
}

impl OutcomeCache {
    /// An empty cache holding at most `capacity` entries and accepting near
    /// hits up to `max_distance`.
    pub fn new(capacity: usize, max_distance: u64) -> Self {
        OutcomeCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            max_distance,
            hits: 0,
            near_hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters `(exact hits, near hits, misses)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.near_hits, self.misses)
    }

    /// The full lifetime snapshot, including evictions and the resident
    /// weight mass (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.entries.len(),
            hits: self.hits,
            near_hits: self.near_hits,
            misses: self.misses,
            evictions: self.evictions,
            // `Sum for f64` folds from -0.0; re-anchor so an empty cache
            // reports 0, not -0, in the JSON snapshot.
            weight_mass: 0.0 + self.entries.iter().map(|e| e.weight()).sum::<f64>(),
        }
    }

    /// Looks the problem up. `fingerprint` must be
    /// [`ProblemFingerprint::of`] the same problem (the caller usually has
    /// it already for the job record).
    pub fn lookup(
        &mut self,
        problem: &FloorplanProblem,
        fingerprint: &ProblemFingerprint,
    ) -> CacheLookup {
        if let Some(i) = self.entries.iter().position(|e| e.fingerprint == *fingerprint) {
            self.hits += 1;
            self.entries[i].hits += 1;
            rfp_trace::count("service.cache.hits", 1);
            return CacheLookup::Exact(Box::new(self.entries[i].outcome.clone()));
        }

        // Near lookup: rank same-device entries by fingerprint distance and
        // take the first whose floorplan actually adapts to the new problem.
        let mut nearby: Vec<(u64, usize)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let d = fingerprint.distance(&e.fingerprint)?;
                (d <= self.max_distance).then_some((d, i))
            })
            .collect();
        nearby.sort_unstable();
        for (distance, i) in nearby {
            let adapted = {
                let entry = &self.entries[i];
                let previous =
                    entry.outcome.floorplan.as_ref().expect("only floorplans are cached");
                let mapping: Vec<Option<usize>> = problem
                    .regions
                    .iter()
                    .map(|r| entry.region_names.iter().position(|n| *n == r.name))
                    .collect();
                adapt_floorplan(previous, &mapping, problem)
            };
            if let Some(warm) = adapted {
                self.near_hits += 1;
                self.entries[i].hits += 1;
                rfp_trace::count("service.cache.near_hits", 1);
                return CacheLookup::Near { warm, distance };
            }
        }
        self.misses += 1;
        rfp_trace::count("service.cache.misses", 1);
        CacheLookup::Miss
    }

    /// Caches a solved outcome. Outcomes without a floorplan are ignored. An
    /// existing entry with the same fingerprint is replaced only when the
    /// new outcome is at least as good (proven beats unproven, then lower
    /// composite objective); either way the entry moves to the freshest
    /// position.
    pub fn insert(&mut self, problem: &FloorplanProblem, outcome: &SolveOutcome) {
        if outcome.floorplan.is_none() {
            return;
        }
        let fingerprint = ProblemFingerprint::of(problem);
        let region_names: Vec<String> = problem.regions.iter().map(|r| r.name.clone()).collect();
        let cost_seconds = outcome.stats.solve_seconds;
        let replaced = match self.entries.iter().position(|e| e.fingerprint == fingerprint) {
            Some(i) => {
                let old = self.entries.remove(i);
                if Self::better(outcome, &old.outcome) {
                    // The problem's popularity, not the outcome's age, is
                    // what eviction should weigh: keep the hit count. The
                    // cost follows the outcome actually stored — that is
                    // what a future miss would have to re-derive.
                    CacheEntry {
                        fingerprint,
                        region_names,
                        outcome: outcome.clone(),
                        hits: old.hits,
                        cost_seconds,
                    }
                } else {
                    old
                }
            }
            None => CacheEntry {
                fingerprint,
                region_names,
                outcome: outcome.clone(),
                hits: 0,
                cost_seconds,
            },
        };
        self.entries.push(replaced);
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.weight().total_cmp(&b.weight()).then_with(|| i.cmp(j)))
                .map(|(i, _)| i)
                .expect("the cache is over capacity, so non-empty");
            self.entries.remove(victim);
            self.evictions += 1;
            rfp_trace::count("service.cache.evictions", 1);
        }
    }

    fn better(new: &SolveOutcome, old: &SolveOutcome) -> bool {
        if new.is_proven() != old.is_proven() {
            return new.is_proven();
        }
        let obj = |o: &SolveOutcome| o.metrics.as_ref().map_or(f64::INFINITY, |m| m.objective);
        obj(new) <= obj(old)
    }
}

impl std::fmt::Debug for OutcomeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutcomeCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("near_hits", &self.near_hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use rfp_floorplan::engine::{EngineStats, OutcomeStatus};
    use rfp_floorplan::problem::RegionSpec;

    /// A one-region problem whose demand (`tag + 1` CLB tiles) makes its
    /// fingerprint distinct per tag.
    fn problem(tag: u32) -> FloorplanProblem {
        let mut b = DeviceBuilder::new("cache-evict");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        b.rows(4).columns(&[clb, clb, clb, clb]);
        let mut p = FloorplanProblem::new(columnar_partition(&b.build().unwrap()).unwrap());
        p.add_region(RegionSpec::new(format!("R{tag}"), vec![(clb, tag + 1)]));
        p
    }

    /// A floorplan-bearing outcome; the cache never validates it.
    fn outcome() -> SolveOutcome {
        SolveOutcome {
            status: OutcomeStatus::Proven,
            floorplan: Some(Floorplan::from_regions(vec![rfp_device::Rect::new(1, 1, 1, 1)])),
            metrics: None,
            detail: None,
            stats: EngineStats::new("test"),
        }
    }

    /// Like [`outcome`], but recording `seconds` of solve time.
    fn outcome_costing(seconds: f64) -> SolveOutcome {
        let mut o = outcome();
        o.stats.solve_seconds = seconds;
        o
    }

    #[test]
    fn hot_entries_survive_a_flood_of_cold_ones() {
        let mut cache = OutcomeCache::new(4, 0);
        let hot = problem(100);
        let hot_fp = ProblemFingerprint::of(&hot);
        cache.insert(&hot, &outcome());
        for _ in 0..5 {
            assert!(matches!(cache.lookup(&hot, &hot_fp), CacheLookup::Exact(_)));
        }
        // Flood with one-off entries, several times past capacity. Plain
        // FIFO eviction would push the hot entry out after the fourth.
        for tag in 0..16 {
            cache.insert(&problem(tag), &outcome());
        }
        assert_eq!(cache.len(), 4);
        assert!(
            matches!(cache.lookup(&hot, &hot_fp), CacheLookup::Exact(_)),
            "the repeatedly-hit entry must outlive the flood"
        );
    }

    #[test]
    fn expensive_entries_survive_a_flood_of_cheap_ones() {
        let mut cache = OutcomeCache::new(4, 0);
        let costly = problem(100);
        let costly_fp = ProblemFingerprint::of(&costly);
        // Never looked up — only its recorded 30s solve cost protects it.
        cache.insert(&costly, &outcome_costing(30.0));
        for tag in 0..16 {
            cache.insert(&problem(tag), &outcome_costing(0.001));
        }
        assert_eq!(cache.len(), 4);
        assert!(
            matches!(cache.lookup(&costly, &costly_fp), CacheLookup::Exact(_)),
            "the expensive outcome must outlive a flood of instant ones"
        );
        // But popularity can still beat raw cost: a cheap entry hit often
        // enough (weight 101 x 0.5s) outweighs an idle expensive one
        // (weight 1 x 30s) when a 40s newcomer forces an eviction.
        let hot = problem(200);
        let hot_fp = ProblemFingerprint::of(&hot);
        let mut cache = OutcomeCache::new(2, 0);
        cache.insert(&hot, &outcome_costing(0.5));
        cache.insert(&costly, &outcome_costing(30.0));
        for _ in 0..100 {
            assert!(matches!(cache.lookup(&hot, &hot_fp), CacheLookup::Exact(_)));
        }
        cache.insert(&problem(300), &outcome_costing(40.0));
        assert!(matches!(cache.lookup(&hot, &hot_fp), CacheLookup::Exact(_)));
        assert!(
            matches!(cache.lookup(&costly, &costly_fp), CacheLookup::Miss),
            "hits x cost weighting must prefer the hot cheap entry"
        );
    }

    #[test]
    fn untouched_entries_still_evict_oldest_first() {
        let mut cache = OutcomeCache::new(2, 0);
        for tag in 0..3 {
            cache.insert(&problem(tag), &outcome());
        }
        // Nothing was ever looked up, so the tie on zero hits breaks by
        // age: the first insertion is the victim.
        let p0 = problem(0);
        assert!(matches!(cache.lookup(&p0, &ProblemFingerprint::of(&p0)), CacheLookup::Miss));
        let p2 = problem(2);
        assert!(matches!(cache.lookup(&p2, &ProblemFingerprint::of(&p2)), CacheLookup::Exact(_)));
    }
}
