//! The cross-request outcome cache.
//!
//! Keyed on [`ProblemFingerprint`] — the stable digest of device structure,
//! demand and configuration — so two submissions of the *same* problem hit
//! the same entry no matter how their JSON was formatted or what the regions
//! were called. Three outcomes of a lookup:
//!
//! * **exact** — an identical problem was solved before; its
//!   [`SolveOutcome`] is returned as-is. A proven outcome can be served
//!   without running any engine at all (the fast path behind the service's
//!   repeat-job throughput).
//! * **near** — a problem on the same device at a small
//!   [`ProblemFingerprint::distance`]; the cached floorplan is adapted to
//!   the new region list (regions are matched *by name* across requests)
//!   and handed back as a warm start.
//! * **miss** — nothing usable; the job solves cold.
//!
//! Only floorplan-bearing outcomes are cached: an infeasibility proof is
//! cheap to re-derive relative to the risk of serving it for a near-match,
//! and a budget-exhausted run carries nothing to warm-start from.

use rfp_floorplan::engine::{adapt_floorplan, SolveOutcome};
use rfp_floorplan::fingerprint::ProblemFingerprint;
use rfp_floorplan::placement::Floorplan;
use rfp_floorplan::problem::FloorplanProblem;

/// Result of an [`OutcomeCache::lookup`].
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// An identical problem (same fingerprint) was solved before. Boxed so
    /// the miss arm of a lookup stays pointer-sized.
    Exact(Box<SolveOutcome>),
    /// A nearby problem's floorplan was adapted into a warm start.
    Near {
        /// The adapted, validated floorplan to warm-start from.
        warm: Floorplan,
        /// The fingerprint distance of the donor entry.
        distance: u64,
    },
    /// Nothing usable cached.
    Miss,
}

struct CacheEntry {
    fingerprint: ProblemFingerprint,
    /// Region names of the cached problem, in region order — the join key
    /// that maps a near-match's regions onto the cached floorplan.
    region_names: Vec<String>,
    outcome: SolveOutcome,
}

/// A bounded, insertion-ordered outcome cache (oldest entry evicted first;
/// exact re-insertions refresh the entry's position).
pub struct OutcomeCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    max_distance: u64,
    hits: u64,
    near_hits: u64,
    misses: u64,
}

/// Default maximum number of cached outcomes.
pub const DEFAULT_CAPACITY: usize = 256;

/// Default maximum fingerprint distance accepted for a near hit. The
/// distance scale (see [`ProblemFingerprint::distance`]) charges 1 for a
/// weight change, and `16 + 4·Δregions + Δframes` for a demand change, so
/// 256 admits moderate demand edits while rejecting wholesale rewrites.
pub const DEFAULT_MAX_DISTANCE: u64 = 256;

impl Default for OutcomeCache {
    fn default() -> Self {
        OutcomeCache::new(DEFAULT_CAPACITY, DEFAULT_MAX_DISTANCE)
    }
}

impl OutcomeCache {
    /// An empty cache holding at most `capacity` entries and accepting near
    /// hits up to `max_distance`.
    pub fn new(capacity: usize, max_distance: u64) -> Self {
        OutcomeCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            max_distance,
            hits: 0,
            near_hits: 0,
            misses: 0,
        }
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters `(exact hits, near hits, misses)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.near_hits, self.misses)
    }

    /// Looks the problem up. `fingerprint` must be
    /// [`ProblemFingerprint::of`] the same problem (the caller usually has
    /// it already for the job record).
    pub fn lookup(
        &mut self,
        problem: &FloorplanProblem,
        fingerprint: &ProblemFingerprint,
    ) -> CacheLookup {
        if let Some(entry) = self.entries.iter().find(|e| e.fingerprint == *fingerprint) {
            self.hits += 1;
            return CacheLookup::Exact(Box::new(entry.outcome.clone()));
        }

        // Near lookup: rank same-device entries by fingerprint distance and
        // take the first whose floorplan actually adapts to the new problem.
        let mut nearby: Vec<(u64, usize)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let d = fingerprint.distance(&e.fingerprint)?;
                (d <= self.max_distance).then_some((d, i))
            })
            .collect();
        nearby.sort_unstable();
        for (distance, i) in nearby {
            let entry = &self.entries[i];
            let previous = entry.outcome.floorplan.as_ref().expect("only floorplans are cached");
            let mapping: Vec<Option<usize>> = problem
                .regions
                .iter()
                .map(|r| entry.region_names.iter().position(|n| *n == r.name))
                .collect();
            if let Some(warm) = adapt_floorplan(previous, &mapping, problem) {
                self.near_hits += 1;
                return CacheLookup::Near { warm, distance };
            }
        }
        self.misses += 1;
        CacheLookup::Miss
    }

    /// Caches a solved outcome. Outcomes without a floorplan are ignored. An
    /// existing entry with the same fingerprint is replaced only when the
    /// new outcome is at least as good (proven beats unproven, then lower
    /// composite objective); either way the entry moves to the freshest
    /// position.
    pub fn insert(&mut self, problem: &FloorplanProblem, outcome: &SolveOutcome) {
        if outcome.floorplan.is_none() {
            return;
        }
        let fingerprint = ProblemFingerprint::of(problem);
        let region_names: Vec<String> = problem.regions.iter().map(|r| r.name.clone()).collect();
        let replaced = match self.entries.iter().position(|e| e.fingerprint == fingerprint) {
            Some(i) => {
                let old = self.entries.remove(i);
                if Self::better(outcome, &old.outcome) {
                    CacheEntry { fingerprint, region_names, outcome: outcome.clone() }
                } else {
                    old
                }
            }
            None => CacheEntry { fingerprint, region_names, outcome: outcome.clone() },
        };
        self.entries.push(replaced);
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    fn better(new: &SolveOutcome, old: &SolveOutcome) -> bool {
        if new.is_proven() != old.is_proven() {
            return new.is_proven();
        }
        let obj = |o: &SolveOutcome| o.metrics.as_ref().map_or(f64::INFINITY, |m| m.objective);
        obj(new) <= obj(old)
    }
}

impl std::fmt::Debug for OutcomeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutcomeCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("near_hits", &self.near_hits)
            .field("misses", &self.misses)
            .finish()
    }
}
