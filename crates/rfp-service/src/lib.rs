//! # rfp-service — queue-worker solve service with a cross-request outcome cache
//!
//! A long-lived solving front-end for the relocation-aware floorplanner:
//! callers submit [`SolveRequest`](rfp_floorplan::engine::SolveRequest)s as
//! prioritised jobs; a pool of plain-`std::thread` workers drains them
//! through the [`EngineRegistry`](rfp_floorplan::engine::EngineRegistry)
//! (one engine per job, or a cancellable portfolio race); and every solved
//! outcome feeds a cache keyed on the stable
//! [`ProblemFingerprint`](rfp_floorplan::fingerprint::ProblemFingerprint),
//! so repeat jobs are answered without running an engine and near-repeat
//! jobs warm-start from the adapted cached floorplan.
//!
//! No async runtime, no channels beyond `Mutex` + `Condvar` — the service
//! is small enough to read in one sitting:
//!
//! * [`queue`] — the hand-rolled MPMC priority queue.
//! * [`cache`] — the fingerprint-keyed outcome cache (exact / near / miss).
//! * [`service`] — the worker pool, job lifecycle (submit / status /
//!   cancel / join) and dispatch.
//! * [`protocol`] — the NDJSON `rfp serve` protocol over the v1 JSON
//!   problem format.
//!
//! The service also implements
//! [`SolveDispatcher`](rfp_floorplan::engine::SolveDispatcher), so the
//! online reconfiguration simulator of `rfp-runtime` can route its
//! escalation solves through the shared queue and cache instead of calling
//! engines directly.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod protocol;
pub mod queue;
pub mod service;

pub use cache::{CacheLookup, CacheStats, OutcomeCache};
pub use protocol::{serve, ServeConfig, ServeSummary};
pub use queue::{JobQueue, Pop};
pub use service::{
    CacheDisposition, EngineChoice, JobId, JobResult, JobSpec, JobState, JobStatus, ServiceConfig,
    SolveService,
};

use rfp_floorplan::engine::{SolveControl, SolveDispatcher, SolveOutcome, SolveRequest};

impl SolveDispatcher for SolveService {
    fn dispatch(&self, engine: &str, req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
        let spec = JobSpec {
            request: req.clone(),
            priority: 0,
            engine: EngineChoice::Engine(engine.to_string()),
            queue_budget: None,
            // The caller's token is the job's token, so cancelling the outer
            // control cancels the job whether queued or running.
            cancel: Some(ctl.cancel.clone()),
            use_cache: true,
            trace: false,
        };
        let id = self.submit(spec);
        self.join(id).expect("submitted ids are joinable").outcome
    }

    fn knows(&self, engine: &str) -> bool {
        self.registry().get(engine).is_some()
    }
}
