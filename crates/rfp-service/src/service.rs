//! The queue-worker solve service.
//!
//! A [`SolveService`] owns a pool of plain `std::thread` workers draining a
//! [`JobQueue`](crate::queue::JobQueue) of [`JobSpec`]s. Each job dispatches
//! to one engine of the service's [`EngineRegistry`] or races a
//! [`Portfolio`] of them, under a per-job [`CancelToken`] so callers can
//! cancel a running job and status-poll it while it runs. Solved outcomes
//! feed the cross-request [`OutcomeCache`]: an identical re-submission is
//! served straight from the cache (no engine runs at all), and a
//! near-identical one warm-starts from the adapted cached floorplan.
//!
//! Lifecycle of a job:
//!
//! ```text
//! submit ──▶ Queued ──▶ Running ──▶ Done(JobResult)
//!               │                      ▲
//!               └── cancel / queue budget expiry ──┘
//! ```
//!
//! Cancelled-before-dispatch and queue-budget-expired jobs still complete —
//! with [`OutcomeStatus::BudgetExhausted`] — so every submitted job id can
//! be joined; nothing is silently dropped.

use crate::cache::{CacheLookup, OutcomeCache};
use crate::queue::{JobQueue, Pop};
use rfp_floorplan::engine::{
    CancelToken, EngineRegistry, EngineStats, OutcomeStatus, SolveControl, SolveOutcome,
    SolveRequest,
};
use rfp_floorplan::fingerprint::ProblemFingerprint;
use rfp_floorplan::portfolio::{Portfolio, RaceOutcome};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service-assigned job identifier (dense, starting at 1).
pub type JobId = u64;

/// Which engine(s) a job runs on.
#[derive(Debug, Clone, Default)]
pub enum EngineChoice {
    /// The service's default engine ([`ServiceConfig::default_engine`]).
    #[default]
    Default,
    /// One engine by registry id.
    Engine(String),
    /// A portfolio race over the named engines (empty = every registered
    /// engine), with cross-engine incumbent sharing.
    Portfolio(Vec<String>),
}

/// A unit of work for the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The solve request (problem, budgets, warm-start hint).
    pub request: SolveRequest,
    /// Dispatch priority: higher runs earlier; FIFO within a priority.
    pub priority: i32,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Maximum time the job may sit in the queue. A job popped after its
    /// queue budget expired completes as [`OutcomeStatus::BudgetExhausted`]
    /// without running an engine — it is *reported*, not dropped.
    pub queue_budget: Option<Duration>,
    /// Cancellation token observed by the job (defaults to a fresh token).
    /// Passing a caller-owned token lets an outer context — e.g. a
    /// dispatcher bridging an online simulation — cancel the job directly.
    pub cancel: Option<CancelToken>,
    /// Per-job cache opt-out (e.g. benchmark cold runs).
    pub use_cache: bool,
    /// Collect a per-job trace document. The job's emissions are routed to a
    /// private deterministic collector (instead of the session collector of
    /// [`ServiceConfig::trace`], if any) and the drained `rfp-trace` v1
    /// document is returned on [`JobResult::trace`].
    pub trace: bool,
}

impl JobSpec {
    /// A default-engine, priority-0, cache-enabled job.
    pub fn new(request: SolveRequest) -> Self {
        JobSpec {
            request,
            priority: 0,
            engine: EngineChoice::Default,
            queue_budget: None,
            cancel: None,
            use_cache: true,
            trace: false,
        }
    }

    /// Requests a per-job trace document (see [`JobSpec::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the dispatch priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the engine selection.
    pub fn with_engine(mut self, engine: EngineChoice) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the queue budget.
    pub fn with_queue_budget(mut self, budget: Duration) -> Self {
        self.queue_budget = Some(budget);
        self
    }
}

/// Where a finished job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served verbatim from the cache; no engine ran.
    Hit,
    /// Warm-started from a cached (exact or nearby) floorplan.
    Warm {
        /// Fingerprint distance of the donor entry (0 = same problem).
        distance: u64,
    },
    /// Solved cold.
    Miss,
    /// The cache was disabled for this job or service.
    Off,
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheDisposition::Hit => f.write_str("hit"),
            CacheDisposition::Warm { .. } => f.write_str("warm"),
            CacheDisposition::Miss => f.write_str("miss"),
            CacheDisposition::Off => f.write_str("off"),
        }
    }
}

/// The completed result of a job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The solve outcome (or the synthetic budget/cancel outcome).
    pub outcome: SolveOutcome,
    /// Cache involvement.
    pub cache: CacheDisposition,
    /// Label of what ran: an engine id, `"portfolio"`, `"cache"`, or
    /// `"queue"` for jobs that never dispatched.
    pub engine: String,
    /// Full per-engine entries when the job raced a portfolio.
    pub race: Option<RaceOutcome>,
    /// The job's deterministic `rfp-trace` v1 document, present iff the job
    /// was submitted with [`JobSpec::trace`].
    pub trace: Option<String>,
}

/// Coarse job state for status polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet dispatched to a worker.
    Queued,
    /// A worker is solving it right now.
    Running,
    /// Finished (result available via [`SolveService::result`] /
    /// [`SolveService::join`]).
    Done,
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Queued => f.write_str("queued"),
            JobState::Running => f.write_str("running"),
            JobState::Done => f.write_str("done"),
        }
    }
}

/// A status snapshot of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current state.
    pub state: JobState,
    /// The job's dispatch priority.
    pub priority: i32,
    /// The problem fingerprint (stable across identical re-submissions).
    pub fingerprint: ProblemFingerprint,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Whether the cross-request outcome cache is consulted and fed.
    pub cache: bool,
    /// Cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum fingerprint distance served as a near (warm-start) hit.
    pub cache_max_distance: u64,
    /// Engine id used by [`EngineChoice::Default`] jobs.
    pub default_engine: String,
    /// Start with the workers gated: jobs queue up but nothing dispatches
    /// until [`SolveService::start`] (or shutdown, which always releases the
    /// gate so the queue drains). This is how `rfp serve --jobs FILE`
    /// achieves a deterministic submit-everything-then-run schedule.
    pub paused: bool,
    /// Trace collector handle. When set, every worker installs a
    /// `job#####` scope around each job it runs, so solver spans and
    /// counters land on per-job tracks, and queue-wait / busy time is
    /// reported out-of-band via [`rfp_trace::wall`].
    pub trace: Option<rfp_trace::TraceHandle>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            cache: true,
            cache_capacity: crate::cache::DEFAULT_CAPACITY,
            cache_max_distance: crate::cache::DEFAULT_MAX_DISTANCE,
            default_engine: "combinatorial".to_string(),
            paused: false,
            trace: None,
        }
    }
}

enum RecState {
    Queued,
    Running,
    Done(Box<JobResult>),
}

struct JobRecord {
    state: RecState,
    priority: i32,
    submitted: Instant,
    fingerprint: ProblemFingerprint,
    cancel: CancelToken,
}

struct Shared {
    queue: JobQueue<JobSpec>,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    done: Condvar,
    cache: Mutex<OutcomeCache>,
    registry: EngineRegistry,
    config: ServiceConfig,
    next_id: AtomicU64,
    /// `false` while the service is paused; workers wait here before their
    /// first pop.
    gate: Mutex<bool>,
    gate_open: Condvar,
}

/// The queue-worker solve service. See the [module docs](self).
///
/// Dropping the service shuts it down: the queue is closed, the remaining
/// jobs drain, and the worker threads are joined.
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SolveService {
    /// Starts the worker pool over the given engine registry.
    pub fn new(registry: EngineRegistry, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(),
            jobs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            cache: Mutex::new(OutcomeCache::new(config.cache_capacity, config.cache_max_distance)),
            registry,
            next_id: AtomicU64::new(1),
            gate: Mutex::new(!config.paused),
            gate_open: Condvar::new(),
            config: config.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        SolveService { shared, workers }
    }

    /// Submits a job; returns its id immediately.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = spec.cancel.clone().unwrap_or_default();
        let record = JobRecord {
            state: RecState::Queued,
            priority: spec.priority,
            submitted: Instant::now(),
            fingerprint: ProblemFingerprint::of(&spec.request.effective_problem()),
            cancel,
        };
        let mut jobs = self.lock_jobs();
        jobs.insert(id, record);
        if !self.shared.queue.push(id, spec.priority, spec) {
            // The service is shutting down: complete the job instead of
            // leaving a joiner waiting forever.
            complete(&self.shared, &mut jobs, id, queue_result("service shut down"));
        }
        id
    }

    /// A status snapshot, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let jobs = self.lock_jobs();
        jobs.get(&id).map(|r| JobStatus {
            state: match r.state {
                RecState::Queued => JobState::Queued,
                RecState::Running => JobState::Running,
                RecState::Done(_) => JobState::Done,
            },
            priority: r.priority,
            fingerprint: r.fingerprint,
        })
    }

    /// The finished result, or `None` while the job is pending / for an
    /// unknown id.
    pub fn result(&self, id: JobId) -> Option<JobResult> {
        let jobs = self.lock_jobs();
        match jobs.get(&id) {
            Some(JobRecord { state: RecState::Done(result), .. }) => Some((**result).clone()),
            _ => None,
        }
    }

    /// Cancels a job. A still-queued job is pulled from the queue and
    /// completed as cancelled; a running job has its [`CancelToken`] fired
    /// (the engine winds down cooperatively). Returns `false` when the job
    /// is already done or unknown.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut jobs = self.lock_jobs();
        match jobs.get(&id) {
            None | Some(JobRecord { state: RecState::Done(_), .. }) => false,
            Some(JobRecord { state: RecState::Queued, .. }) => {
                if self.shared.queue.remove(id).is_some() {
                    complete(
                        &self.shared,
                        &mut jobs,
                        id,
                        queue_result("cancelled before dispatch"),
                    );
                } else {
                    // A worker popped it between our state read and the
                    // queue removal; fall through to the running path.
                    jobs.get(&id).expect("checked above").cancel.cancel();
                }
                true
            }
            Some(record) => {
                record.cancel.cancel();
                true
            }
        }
    }

    /// Blocks until the job finishes and returns its result (`None` for an
    /// unknown id).
    pub fn join(&self, id: JobId) -> Option<JobResult> {
        let mut jobs = self.lock_jobs();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(JobRecord { state: RecState::Done(result), .. }) => {
                    return Some((**result).clone())
                }
                _ => {
                    jobs = self.shared.done.wait(jobs).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Number of jobs still queued (not dispatched).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Cache counters `(exact hits, near hits, misses)`.
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        self.shared.cache.lock().unwrap_or_else(|e| e.into_inner()).counters()
    }

    /// The full cache snapshot: hit/near-hit/miss/eviction counters plus
    /// the resident cost-weight mass.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.lock().unwrap_or_else(|e| e.into_inner()).stats()
    }

    /// The engine registry the service dispatches to.
    pub fn registry(&self) -> &EngineRegistry {
        &self.shared.registry
    }

    /// Opens the worker gate of a paused service ([`ServiceConfig::paused`]).
    /// No-op when already open.
    pub fn start(&self) {
        *self.shared.gate.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.gate_open.notify_all();
    }

    /// Closes the queue, drains the remaining jobs and joins the workers.
    /// Idempotent; also performed on drop. A paused service is started
    /// first, so its queued jobs still run to completion.
    pub fn shutdown(&mut self) {
        self.start();
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, HashMap<JobId, JobRecord>> {
        self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("workers", &self.workers.len())
            .field("queued", &self.shared.queue.len())
            .field("config", &self.shared.config)
            .finish()
    }
}

/// The synthetic result of a job that never dispatched (cancelled in the
/// queue, queue budget expired, service shut down).
fn queue_result(detail: &str) -> JobResult {
    let mut stats = EngineStats::new("queue");
    stats.cancelled = true;
    JobResult {
        outcome: SolveOutcome::without_floorplan(OutcomeStatus::BudgetExhausted, detail, stats),
        cache: CacheDisposition::Off,
        engine: "queue".to_string(),
        race: None,
        trace: None,
    }
}

fn complete(shared: &Shared, jobs: &mut HashMap<JobId, JobRecord>, id: JobId, result: JobResult) {
    if let Some(record) = jobs.get_mut(&id) {
        record.state = RecState::Done(Box::new(result));
    }
    shared.done.notify_all();
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut gate = shared.gate.lock().unwrap_or_else(|e| e.into_inner());
    while !*gate {
        gate = shared.gate_open.wait(gate).unwrap_or_else(|e| e.into_inner());
    }
    drop(gate);
    loop {
        let (id, spec) = match shared.queue.pop() {
            Pop::Item { id, item } => (id, item),
            Pop::Closed => return,
        };

        // Transition to Running — or complete immediately when the job was
        // cancelled while queued or out-lived its queue budget.
        let (cancel, fingerprint, queued_for) = {
            let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            let record = match jobs.get_mut(&id) {
                Some(r) => r,
                None => continue,
            };
            if record.cancel.is_cancelled() {
                let result = queue_result("cancelled before dispatch");
                record.state = RecState::Done(Box::new(result));
                shared.done.notify_all();
                continue;
            }
            if let Some(budget) = spec.queue_budget {
                if record.submitted.elapsed() > budget {
                    let result = queue_result("queue budget expired before dispatch");
                    record.state = RecState::Done(Box::new(result));
                    shared.done.notify_all();
                    continue;
                }
            }
            record.state = RecState::Running;
            (record.cancel.clone(), record.fingerprint, record.submitted.elapsed())
        };

        // Each job records onto its own `job#####` track (job ids are
        // service-unique, so concurrent workers never share a track), with
        // queue-wait and per-worker busy time kept out-of-band. A job
        // submitted with `JobSpec::trace` gets a private deterministic
        // collector instead (innermost scope wins), and its drained document
        // rides back on the result.
        let tracer = spec.trace.then(rfp_trace::Collector::new);
        let job_scope = match &tracer {
            Some(collector) => Some(collector.install(&format!("job{id:05}"))),
            None => shared.config.trace.as_ref().map(|h| h.install(&format!("job{id:05}"))),
        };
        rfp_trace::count("service.jobs", 1);
        rfp_trace::wall("service.queue_wait", queued_for.as_secs_f64());
        let started = Instant::now();
        let mut result = run_job(shared, spec, cancel, &fingerprint);
        rfp_trace::wall(&format!("service.worker{worker}.busy"), started.elapsed().as_secs_f64());
        drop(job_scope);
        if let Some(collector) = tracer {
            result.trace = Some(collector.drain().to_json());
        }

        let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
        complete(shared, &mut jobs, id, result);
    }
}

fn run_job(
    shared: &Shared,
    spec: JobSpec,
    cancel: CancelToken,
    fingerprint: &ProblemFingerprint,
) -> JobResult {
    // Validate a named engine before consulting the cache: a job naming a
    // non-existent engine must fail the same way whether or not a twin
    // problem happens to be cached.
    let named_engine = match &spec.engine {
        EngineChoice::Default => Some(shared.config.default_engine.as_str()),
        EngineChoice::Engine(id) => Some(id.as_str()),
        EngineChoice::Portfolio(_) => None,
    };
    if let Some(id) = named_engine {
        if shared.registry.get(id).is_none() {
            return JobResult {
                outcome: unknown_engine(id),
                cache: CacheDisposition::Off,
                engine: id.to_string(),
                race: None,
                trace: None,
            };
        }
    }

    let use_cache = shared.config.cache && spec.use_cache;
    let mut request = spec.request;
    let mut cache_disposition =
        if use_cache { CacheDisposition::Miss } else { CacheDisposition::Off };

    if use_cache {
        let lookup = {
            let problem = request.effective_problem();
            let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.lookup(&problem, fingerprint)
        };
        match lookup {
            CacheLookup::Exact(outcome) => {
                if outcome.is_proven() {
                    // Identical problem, proven answer: serve it without
                    // running any engine. This is the repeat-job fast path.
                    return JobResult {
                        outcome: *outcome,
                        cache: CacheDisposition::Hit,
                        engine: "cache".to_string(),
                        race: None,
                        trace: None,
                    };
                }
                // Unproven cached answer: re-solve, warm-started from it.
                request = request.with_warm_outcome(&outcome);
                cache_disposition = CacheDisposition::Warm { distance: 0 };
            }
            CacheLookup::Near { warm, distance } => {
                request = request.with_warm_start(warm);
                cache_disposition = CacheDisposition::Warm { distance };
            }
            CacheLookup::Miss => {}
        }
    }

    let ctl = SolveControl::with_cancel(cancel);
    let (engine_label, outcome, race) = {
        let _solve = rfp_trace::span("service.solve");
        dispatch(shared, &spec.engine, &request, &ctl)
    };

    if use_cache {
        let problem = request.effective_problem();
        let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(&problem, &outcome);
    }

    JobResult { outcome, cache: cache_disposition, engine: engine_label, race, trace: None }
}

fn dispatch(
    shared: &Shared,
    choice: &EngineChoice,
    request: &SolveRequest,
    ctl: &SolveControl,
) -> (String, SolveOutcome, Option<RaceOutcome>) {
    let engine_id = match choice {
        EngineChoice::Default => shared.config.default_engine.as_str(),
        EngineChoice::Engine(id) => id.as_str(),
        EngineChoice::Portfolio(ids) => {
            let portfolio = if ids.is_empty() {
                Portfolio::from_registry(&shared.registry)
            } else {
                let mut engines = Vec::new();
                for id in ids {
                    match shared.registry.get(id) {
                        Some(e) => engines.push(e),
                        None => return (id.clone(), unknown_engine(id), None),
                    }
                }
                Portfolio::new(engines)
            };
            let race = portfolio.race_controlled(request, ctl);
            return match race.winner {
                Some(i) => {
                    let entry = &race.entries[i];
                    (entry.engine.clone(), entry.outcome.clone(), Some(race.clone()))
                }
                None => {
                    let budget = race
                        .entries
                        .iter()
                        .any(|e| e.outcome.status == OutcomeStatus::BudgetExhausted);
                    let status = if budget {
                        OutcomeStatus::BudgetExhausted
                    } else {
                        OutcomeStatus::Infeasible
                    };
                    let outcome = SolveOutcome::without_floorplan(
                        status,
                        "no engine of the portfolio produced a floorplan",
                        EngineStats::new("portfolio"),
                    );
                    ("portfolio".to_string(), outcome, Some(race.clone()))
                }
            };
        }
    };
    match shared.registry.get(engine_id) {
        Some(engine) => {
            let outcome = {
                let _leg = rfp_trace::span(&format!("engine.{engine_id}"));
                engine.solve(request, ctl)
            };
            if outcome.stats.cancelled {
                rfp_trace::count("engine.cancelled", 1);
            }
            (engine_id.to_string(), outcome, None)
        }
        None => (engine_id.to_string(), unknown_engine(engine_id), None),
    }
}

fn unknown_engine(id: &str) -> SolveOutcome {
    SolveOutcome::without_floorplan(
        OutcomeStatus::Infeasible,
        format!("unknown engine `{id}`"),
        EngineStats::new("service"),
    )
}
