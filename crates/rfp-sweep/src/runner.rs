//! The sweep executor: a `std::thread::scope` worker pool over the
//! expanded run list, with a deferred deterministic merge.
//!
//! Work distribution is a shared atomic cursor — each worker claims the
//! next unclaimed run index, simulates it, and stores the extracted
//! [`RunMetrics`] into that run's slot. **No aggregation happens on the
//! workers**: after the pool joins, the slots are merged in run-index order
//! (the same deferred-merge discipline `rfp serve --jobs` uses), which is
//! what makes the report byte-stable at any worker count.
//!
//! Traces are materialised **once per grid point** as binary `rfpb`
//! documents ([`rfp_runtime::write_scenario_bin`]) and decoded per run — so
//! the three policy cells of a grid point replay the exact same trace, and
//! replays pay the binary decode cost rather than JSON parse or RNG regen.
//!
//! Cancellation reuses [`CancelToken`]: the runner derives a child token
//! from the caller's (so an external ctrl-c style cancel propagates in),
//! workers poll it between runs, and an internal simulation error cancels
//! the child to drain the pool early without touching the caller's token.

use crate::grid::SweepGrid;
use crate::report::{aggregate, RunMetrics, SweepReport};
use rfp_floorplan::CancelToken;
use rfp_runtime::{read_scenario_bin, simulate, OnlineConfig};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How to execute a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (clamped to at least 1). The report is byte-identical
    /// at every value.
    pub workers: usize,
    /// Cooperative abort: cancel it and the pool drains after the runs
    /// currently in flight.
    pub cancel: CancelToken,
    /// Trace collector handle. When set, each run records its decode /
    /// simulate phase breakdown onto its own `run#####` track (run indices
    /// are plan-stable, so the trace is as worker-count-independent as the
    /// report).
    pub trace: Option<rfp_trace::TraceHandle>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { workers: 1, cancel: CancelToken::new(), trace: None }
    }
}

/// Why a sweep did not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The grid failed [`SweepGrid::validate`].
    InvalidGrid(Vec<String>),
    /// The cancel token fired before every run finished.
    Cancelled,
    /// A run failed to simulate (unknown engine, malformed trace).
    Sim(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidGrid(issues) => write!(f, "invalid grid: {}", issues.join("; ")),
            SweepError::Cancelled => write!(f, "sweep cancelled"),
            SweepError::Sim(msg) => write!(f, "simulation failed: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A completed sweep: the deterministic report plus the wall-clock side
/// channel (which must never leak into the report).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The deterministic, byte-stable report.
    pub report: SweepReport,
    /// Total wall-clock seconds of the sweep (stderr material only).
    pub wall_seconds: f64,
    /// Bytes of materialised binary trace shared across the runs.
    pub trace_bytes: u64,
    /// Run indices whose wall time exceeded
    /// [`SweepGrid::run_budget_seconds`], sorted ascending.
    pub over_budget: Vec<usize>,
}

/// Runs every cell of the grid and merges the results deterministically.
pub fn run_sweep(grid: &SweepGrid, options: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    let issues = grid.validate();
    if !issues.is_empty() {
        return Err(SweepError::InvalidGrid(issues));
    }
    let started = Instant::now();
    let plan = grid.plan();

    // Materialise every trace once, binary-encoded; runs replay from bytes.
    let traces: Vec<Vec<u8>> = plan
        .traces
        .iter()
        .map(|t| rfp_runtime::write_scenario_bin(&t.workload().generate()))
        .collect();
    let trace_bytes: u64 = traces.iter().map(|t| t.len() as u64).sum();

    let cancel = options.cancel.child();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunMetrics>>> =
        plan.runs.iter().map(|_| Mutex::new(None)).collect();
    let over_budget: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..options.workers.max(1) {
            scope.spawn(|| loop {
                if cancel.is_cancelled() {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(run) = plan.runs.get(idx) else { break };
                let _run_scope = options.trace.as_ref().map(|h| h.install(&format!("run{idx:05}")));
                rfp_trace::count("sweep.runs", 1);
                let scenario = {
                    let _decode = rfp_trace::span("sweep.decode");
                    read_scenario_bin(&traces[run.trace])
                        .expect("traces materialised by this runner decode")
                };
                let config = OnlineConfig {
                    engine: grid.engine.clone(),
                    policy: run.policy,
                    engine_time_limit: grid.engine_time_limit,
                    ..OnlineConfig::default()
                };
                let run_started = Instant::now();
                let _simulate = rfp_trace::span("sweep.simulate");
                match simulate(&scenario, &config) {
                    Ok(sim) => {
                        if run_started.elapsed().as_secs_f64() > grid.run_budget_seconds {
                            rfp_trace::count("sweep.over_budget", 1);
                            over_budget.lock().expect("budget lock").push(idx);
                        }
                        *results[idx].lock().expect("slot lock") = Some(RunMetrics::from_sim(&sim));
                    }
                    Err(e) => {
                        let mut slot = first_error.lock().expect("error lock");
                        if slot.is_none() {
                            *slot = Some(SweepError::Sim(e.to_string()));
                        }
                        // Drain the pool without touching the caller's token.
                        cancel.cancel();
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("error lock") {
        return Err(e);
    }
    // Deferred merge, strictly in run-index order.
    let metrics: Vec<RunMetrics> = results
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").ok_or(SweepError::Cancelled))
        .collect::<Result<_, _>>()?;
    let run_cells: Vec<usize> = plan.runs.iter().map(|r| r.cell).collect();
    let report = aggregate(&grid.name, &grid.engine, &plan.cells, &run_cells, &metrics);
    let mut over_budget = over_budget.into_inner().expect("budget lock");
    over_budget.sort_unstable();
    Ok(SweepOutcome {
        report,
        wall_seconds: started.elapsed().as_secs_f64(),
        trace_bytes,
        over_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{DeviceAxis, DeviceFamily};
    use rfp_runtime::DefragPolicy;

    /// A 6-run grid small enough for unit tests: one device, one
    /// utilisation, three policies, two seeds.
    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            name: "tiny".to_string(),
            devices: vec![DeviceAxis {
                cols: 12,
                rows: 2,
                bram_every: 0,
                family: DeviceFamily::Columnar,
            }],
            utilisations: vec![0.6],
            lifetimes: vec![6],
            policies: DefragPolicy::ALL.to_vec(),
            seeds: vec![1, 2],
            modules: 8,
            checkpoint_every: 4,
            engine: "combinatorial".to_string(),
            engine_time_limit: 5.0,
            run_budget_seconds: 60.0,
        }
    }

    #[test]
    fn reports_are_byte_identical_at_any_worker_count() {
        let grid = tiny_grid();
        let serial = run_sweep(&grid, &SweepOptions { workers: 1, ..Default::default() })
            .expect("serial sweep");
        let parallel = run_sweep(&grid, &SweepOptions { workers: 4, ..Default::default() })
            .expect("parallel sweep");
        assert_eq!(serial.report.to_json(), parallel.report.to_json());
        assert_eq!(serial.report.runs, 6);
        assert!(serial.trace_bytes > 0);
    }

    #[test]
    fn no_break_cells_report_zero_downtime_and_runs_stay_clean() {
        let outcome = run_sweep(&tiny_grid(), &SweepOptions::default()).expect("sweep completes");
        assert_eq!(outcome.report.cells.len(), 3);
        for cell in &outcome.report.cells {
            assert_eq!(cell.violations, 0, "{}: {cell:?}", cell.key.policy.id());
            assert_eq!(cell.runs, 2);
            assert!(cell.arrivals > 0);
            if cell.key.policy == DefragPolicy::NoBreak {
                assert_eq!(
                    cell.downtime_frames.total, 0,
                    "no-break must never stop a module: {cell:?}"
                );
            } else {
                // Stop-and-move policies pay downtime for every frame moved.
                assert_eq!(
                    cell.downtime_frames.total,
                    cell.moved_frames.total,
                    "{}: {cell:?}",
                    cell.key.policy.id()
                );
            }
        }
    }

    #[test]
    fn a_cancelled_token_aborts_the_sweep() {
        let options = SweepOptions::default();
        options.cancel.cancel();
        assert_eq!(run_sweep(&tiny_grid(), &options), Err(SweepError::Cancelled));
    }

    #[test]
    fn bad_grids_and_engines_error_out() {
        let mut empty = tiny_grid();
        empty.seeds.clear();
        match run_sweep(&empty, &SweepOptions::default()) {
            Err(SweepError::InvalidGrid(issues)) => {
                assert!(issues.iter().any(|i| i.contains("seeds")), "{issues:?}")
            }
            other => panic!("expected InvalidGrid, got {other:?}"),
        }
        let mut bad_engine = tiny_grid();
        bad_engine.engine = "psychic".to_string();
        match run_sweep(&bad_engine, &SweepOptions::default()) {
            Err(SweepError::Sim(msg)) => assert!(msg.contains("psychic"), "{msg}"),
            other => panic!("expected Sim error, got {other:?}"),
        }
    }
}
