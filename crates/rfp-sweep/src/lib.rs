//! # rfp-sweep — Monte-Carlo fleet simulation harness
//!
//! The paper's runtime claims — relocation-aware floorplanning keeps
//! reconfiguration traffic low as utilisation rises, and no-break
//! defragmentation holds downtime at zero — need **distributions**, not
//! single-trace anecdotes. This crate turns the online simulator into a
//! fleet-scale study rig:
//!
//! * [`grid`] — the parameter grid ([`SweepGrid`]): device shapes ×
//!   utilisation targets × lifetime distributions × defragmentation
//!   policies × seeds, exchanged as `rfp-sweep-grid` v1 JSON and expanded
//!   into a deterministic work list ([`SweepGrid::plan`]).
//! * [`runner`] — [`run_sweep`]: a `std::thread::scope` worker pool over
//!   the run list, [`CancelToken`]-abortable, materialising each trace
//!   **once** as an `rfpb` binary document and replaying it per policy.
//!   Results merge *after* the pool joins, in run-index order.
//! * [`report`] — per-cell percentile statistics (admission rate,
//!   per-arrival latency in frames, moved/downtime frames, fragmentation
//!   summaries) rendered as the deterministic `rfp-sweep-report` v1 JSON.
//!
//! The report is **byte-stable regardless of worker count** — CI diffs a
//! 1-worker run against a 4-worker run byte-for-byte and gates on a
//! committed baseline. The one metric that is inherently nondeterministic
//! (wall-clock time) is returned out-of-band in [`SweepOutcome`] and never
//! enters the report; "latency" in the report is the deterministic
//! *reconfiguration* latency of an admission, counted in moved frames.
//!
//! The `rfp sweep` CLI subcommand drives this crate end to end.
//!
//! ## Example
//!
//! ```
//! use rfp_sweep::{run_sweep, SweepGrid, SweepOptions};
//!
//! let mut grid = SweepGrid::smoke();
//! grid.seeds.truncate(1); // keep the doctest quick
//! let outcome = run_sweep(&grid, &SweepOptions::default()).unwrap();
//! assert_eq!(outcome.report.cells.len(), 12);
//! assert!(outcome.report.cells.iter().all(|c| c.violations == 0));
//! ```
//!
//! [`CancelToken`]: rfp_floorplan::CancelToken

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod grid;
pub mod report;
pub mod runner;

pub use grid::{
    read_grid, write_grid, CellKey, DeviceAxis, DeviceFamily, GridPlan, RunSpec, SweepGrid,
    TraceSpec, GRID_FORMAT, GRID_VERSION,
};
pub use report::{
    aggregate, read_sweep_report, CellStats, RunMetrics, SweepReport, SWEEP_REPORT_FORMAT,
    SWEEP_REPORT_VERSION,
};
pub use runner::{run_sweep, SweepError, SweepOptions, SweepOutcome};
