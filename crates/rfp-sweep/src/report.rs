//! Sweep aggregation: per-run metric extraction, per-cell percentile
//! statistics and the deterministic `rfp-sweep-report` v1 JSON document.
//!
//! Determinism is the design constraint: the report must be **byte-stable
//! regardless of worker count**, because CI diffs the 1-worker and 4-worker
//! runs byte-for-byte. Three rules follow:
//!
//! * only deterministic quantities enter the report — event *latency* is
//!   measured in **frames moved** while handling the event (the
//!   reconfiguration cost the paper's Equation 13 prices), never in
//!   wall-clock seconds, which stay on stderr;
//! * integer samples aggregate through [`criterion::CountStats`]
//!   (nearest-rank percentiles of integer samples are exact);
//! * float accumulation happens in run-index order during the deferred
//!   merge, never in completion order.

use crate::grid::CellKey;
use criterion::{summarize_counts, CountStats};
use rfp_floorplan::jsonio::{escape, num, parse, JsonError, JsonValue};
use rfp_runtime::SimReport;
use std::fmt::Write as _;

/// Format tag of sweep-report documents.
pub const SWEEP_REPORT_FORMAT: &str = "rfp-sweep-report";
/// Current schema version of the sweep-report format.
pub const SWEEP_REPORT_VERSION: u64 = 1;

/// The deterministic extract of one simulation run — everything the
/// aggregator needs, nothing wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Arrival events in the run.
    pub arrivals: u64,
    /// Rejected arrivals.
    pub rejected: u64,
    /// Frames moved while handling each arrival, in stream order — the
    /// deterministic reconfiguration latency of that admission.
    pub latency_frames: Vec<u64>,
    /// Total frames moved over the run (any mechanism).
    pub moved_frames: u64,
    /// Total frames programmed while a module was stopped.
    pub downtime_frames: u64,
    /// Relocation-aware traffic cost ([`SimReport::relocation_cost`]).
    pub relocation_cost: f64,
    /// Arrivals that escalated to an engine re-solve.
    pub escalations: u64,
    /// Highest fragmentation observed after any event.
    pub max_fragmentation: f64,
    /// Fragmentation at each checkpoint, in stream order.
    pub checkpoint_fragmentation: Vec<f64>,
    /// Invariant violations (0 on a healthy run).
    pub violations: u64,
}

impl RunMetrics {
    /// Extracts the deterministic metrics from a simulation report.
    pub fn from_sim(report: &SimReport) -> RunMetrics {
        RunMetrics {
            arrivals: report.arrivals(),
            rejected: report.rejected(),
            latency_frames: report
                .events
                .iter()
                .filter(|e| e.kind == "arrive")
                .map(|e| e.frames_relocated + e.frames_resynthesized)
                .collect(),
            moved_frames: report.frames_moved(),
            downtime_frames: report.downtime_frames(),
            relocation_cost: report.relocation_cost(),
            escalations: report.escalations(),
            max_fragmentation: report.max_fragmentation(),
            checkpoint_fragmentation: report
                .events
                .iter()
                .filter(|e| e.kind == "checkpoint")
                .map(|e| e.fragmentation)
                .collect(),
            violations: report.violations(),
        }
    }
}

/// Aggregated statistics of one grid cell (all seeds pooled).
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Cell identity.
    pub key: CellKey,
    /// Monte-Carlo repetitions aggregated (the seed count).
    pub runs: usize,
    /// Arrivals pooled across repetitions.
    pub arrivals: u64,
    /// Rejected arrivals pooled across repetitions.
    pub rejected: u64,
    /// `(arrivals - rejected) / arrivals` (1 when there were no arrivals).
    pub admission_rate: f64,
    /// Per-arrival reconfiguration latency in frames, pooled.
    pub latency_frames: CountStats,
    /// Per-run total moved frames.
    pub moved_frames: CountStats,
    /// Per-run total downtime frames.
    pub downtime_frames: CountStats,
    /// Relocation-aware traffic cost summed across repetitions.
    pub relocation_cost: f64,
    /// Escalations summed across repetitions.
    pub escalations: u64,
    /// Highest fragmentation observed in any repetition.
    pub max_fragmentation: f64,
    /// Mean fragmentation over every checkpoint of every repetition (the
    /// fragmentation-curve summary; 0 when the trace has no checkpoints).
    pub mean_checkpoint_fragmentation: f64,
    /// Violations summed across repetitions (must be 0).
    pub violations: u64,
}

/// The outcome of a sweep: one [`CellStats`] per grid cell, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Name of the grid that produced the report.
    pub grid: String,
    /// Escalation engine the runs used.
    pub engine: String,
    /// Total simulation runs aggregated.
    pub runs: usize,
    /// Per-cell statistics, in the grid's deterministic cell order.
    pub cells: Vec<CellStats>,
}

/// Merges per-run metrics into per-cell statistics. `results[i]` must be
/// run `i`'s metrics (run-index order — the deferred-merge discipline) and
/// `run_cells[i]` names the cell run `i` belongs to.
pub fn aggregate(
    grid: &str,
    engine: &str,
    cells: &[CellKey],
    run_cells: &[usize],
    results: &[RunMetrics],
) -> SweepReport {
    assert_eq!(run_cells.len(), results.len(), "one cell index per result");
    let mut out = Vec::with_capacity(cells.len());
    for (c, key) in cells.iter().enumerate() {
        let mine: Vec<&RunMetrics> = run_cells
            .iter()
            .zip(results)
            .filter_map(|(&cell, m)| (cell == c).then_some(m))
            .collect();
        let arrivals: u64 = mine.iter().map(|m| m.arrivals).sum();
        let rejected: u64 = mine.iter().map(|m| m.rejected).sum();
        let latency: Vec<u64> =
            mine.iter().flat_map(|m| m.latency_frames.iter().copied()).collect();
        let frag: Vec<f64> =
            mine.iter().flat_map(|m| m.checkpoint_fragmentation.iter().copied()).collect();
        out.push(CellStats {
            key: key.clone(),
            runs: mine.len(),
            arrivals,
            rejected,
            admission_rate: if arrivals == 0 {
                1.0
            } else {
                (arrivals - rejected) as f64 / arrivals as f64
            },
            latency_frames: summarize_counts(&latency),
            moved_frames: summarize_counts(
                &mine.iter().map(|m| m.moved_frames).collect::<Vec<_>>(),
            ),
            downtime_frames: summarize_counts(
                &mine.iter().map(|m| m.downtime_frames).collect::<Vec<_>>(),
            ),
            relocation_cost: mine.iter().map(|m| m.relocation_cost).sum(),
            escalations: mine.iter().map(|m| m.escalations).sum(),
            max_fragmentation: mine.iter().map(|m| m.max_fragmentation).fold(0.0, f64::max),
            mean_checkpoint_fragmentation: if frag.is_empty() {
                0.0
            } else {
                frag.iter().sum::<f64>() / frag.len() as f64
            },
            violations: mine.iter().map(|m| m.violations).sum(),
        });
    }
    SweepReport {
        grid: grid.to_string(),
        engine: engine.to_string(),
        runs: results.len(),
        cells: out,
    }
}

fn write_counts(out: &mut String, name: &str, s: &CountStats) {
    let _ = write!(
        out,
        "\"{name}\":{{\"n\":{},\"total\":{},\"p50\":{},\"p95\":{},\"min\":{},\"max\":{}}}",
        s.n, s.total, s.p50, s.p95, s.min, s.max
    );
}

fn read_counts(v: &JsonValue) -> Result<CountStats, JsonError> {
    Ok(CountStats {
        n: v.field("n")?.as_u64()? as usize,
        total: v.field("total")?.as_u64()?,
        p50: v.field("p50")?.as_u64()?,
        p95: v.field("p95")?.as_u64()?,
        min: v.field("min")?.as_u64()?,
        max: v.field("max")?.as_u64()?,
    })
}

impl SweepReport {
    /// Renders the report as a deterministic JSON document (trailing
    /// newline) — the byte-diffed CI artifact and regression baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{SWEEP_REPORT_FORMAT}\",");
        let _ = writeln!(out, "  \"version\": {SWEEP_REPORT_VERSION},");
        let _ = writeln!(out, "  \"grid\": \"{}\",", escape(&self.grid));
        let _ = writeln!(out, "  \"engine\": \"{}\",", escape(&self.engine));
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"device\":\"{}\",\"utilisation\":{},\"mean_lifetime\":{},\
                 \"policy\":\"{}\",\"runs\":{},\"arrivals\":{},\"rejected\":{},\
                 \"admission_rate\":{},",
                escape(&c.key.device),
                num(c.key.utilisation),
                c.key.mean_lifetime,
                c.key.policy.id(),
                c.runs,
                c.arrivals,
                c.rejected,
                num(c.admission_rate),
            );
            write_counts(&mut out, "latency_frames", &c.latency_frames);
            out.push(',');
            write_counts(&mut out, "moved_frames", &c.moved_frames);
            out.push(',');
            write_counts(&mut out, "downtime_frames", &c.downtime_frames);
            let _ = write!(
                out,
                ",\"relocation_cost\":{},\"escalations\":{},\"max_fragmentation\":{},\
                 \"mean_checkpoint_fragmentation\":{},\"violations\":{}}}",
                num(c.relocation_cost),
                c.escalations,
                num(c.max_fragmentation),
                num(c.mean_checkpoint_fragmentation),
                c.violations
            );
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n");
        out.push_str("}\n");
        out
    }
}

/// Parses an `rfp-sweep-report` v1 document.
pub fn read_sweep_report(input: &str) -> Result<SweepReport, JsonError> {
    let doc = parse(input)?;
    let tag = doc.field("format")?.as_str()?;
    if tag != SWEEP_REPORT_FORMAT {
        return Err(JsonError(format!("expected format `{SWEEP_REPORT_FORMAT}`, found `{tag}`")));
    }
    let version = doc.field("version")?.as_u64()?;
    if version != SWEEP_REPORT_VERSION {
        return Err(JsonError(format!(
            "unsupported {SWEEP_REPORT_FORMAT} version {version} (this build reads version \
             {SWEEP_REPORT_VERSION})"
        )));
    }
    let mut cells = Vec::new();
    for c in doc.field("cells")?.as_arr()? {
        let policy_id = c.field("policy")?.as_str()?;
        cells.push(CellStats {
            key: CellKey {
                device: c.field("device")?.as_str()?.to_string(),
                utilisation: c.field("utilisation")?.as_f64()?,
                mean_lifetime: c.field("mean_lifetime")?.as_u64()?,
                policy: rfp_runtime::DefragPolicy::from_id(policy_id)
                    .ok_or_else(|| JsonError(format!("unknown policy `{policy_id}`")))?,
            },
            runs: c.field("runs")?.as_u64()? as usize,
            arrivals: c.field("arrivals")?.as_u64()?,
            rejected: c.field("rejected")?.as_u64()?,
            admission_rate: c.field("admission_rate")?.as_f64()?,
            latency_frames: read_counts(c.field("latency_frames")?)?,
            moved_frames: read_counts(c.field("moved_frames")?)?,
            downtime_frames: read_counts(c.field("downtime_frames")?)?,
            relocation_cost: c.field("relocation_cost")?.as_f64()?,
            escalations: c.field("escalations")?.as_u64()?,
            max_fragmentation: c.field("max_fragmentation")?.as_f64()?,
            mean_checkpoint_fragmentation: c.field("mean_checkpoint_fragmentation")?.as_f64()?,
            violations: c.field("violations")?.as_u64()?,
        });
    }
    Ok(SweepReport {
        grid: doc.field("grid")?.as_str()?.to_string(),
        engine: doc.field("engine")?.as_str()?.to_string(),
        runs: doc.field("runs")?.as_u64()? as usize,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_runtime::DefragPolicy;

    fn metrics(latency: &[u64], moved: u64, downtime: u64, rejected: u64) -> RunMetrics {
        RunMetrics {
            arrivals: latency.len() as u64,
            rejected,
            latency_frames: latency.to_vec(),
            moved_frames: moved,
            downtime_frames: downtime,
            relocation_cost: moved as f64,
            escalations: u64::from(moved > 100),
            max_fragmentation: 0.5,
            checkpoint_fragmentation: vec![0.25, 0.75],
            violations: 0,
        }
    }

    fn keys() -> Vec<CellKey> {
        vec![
            CellKey {
                device: "12x2".into(),
                utilisation: 0.5,
                mean_lifetime: 6,
                policy: DefragPolicy::RelocationAware,
            },
            CellKey {
                device: "12x2".into(),
                utilisation: 0.5,
                mean_lifetime: 6,
                policy: DefragPolicy::NoBreak,
            },
        ]
    }

    #[test]
    fn aggregation_pools_seeds_per_cell() {
        let results = vec![
            metrics(&[0, 36, 72], 108, 108, 0),
            metrics(&[36, 36, 180], 252, 252, 1),
            metrics(&[0, 0, 0], 0, 0, 0),
            metrics(&[72, 0, 0], 72, 0, 0),
        ];
        let report = aggregate("g", "combinatorial", &keys(), &[0, 0, 1, 1], &results);
        assert_eq!(report.runs, 4);
        assert_eq!(report.cells.len(), 2);
        let aware = &report.cells[0];
        assert_eq!(aware.runs, 2);
        assert_eq!(aware.arrivals, 6);
        assert_eq!(aware.rejected, 1);
        assert_eq!(aware.admission_rate, 5.0 / 6.0);
        assert_eq!(aware.latency_frames.n, 6);
        assert_eq!(aware.latency_frames.p50, 36);
        assert_eq!(aware.latency_frames.max, 180);
        assert_eq!(aware.moved_frames.total, 360);
        assert_eq!(aware.downtime_frames.total, 360);
        assert_eq!(aware.mean_checkpoint_fragmentation, 0.5);
        let no_break = &report.cells[1];
        assert_eq!(no_break.downtime_frames.total, 0);
        assert_eq!(no_break.admission_rate, 1.0);
    }

    #[test]
    fn aggregation_is_independent_of_result_ordering_within_the_merge() {
        // The merge always receives results in run-index order; this pins
        // that equal inputs produce byte-equal reports (the property the
        // worker pool's deferred merge relies on).
        let results = vec![metrics(&[5], 5, 0, 0), metrics(&[9], 9, 0, 0), metrics(&[1], 1, 0, 0)];
        let a = aggregate("g", "e", &keys(), &[0, 1, 0], &results);
        let b = aggregate("g", "e", &keys(), &[0, 1, 0], &results.clone());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn reports_round_trip_byte_stable() {
        let results = vec![metrics(&[0, 36], 36, 36, 1), metrics(&[], 0, 0, 0)];
        let report = aggregate("smoke", "combinatorial", &keys(), &[0, 1], &results);
        let doc = report.to_json();
        let back = read_sweep_report(&doc).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn foreign_and_future_documents_are_rejected() {
        let doc = aggregate("g", "e", &keys(), &[], &[]).to_json();
        assert!(read_sweep_report(&doc.replace(SWEEP_REPORT_FORMAT, "rfp-problem"))
            .unwrap_err()
            .0
            .contains("expected format"));
        assert!(read_sweep_report(&doc.replace("\"version\": 1", "\"version\": 9"))
            .unwrap_err()
            .0
            .contains("version 9"));
    }

    #[test]
    fn empty_cells_report_full_admission() {
        let report = aggregate("g", "e", &keys(), &[], &[]);
        assert_eq!(report.cells[0].runs, 0);
        assert_eq!(report.cells[0].admission_rate, 1.0);
        assert_eq!(report.cells[0].latency_frames, CountStats::empty());
    }
}
