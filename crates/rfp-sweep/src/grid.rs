//! The parameter grid: what a sweep runs, as data.
//!
//! A [`SweepGrid`] names the axes of a Monte-Carlo study — device shapes ×
//! utilisation targets × lifetime distributions × defragmentation policies ×
//! seeds — plus the fixed per-run knobs (modules per trace, escalation
//! engine, budgets). [`SweepGrid::plan`] expands the axes into the concrete
//! work list: one **cell** per (device, utilisation, lifetime, policy), one
//! **trace** per (device, utilisation, lifetime, seed) — deliberately
//! policy-independent, so every policy replays the *same* materialised trace
//! — and one **run** per (cell, seed).
//!
//! Grids are exchanged as `rfp-sweep-grid` v1 JSON documents (deterministic
//! writer, golden-file friendly):
//!
//! ```json
//! {
//!   "format": "rfp-sweep-grid",
//!   "version": 1,
//!   "name": "smoke",
//!   "devices": [ {"cols":12,"rows":2,"bram_every":0} ],
//!   "utilisations": [0.5,0.75],
//!   "lifetimes": [6],
//!   "policies": ["aware","oblivious","no_break"],
//!   "seeds": [1,2],
//!   "modules": 12,
//!   "checkpoint_every": 6,
//!   "engine": "combinatorial",
//!   "engine_time_limit": 5,
//!   "run_budget_seconds": 60
//! }
//! ```

use rfp_floorplan::jsonio::{escape, num, parse, JsonError, JsonValue};
use rfp_runtime::DefragPolicy;
use rfp_workloads::DefragWorkloadSpec;
use std::fmt::Write as _;

/// Format tag of sweep-grid documents.
pub const GRID_FORMAT: &str = "rfp-sweep-grid";
/// Current schema version of the sweep-grid format.
pub const GRID_VERSION: u64 = 1;

/// Device family of one device-axis point: how the tile fabric is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceFamily {
    /// Homogeneous columnar device (the paper's Virtex-style fabric) —
    /// the default, and what every pre-existing grid document means.
    #[default]
    Columnar,
    /// Heterogeneous fabric: BRAM columns are row-striped (no columnar
    /// partition exists) and a die boundary splits the device at
    /// mid-height (see [`DefragWorkloadSpec::hetero`]).
    Hetero,
}

impl DeviceFamily {
    /// Stable string id used in grid documents.
    pub fn id(&self) -> &'static str {
        match self {
            DeviceFamily::Columnar => "columnar",
            DeviceFamily::Hetero => "hetero",
        }
    }

    /// Parses a stable id back into a family.
    pub fn from_id(id: &str) -> Option<DeviceFamily> {
        match id {
            "columnar" => Some(DeviceFamily::Columnar),
            "hetero" => Some(DeviceFamily::Hetero),
            _ => None,
        }
    }
}

/// One point on the device axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceAxis {
    /// Device columns.
    pub cols: u32,
    /// Device rows.
    pub rows: u32,
    /// Every `bram_every`-th column is a BRAM column (0 = all-CLB).
    pub bram_every: u32,
    /// Fabric family of the device (columnar vs heterogeneous).
    pub family: DeviceFamily,
}

impl DeviceAxis {
    /// Stable label used in cell keys (`"16x3"`, `"16x3+bram4"`,
    /// `"16x3+bram4+hetero"`).
    pub fn label(&self) -> String {
        let mut label = format!("{}x{}", self.cols, self.rows);
        if self.bram_every > 0 {
            label.push_str(&format!("+bram{}", self.bram_every));
        }
        if self.family == DeviceFamily::Hetero {
            label.push_str("+hetero");
        }
        label
    }

    /// Total tiles on the device.
    pub fn tiles(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }
}

/// The axes and fixed knobs of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Grid name (carried into the report).
    pub name: String,
    /// Device shapes to sweep.
    pub devices: Vec<DeviceAxis>,
    /// Target steady-state utilisations in `(0, 1]` (fraction of device
    /// tiles occupied by concurrently-running modules).
    pub utilisations: Vec<f64>,
    /// Mean module lifetimes (logical time units; see
    /// [`DefragWorkloadSpec::mean_lifetime`]).
    pub lifetimes: Vec<u64>,
    /// Defragmentation policies to compare.
    pub policies: Vec<DefragPolicy>,
    /// RNG seeds — one Monte-Carlo repetition per seed.
    pub seeds: Vec<u64>,
    /// Module instances per generated trace.
    pub modules: usize,
    /// Checkpoint cadence of generated traces (events per checkpoint;
    /// 0 disables all but the final checkpoint).
    pub checkpoint_every: usize,
    /// Registry engine used for escalation re-solves.
    pub engine: String,
    /// Wall-clock budget (seconds) per escalation re-solve.
    pub engine_time_limit: f64,
    /// Advisory wall-clock budget (seconds) per simulation run; runs that
    /// exceed it are flagged by the runner (stderr), never killed mid-run.
    pub run_budget_seconds: f64,
}

impl SweepGrid {
    /// The committed CI smoke grid: 2 devices × 2 utilisations × 1 lifetime
    /// × 3 policies × 2 seeds = 12 cells, 24 runs — small enough for a CI
    /// smoke job, wide enough to cover every policy on two device shapes.
    pub fn smoke() -> SweepGrid {
        SweepGrid {
            name: "smoke".to_string(),
            devices: vec![
                DeviceAxis { cols: 12, rows: 2, bram_every: 0, family: DeviceFamily::Columnar },
                DeviceAxis { cols: 16, rows: 3, bram_every: 0, family: DeviceFamily::Columnar },
            ],
            // 0.75 is the highest pressure at which the no-break policy can
            // still double-buffer every move on these devices — the committed
            // baseline pins its downtime at zero, so the smoke grid stays
            // inside that regime (see the defrag_sim bench for the scarce-
            // shadow cases beyond it).
            utilisations: vec![0.5, 0.75],
            lifetimes: vec![6],
            policies: DefragPolicy::ALL.to_vec(),
            seeds: vec![1, 2],
            modules: 12,
            checkpoint_every: 6,
            engine: "combinatorial".to_string(),
            engine_time_limit: 5.0,
            run_budget_seconds: 60.0,
        }
    }

    /// Structural validation: every axis non-empty, utilisations in
    /// `(0, 1]`, positive module count. Returns human-readable issues.
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        let mut axis = |name: &str, empty: bool| {
            if empty {
                issues.push(format!("axis `{name}` is empty"));
            }
        };
        axis("devices", self.devices.is_empty());
        axis("utilisations", self.utilisations.is_empty());
        axis("lifetimes", self.lifetimes.is_empty());
        axis("policies", self.policies.is_empty());
        axis("seeds", self.seeds.is_empty());
        for &u in &self.utilisations {
            if !(u > 0.0 && u <= 1.0) {
                issues.push(format!("utilisation {} outside (0, 1]", num(u)));
            }
        }
        for d in &self.devices {
            if d.cols == 0 || d.rows == 0 {
                issues.push(format!("degenerate device {}", d.label()));
            }
        }
        if self.modules == 0 {
            issues.push("modules must be positive".to_string());
        }
        issues
    }

    /// Expands the axes into the concrete work list. Ordering is the
    /// deterministic row-major nesting of the axes (devices → utilisations →
    /// lifetimes → policies for cells, seeds innermost for runs), which is
    /// what makes the merged report independent of execution order.
    pub fn plan(&self) -> GridPlan {
        let mut cells = Vec::new();
        let mut traces = Vec::new();
        let mut runs = Vec::new();
        for &device in &self.devices {
            for &utilisation in &self.utilisations {
                for &mean_lifetime in &self.lifetimes {
                    // One trace per seed, shared by every policy cell.
                    let trace_base = traces.len();
                    for &seed in &self.seeds {
                        traces.push(TraceSpec {
                            device,
                            utilisation,
                            mean_lifetime,
                            seed,
                            modules: self.modules,
                            checkpoint_every: self.checkpoint_every,
                        });
                    }
                    for &policy in &self.policies {
                        let cell = cells.len();
                        cells.push(CellKey {
                            device: device.label(),
                            utilisation,
                            mean_lifetime,
                            policy,
                        });
                        for (s, &seed) in self.seeds.iter().enumerate() {
                            runs.push(RunSpec {
                                index: runs.len(),
                                cell,
                                trace: trace_base + s,
                                policy,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        GridPlan { cells, traces, runs }
    }
}

/// Identity of one aggregation cell (everything but the seed axis).
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Device label ([`DeviceAxis::label`]).
    pub device: String,
    /// Target utilisation.
    pub utilisation: f64,
    /// Mean module lifetime.
    pub mean_lifetime: u64,
    /// Defragmentation policy.
    pub policy: DefragPolicy,
}

/// One trace to materialise: a seeded workload at a grid point, shared by
/// every policy cell of that point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Device shape.
    pub device: DeviceAxis,
    /// Target utilisation.
    pub utilisation: f64,
    /// Mean module lifetime.
    pub mean_lifetime: u64,
    /// RNG seed.
    pub seed: u64,
    /// Module instances in the trace.
    pub modules: usize,
    /// Checkpoint cadence.
    pub checkpoint_every: usize,
}

impl TraceSpec {
    /// Maps the grid point onto a [`DefragWorkloadSpec`].
    ///
    /// Arrivals are spaced 1-2 time units apart (mean 1.5), so roughly
    /// `mean_lifetime / 1.5` modules run concurrently in steady state.
    /// Hitting a target utilisation `u` therefore needs a mean module size
    /// of `u × device_tiles / concurrent`; the generator draws uniformly,
    /// so the min/max bounds are set to ±40 % around that mean.
    pub fn workload(&self) -> DefragWorkloadSpec {
        let concurrent = (self.mean_lifetime as f64 / 1.5).max(1.0);
        let mean_tiles = (self.utilisation * self.device.tiles() as f64 / concurrent).max(1.0);
        let min_tiles = ((mean_tiles * 0.6).round() as u32).max(1);
        let max_tiles = ((mean_tiles * 1.4).round() as u32).max(min_tiles);
        DefragWorkloadSpec {
            seed: self.seed,
            cols: self.device.cols,
            rows: self.device.rows,
            bram_every: self.device.bram_every,
            n_modules: self.modules,
            min_tiles,
            max_tiles: max_tiles.min(self.device.tiles().min(u64::from(u32::MAX)) as u32),
            mean_lifetime: self.mean_lifetime,
            checkpoint_every: self.checkpoint_every,
            hetero: self.device.family == DeviceFamily::Hetero,
        }
    }
}

/// The expanded work list of a grid ([`SweepGrid::plan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GridPlan {
    /// Aggregation cells, in deterministic axis order.
    pub cells: Vec<CellKey>,
    /// Traces to materialise (policy-independent).
    pub traces: Vec<TraceSpec>,
    /// Simulation runs; `runs[i].index == i`.
    pub runs: Vec<RunSpec>,
}

/// One simulation to execute: a trace replayed under a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Position in the run list (the deterministic merge key).
    pub index: usize,
    /// Cell this run's metrics aggregate into.
    pub cell: usize,
    /// Trace to replay.
    pub trace: usize,
    /// Policy to replay it under.
    pub policy: DefragPolicy,
    /// Seed of the trace (carried for labelling).
    pub seed: u64,
}

// ---------------------------------------------------------------------------
// `rfp-sweep-grid` v1 writer / reader.
// ---------------------------------------------------------------------------

/// Renders a grid as an `rfp-sweep-grid` v1 JSON document (deterministic,
/// trailing newline — usable as a golden file).
pub fn write_grid(grid: &SweepGrid) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{GRID_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {GRID_VERSION},");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(&grid.name));
    out.push_str("  \"devices\": [");
    for (i, d) in grid.devices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `family` is emitted only when non-default, so every pre-existing
        // (columnar) grid document stays byte-identical.
        let family = match d.family {
            DeviceFamily::Columnar => String::new(),
            family => format!(",\"family\":\"{}\"", family.id()),
        };
        let _ = write!(
            out,
            "\n    {{\"cols\":{},\"rows\":{},\"bram_every\":{}{family}}}",
            d.cols, d.rows, d.bram_every
        );
    }
    out.push_str(if grid.devices.is_empty() { "],\n" } else { "\n  ],\n" });
    let floats = |xs: &[f64]| xs.iter().map(|&x| num(x)).collect::<Vec<_>>().join(",");
    let ints = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    let _ = writeln!(out, "  \"utilisations\": [{}],", floats(&grid.utilisations));
    let _ = writeln!(out, "  \"lifetimes\": [{}],", ints(&grid.lifetimes));
    let policies =
        grid.policies.iter().map(|p| format!("\"{}\"", p.id())).collect::<Vec<_>>().join(",");
    let _ = writeln!(out, "  \"policies\": [{policies}],");
    let _ = writeln!(out, "  \"seeds\": [{}],", ints(&grid.seeds));
    let _ = writeln!(out, "  \"modules\": {},", grid.modules);
    let _ = writeln!(out, "  \"checkpoint_every\": {},", grid.checkpoint_every);
    let _ = writeln!(out, "  \"engine\": \"{}\",", escape(&grid.engine));
    let _ = writeln!(out, "  \"engine_time_limit\": {},", num(grid.engine_time_limit));
    let _ = writeln!(out, "  \"run_budget_seconds\": {}", num(grid.run_budget_seconds));
    out.push_str("}\n");
    out
}

/// Parses an `rfp-sweep-grid` v1 document and validates it structurally.
pub fn read_grid(input: &str) -> Result<SweepGrid, JsonError> {
    let doc = parse(input)?;
    let tag = doc.field("format")?.as_str()?;
    if tag != GRID_FORMAT {
        return Err(JsonError(format!("expected format `{GRID_FORMAT}`, found `{tag}`")));
    }
    let version = doc.field("version")?.as_u64()?;
    if version != GRID_VERSION {
        return Err(JsonError(format!(
            "unsupported {GRID_FORMAT} version {version} (this build reads version \
             {GRID_VERSION})"
        )));
    }
    let mut devices = Vec::new();
    for d in doc.field("devices")?.as_arr()? {
        // `family` is optional: documents written before the device-family
        // axis existed (and all columnar entries since) omit it.
        let family = match d.get("family") {
            Some(v) => {
                let id = v.as_str()?;
                DeviceFamily::from_id(id)
                    .ok_or_else(|| JsonError(format!("unknown device family `{id}`")))?
            }
            None => DeviceFamily::Columnar,
        };
        devices.push(DeviceAxis {
            cols: d.field("cols")?.as_u32()?,
            rows: d.field("rows")?.as_u32()?,
            bram_every: d.field("bram_every")?.as_u32()?,
            family,
        });
    }
    let f64s = |v: &JsonValue| -> Result<Vec<f64>, JsonError> {
        v.as_arr()?.iter().map(|x| x.as_f64()).collect()
    };
    let u64s = |v: &JsonValue| -> Result<Vec<u64>, JsonError> {
        v.as_arr()?.iter().map(|x| x.as_u64()).collect()
    };
    let mut policies = Vec::new();
    for p in doc.field("policies")?.as_arr()? {
        let id = p.as_str()?;
        policies.push(
            DefragPolicy::from_id(id).ok_or_else(|| JsonError(format!("unknown policy `{id}`")))?,
        );
    }
    let grid = SweepGrid {
        name: doc.field("name")?.as_str()?.to_string(),
        devices,
        utilisations: f64s(doc.field("utilisations")?)?,
        lifetimes: u64s(doc.field("lifetimes")?)?,
        policies,
        seeds: u64s(doc.field("seeds")?)?,
        modules: doc.field("modules")?.as_u64()? as usize,
        checkpoint_every: doc.field("checkpoint_every")?.as_u64()? as usize,
        engine: doc.field("engine")?.as_str()?.to_string(),
        engine_time_limit: doc.field("engine_time_limit")?.as_f64()?,
        run_budget_seconds: doc.field("run_budget_seconds")?.as_f64()?,
    };
    let issues = grid.validate();
    if !issues.is_empty() {
        return Err(JsonError(format!("invalid grid: {}", issues.join("; "))));
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_round_trip_byte_stable() {
        let grid = SweepGrid::smoke();
        let doc = write_grid(&grid);
        let back = read_grid(&doc).unwrap();
        assert_eq!(back, grid);
        assert_eq!(write_grid(&back), doc);
    }

    #[test]
    fn the_smoke_plan_shares_traces_across_policies() {
        let grid = SweepGrid::smoke();
        assert!(grid.validate().is_empty());
        let plan = grid.plan();
        // 2 devices x 2 utilisations x 1 lifetime x 3 policies, 2 seeds each.
        assert_eq!(plan.cells.len(), 2 * 2 * 3);
        assert_eq!(plan.runs.len(), plan.cells.len() * 2);
        assert_eq!(plan.traces.len(), 2 * 2 * 2, "traces must be policy-independent");
        for (i, run) in plan.runs.iter().enumerate() {
            assert_eq!(run.index, i);
            assert_eq!(plan.cells[run.cell].policy, run.policy);
            assert_eq!(plan.traces[run.trace].seed, run.seed);
        }
        // All three policies of one grid point replay the same trace.
        let first_point: Vec<_> = plan.runs.iter().filter(|r| r.seed == 1).take(3).collect();
        assert!(first_point.windows(2).all(|w| w[0].trace == w[1].trace));
    }

    #[test]
    fn utilisation_scales_module_sizes() {
        let base = TraceSpec {
            device: DeviceAxis { cols: 16, rows: 3, bram_every: 0, family: DeviceFamily::Columnar },
            utilisation: 0.5,
            mean_lifetime: 6,
            seed: 1,
            modules: 12,
            checkpoint_every: 6,
        };
        let low = base.workload();
        let high = TraceSpec { utilisation: 0.9, ..base }.workload();
        assert!(high.min_tiles >= low.min_tiles);
        assert!(high.max_tiles > low.max_tiles, "{low:?} vs {high:?}");
        assert!(u64::from(high.max_tiles) <= base.device.tiles());
        // The workload itself stays reproducible.
        assert_eq!(low.generate(), low.generate());
    }

    #[test]
    fn hetero_device_entries_round_trip_and_label_distinctly() {
        let mut grid = SweepGrid::smoke();
        grid.devices
            .push(DeviceAxis { cols: 16, rows: 4, bram_every: 4, family: DeviceFamily::Hetero });
        let doc = write_grid(&grid);
        assert!(doc.contains("\"family\":\"hetero\""));
        // Columnar entries never gain the field, so pre-existing documents
        // stay byte-identical.
        assert_eq!(doc.matches("\"family\"").count(), 1);
        let back = read_grid(&doc).unwrap();
        assert_eq!(back, grid);
        assert_eq!(write_grid(&back), doc);
        assert_eq!(back.devices[2].label(), "16x4+bram4+hetero");
        // The hetero flag flows into the materialised workloads.
        let plan = back.plan();
        let hetero_traces: Vec<_> =
            plan.traces.iter().filter(|t| t.device.family == DeviceFamily::Hetero).collect();
        assert!(!hetero_traces.is_empty());
        for t in hetero_traces {
            let w = t.workload();
            assert!(w.hetero);
            let scenario = w.generate();
            assert!(!scenario.partition.is_columnar_legacy());
        }
        let bad = doc.replace("\"family\":\"hetero\"", "\"family\":\"psychic\"");
        assert!(read_grid(&bad).unwrap_err().0.contains("unknown device family"));
    }

    #[test]
    fn malformed_grids_are_rejected() {
        let doc = write_grid(&SweepGrid::smoke());
        let wrong = doc.replace(GRID_FORMAT, "rfp-problem");
        assert!(read_grid(&wrong).unwrap_err().0.contains("expected format"));
        let future = doc.replace("\"version\": 1", "\"version\": 9");
        assert!(read_grid(&future).unwrap_err().0.contains("version 9"));
        let bad_policy = doc.replace("\"oblivious\"", "\"psychic\"");
        assert!(read_grid(&bad_policy).unwrap_err().0.contains("unknown policy `psychic`"));
        let no_seeds = doc.replace("\"seeds\": [1,2]", "\"seeds\": []");
        assert!(read_grid(&no_seeds).unwrap_err().0.contains("`seeds` is empty"));
        let bad_util = doc.replace("[0.5,0.75]", "[0.5,1.75]");
        assert!(read_grid(&bad_util).unwrap_err().0.contains("outside (0, 1]"));
    }
}
