//! Property-based tests of the columnar partitioning and compatibility
//! invariants (Section III of the paper) on randomly generated devices.

use proptest::prelude::*;
use rfp_device::compat::{
    areas_compatible, columnar_compatible, enumerate_free_compatible, fabric_compatible,
};
use rfp_device::fabric::{fabric_partition, fabric_partition_with_boundaries};
use rfp_device::{
    columnar_partition, Device, PortionId, Rect, ResourceVec, SyntheticSpec, TileGrid, TileType,
    TileTypeRegistry,
};

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (4u32..40, 2u32..10, 0u32..8, 0u32..12, proptest::option::of((1u32..4, 1u32..3))).prop_map(
        |(cols, rows, bram_every, dsp_every, hard_block)| SyntheticSpec {
            name: "prop-device".to_string(),
            cols,
            rows,
            bram_every,
            dsp_every,
            // Only keep hard blocks that leave part of every column free.
            hard_block: hard_block.filter(|&(w, h)| w < cols && h < rows),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every synthetic columnar device partitions successfully and the
    /// resulting portions satisfy Properties .3 and .4 of the paper:
    /// adjacent portions have different tile types and portions are ordered
    /// left to right, covering every column exactly once.
    #[test]
    fn partitioning_satisfies_properties_3_and_4(spec in arb_spec()) {
        let device = spec.build().unwrap();
        let partition = columnar_partition(&device).unwrap();
        // Property .4: ordered left to right, covering all columns exactly once.
        let mut next_col = 1u32;
        for p in &partition.portions {
            prop_assert_eq!(p.x1, next_col);
            prop_assert!(p.x2 >= p.x1);
            next_col = p.x2 + 1;
        }
        prop_assert_eq!(next_col, partition.cols + 1);
        // Property .3: adjacent portions have different tile types.
        for w in partition.portions.windows(2) {
            prop_assert_ne!(w[0].tile_type, w[1].tile_type);
        }
        // The dense MILP type ids are 1-based and bounded by nTypes.
        for i in 0..partition.n_portions() {
            let tid = partition.tid(PortionId(i));
            prop_assert!(tid >= 1 && tid <= partition.n_types());
        }
    }

    /// Frame and resource accounting is additive: splitting a rectangle into
    /// a left part and a right part never changes the totals.
    #[test]
    fn rect_accounting_is_additive(spec in arb_spec(), split in 1u32..40) {
        let device = spec.build().unwrap();
        let partition = columnar_partition(&device).unwrap();
        let full = Rect::new(1, 1, partition.cols, partition.rows);
        let split = split.min(partition.cols.saturating_sub(1)).max(1);
        if split >= partition.cols {
            return Ok(());
        }
        let left = Rect::new(1, 1, split, partition.rows);
        let right = Rect::new(split + 1, 1, partition.cols - split, partition.rows);
        prop_assert_eq!(
            partition.frames_in_rect(&full),
            partition.frames_in_rect(&left) + partition.frames_in_rect(&right)
        );
        let l = partition.resources_in_rect(&left);
        let r = partition.resources_in_rect(&right);
        prop_assert_eq!(partition.resources_in_rect(&full), l + r);
    }

    /// Compatibility is invariant under vertical translation on columnar
    /// devices: moving both areas by the same row offset never changes the
    /// verdict, and moving a single area vertically (within bounds) never
    /// changes it either, because tile types only depend on the column.
    #[test]
    fn compatibility_depends_only_on_columns(
        spec in arb_spec(),
        x1 in 1u32..40, x2 in 1u32..40,
        w in 1u32..6, h in 1u32..4,
    ) {
        let spec = SyntheticSpec { hard_block: None, ..spec };
        let device = spec.build().unwrap();
        let partition = columnar_partition(&device).unwrap();
        let cols = partition.cols;
        let rows = partition.rows;
        let w = w.min(cols);
        let h = h.min(rows);
        let x1 = x1.min(cols - w + 1);
        let x2 = x2.min(cols - w + 1);
        let a = Rect::new(x1, 1, w, h);
        let b = Rect::new(x2, 1, w, h);
        let verdict = columnar_compatible(&partition, &a, &b).is_compatible();
        for dy in 0..(rows - h) {
            let b_shifted = Rect::new(x2, 1 + dy, w, h);
            prop_assert_eq!(
                columnar_compatible(&partition, &a, &b_shifted).is_compatible(),
                verdict
            );
        }
    }

    /// The free-compatible enumeration never returns the source, never
    /// returns overlapping pairs of results for disjoint occupancy sets, and
    /// every returned rectangle is in bounds and legal.
    #[test]
    fn free_compatible_enumeration_is_well_formed(
        spec in arb_spec(),
        x in 1u32..40, y in 1u32..10, w in 1u32..5, h in 1u32..4,
    ) {
        let device = spec.build().unwrap();
        let partition = fabric_partition(&device).unwrap();
        let columnar = columnar_partition(&device).unwrap();
        let cols = partition.cols;
        let rows = partition.rows;
        let w = w.min(cols);
        let h = h.min(rows);
        let source = Rect::new(x.min(cols - w + 1), y.min(rows - h + 1), w, h);
        let occupied = vec![source];
        let found = enumerate_free_compatible(&partition, &source, &occupied);
        for cand in &found {
            prop_assert!(cand != &source);
            prop_assert!(partition.rect_in_bounds(cand));
            prop_assert!(!partition.rect_crosses_forbidden(cand));
            prop_assert!(!cand.overlaps(&source));
            prop_assert!(columnar_compatible(&columnar, &source, cand).is_compatible());
        }
    }

    /// `fabric_compatible` bit-agrees with `columnar_compatible` — the exact
    /// same `CompatReport`, not just the same verdict — on every columnar
    /// device (the behaviour-preservation pin of the fabric refactor).
    #[test]
    fn fabric_compatible_bit_agrees_with_columnar_compatible(
        spec in arb_spec(),
        ax in 1u32..40, ay in 1u32..10,
        bx in 1u32..40, by in 1u32..10,
        sz in (1u32..6, 1u32..4, 1u32..6, 1u32..4),
    ) {
        let (w, h, w2, h2) = sz;
        let device = spec.build().unwrap();
        let columnar = columnar_partition(&device).unwrap();
        let fabric = fabric_partition(&device).unwrap();
        prop_assert!(fabric.is_columnar_legacy());
        let cols = columnar.cols;
        let rows = columnar.rows;
        // Bias towards in-bounds rects but keep some out-of-bounds probes.
        let a = Rect::new(ax.min(cols), ay.min(rows), w, h);
        let b = Rect::new(bx.min(cols), by.min(rows), w2, h2);
        prop_assert_eq!(
            fabric_compatible(&fabric, &a, &b),
            columnar_compatible(&columnar, &a, &b),
            "fabric/columnar disagreement for {} vs {}", a, b
        );
    }
}

/// A random genuinely heterogeneous fabric: per-cell tile types drawn from
/// three types, plus optional die boundaries.
fn arb_hetero_device() -> impl Strategy<Value = (Device, Vec<u32>)> {
    (3u32..10, 3u32..8).prop_flat_map(|(cols, rows)| {
        let n = (cols * rows) as usize;
        (
            Just(cols),
            Just(rows),
            proptest::collection::vec(0u16..3, n),
            proptest::collection::vec(1u32..8, 0..3),
        )
            .prop_map(|(cols, rows, types, raw_bounds)| {
                let mut reg = TileTypeRegistry::new();
                let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
                let bram =
                    reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap();
                let dsp = reg.register(TileType::new("DSP", ResourceVec::new(0, 0, 1), 28)).unwrap();
                let palette = [clb, bram, dsp];
                let mut grid = TileGrid::new(cols, rows).unwrap();
                let mut i = 0usize;
                for row in 1..=rows {
                    for col in 1..=cols {
                        grid.set(col, row, Some(palette[types[i] as usize % 3])).unwrap();
                        i += 1;
                    }
                }
                let device = Device::new("prop-hetero", reg, grid, vec![]).unwrap();
                let boundaries: Vec<u32> =
                    raw_bounds.into_iter().filter(|&b| b < rows).collect();
                (device, boundaries)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On random heterogeneous fabrics, `fabric_compatible` agrees with the
    /// exhaustive per-cell grid oracle `areas_compatible` whenever no die
    /// boundary is crossed, and reports `CrossesDieBoundary` otherwise.
    #[test]
    fn fabric_compatible_matches_the_grid_oracle_on_random_fabrics(
        devb in arb_hetero_device(),
        ax in 1u32..10, ay in 1u32..8,
        bx in 1u32..10, by in 1u32..8,
        w in 1u32..5, h in 1u32..5,
    ) {
        use rfp_device::CompatReport;
        let (device, boundaries) = devb;
        let fabric = fabric_partition_with_boundaries(&device, &boundaries).unwrap();
        let cols = fabric.cols;
        let rows = fabric.rows;
        let a = Rect::new(ax.min(cols), ay.min(rows), w, h);
        let b = Rect::new(bx.min(cols), by.min(rows), w, h);
        let verdict = fabric_compatible(&fabric, &a, &b);
        let oracle = areas_compatible(&device, &a, &b);
        let crossing = fabric.rect_in_bounds(&a)
            && fabric.rect_in_bounds(&b)
            && (fabric.rect_crosses_die_boundary(&a) || fabric.rect_crosses_die_boundary(&b));
        if crossing {
            prop_assert_eq!(verdict, CompatReport::CrossesDieBoundary);
        } else {
            prop_assert_eq!(verdict, oracle, "oracle disagreement for {} vs {}", a, b);
        }
    }
}
