//! Resource kinds and per-type resource accounting.
//!
//! The floorplanner reasons about heterogeneous FPGA resources: configurable
//! logic blocks (CLB), block RAM (BRAM), DSP slices and a catch-all `Other`
//! kind for anything else (IO, clocking, hard IP observed as a resource).
//! Requirements and capacities are expressed as a small dense vector indexed
//! by [`ResourceKind`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// The kinds of reconfigurable resources tracked by the floorplanner
/// (set `T` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Configurable logic block columns (LUTs + flip-flops).
    Clb,
    /// Block RAM.
    Bram,
    /// DSP slices.
    Dsp,
    /// Any other resource kind (IO, clock management, hard IP).
    Other,
}

/// All resource kinds, in index order. Useful for iteration.
pub const RESOURCE_KINDS: [ResourceKind; 4] =
    [ResourceKind::Clb, ResourceKind::Bram, ResourceKind::Dsp, ResourceKind::Other];

impl ResourceKind {
    /// Dense index of the kind inside a [`ResourceVec`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Clb => 0,
            ResourceKind::Bram => 1,
            ResourceKind::Dsp => 2,
            ResourceKind::Other => 3,
        }
    }

    /// Short uppercase name used in tables ("CLB", "BRAM", "DSP", "OTHER").
    pub const fn name(self) -> &'static str {
        match self {
            ResourceKind::Clb => "CLB",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Dsp => "DSP",
            ResourceKind::Other => "OTHER",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense count of resources per [`ResourceKind`].
///
/// Used both for tile contents (resources carried by one tile) and for region
/// requirements (`c_{n,t}` in the paper, expressed in tiles or raw resources).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceVec(pub [u32; 4]);

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0; 4]);

    /// Creates a vector with the given CLB/BRAM/DSP counts and zero `Other`.
    pub const fn new(clb: u32, bram: u32, dsp: u32) -> Self {
        ResourceVec([clb, bram, dsp, 0])
    }

    /// Creates a vector holding `count` units of a single kind.
    pub fn single(kind: ResourceKind, count: u32) -> Self {
        let mut v = ResourceVec::ZERO;
        v[kind] = count;
        v
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Component-wise `self >= other` (the capacity covers the requirement).
    pub fn covers(&self, other: &ResourceVec) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a >= b)
    }

    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&c| c as u64).sum()
    }

    /// Component-wise saturating subtraction (`self - other`, floored at 0).
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = ResourceVec::ZERO;
        for i in 0..4 {
            out.0[i] = self.0[i].saturating_sub(other.0[i]);
        }
        out
    }

    /// Component-wise scaling by an integer factor.
    pub fn scaled(&self, factor: u32) -> ResourceVec {
        let mut out = *self;
        for c in out.0.iter_mut() {
            *c *= factor;
        }
        out
    }

    /// Iterates over `(kind, count)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u32)> + '_ {
        RESOURCE_KINDS.iter().map(move |&k| (k, self[k]))
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = u32;
    #[inline]
    fn index(&self, kind: ResourceKind) -> &u32 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut u32 {
        &mut self.0[kind.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        for i in 0..4 {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    /// Exact subtraction; panics in debug builds on underflow.
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self;
        for i in 0..4 {
            out.0[i] -= rhs.0[i];
        }
        out
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CLB:{} BRAM:{} DSP:{} OTHER:{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 4];
        for k in RESOURCE_KINDS {
            assert!(!seen[k.index()], "duplicate index for {k}");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn new_sets_components() {
        let v = ResourceVec::new(3, 2, 1);
        assert_eq!(v[ResourceKind::Clb], 3);
        assert_eq!(v[ResourceKind::Bram], 2);
        assert_eq!(v[ResourceKind::Dsp], 1);
        assert_eq!(v[ResourceKind::Other], 0);
        assert_eq!(v.total(), 6);
    }

    #[test]
    fn covers_is_component_wise() {
        let cap = ResourceVec::new(5, 2, 1);
        assert!(cap.covers(&ResourceVec::new(5, 2, 1)));
        assert!(cap.covers(&ResourceVec::new(4, 0, 0)));
        assert!(!cap.covers(&ResourceVec::new(6, 0, 0)));
        assert!(!cap.covers(&ResourceVec::new(0, 3, 0)));
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = ResourceVec::new(4, 1, 2);
        let b = ResourceVec::new(1, 1, 0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = ResourceVec::new(1, 0, 5);
        let b = ResourceVec::new(3, 1, 2);
        assert_eq!(a.saturating_sub(&b), ResourceVec::new(0, 0, 3));
    }

    #[test]
    fn single_and_scaled() {
        let v = ResourceVec::single(ResourceKind::Dsp, 4);
        assert_eq!(v[ResourceKind::Dsp], 4);
        assert_eq!(v.scaled(3)[ResourceKind::Dsp], 12);
        assert!(ResourceVec::ZERO.is_zero());
        assert!(!v.is_zero());
    }

    #[test]
    fn display_lists_all_kinds() {
        let s = ResourceVec::new(1, 2, 3).to_string();
        assert!(s.contains("CLB:1") && s.contains("BRAM:2") && s.contains("DSP:3"));
    }
}
