//! Tile types and the tile-type registry.
//!
//! A *tile* is the minimal area considered for reconfiguration. Definition .1
//! of the paper strengthens the notion of tile type with respect to [10]:
//! two tiles are of the same type only if they carry the same number and
//! types of resources **and** the configuration data needed to configure them
//! is the same. We model the latter with a `frames` field (number of
//! configuration frames per tile) plus an opaque `config_signature` that lets
//! users distinguish tiles with equal resources but different configuration
//! layouts (for example CLBL vs CLBM columns on 7-series devices).

use crate::error::DeviceError;
use crate::resources::ResourceVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a [`TileType`] inside a [`TileTypeRegistry`].
///
/// The floorplanner's MILP formulation refers to tile types with the integer
/// parameter `tid_p` in the range `[1, nTypes]`; [`TileTypeId::milp_id`]
/// provides that 1-based value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileTypeId(pub u16);

impl TileTypeId {
    /// Zero-based index into the registry.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// One-based identifier as used by the MILP parameter `tid_p`.
    #[inline]
    pub fn milp_id(self) -> u32 {
        self.0 as u32 + 1
    }
}

impl fmt::Display for TileTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Description of a tile type (Definition .1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileType {
    /// Human-readable name ("CLB", "BRAM", "DSP", ...).
    pub name: String,
    /// Resources carried by one tile of this type.
    pub resources: ResourceVec,
    /// Number of configuration frames needed to configure one tile of this
    /// type (e.g. 36/30/28 for CLB/BRAM/DSP tiles on the Virtex-5 FX70T).
    pub frames: u32,
    /// Opaque discriminator for tiles whose resources and frame counts are
    /// equal but whose configuration data layout differs. Two tile types with
    /// the same `resources`, `frames` and `config_signature` are the *same*
    /// type per Definition .1 and may not be registered twice.
    pub config_signature: u32,
}

impl TileType {
    /// Convenience constructor with a zero configuration signature.
    pub fn new(name: impl Into<String>, resources: ResourceVec, frames: u32) -> Self {
        TileType { name: name.into(), resources, frames, config_signature: 0 }
    }

    /// The fingerprint used to decide whether two tile types are "the same
    /// type" per Definition .1.
    fn fingerprint(&self) -> (ResourceVec, u32, u32) {
        (self.resources, self.frames, self.config_signature)
    }
}

/// Registry of the tile types present on a device.
///
/// `nTypes` in the paper is [`TileTypeRegistry::len`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTypeRegistry {
    types: Vec<TileType>,
}

impl TileTypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tile type and returns its id.
    ///
    /// Returns [`DeviceError::DuplicateTileType`] if a type with an identical
    /// fingerprint (resources, frames, configuration signature) already
    /// exists: per Definition .1 those are the same type.
    pub fn register(&mut self, tile: TileType) -> Result<TileTypeId, DeviceError> {
        if let Some(existing) = self.types.iter().find(|t| t.fingerprint() == tile.fingerprint()) {
            return Err(DeviceError::DuplicateTileType {
                first: existing.name.clone(),
                second: tile.name,
            });
        }
        let id = TileTypeId(self.types.len() as u16);
        self.types.push(tile);
        Ok(id)
    }

    /// Registers a tile type, or returns the id of the already-registered
    /// type with the same fingerprint.
    pub fn register_or_get(&mut self, tile: TileType) -> TileTypeId {
        if let Some((i, _)) =
            self.types.iter().enumerate().find(|(_, t)| t.fingerprint() == tile.fingerprint())
        {
            return TileTypeId(i as u16);
        }
        let id = TileTypeId(self.types.len() as u16);
        self.types.push(tile);
        id
    }

    /// Number of registered tile types (`nTypes`).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` if no tile type has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Looks a tile type up by id.
    pub fn get(&self, id: TileTypeId) -> Option<&TileType> {
        self.types.get(id.index())
    }

    /// Looks a tile type up by id, panicking on an unknown id.
    ///
    /// Intended for internal use where ids are known to originate from this
    /// registry.
    pub fn expect(&self, id: TileTypeId) -> &TileType {
        self.get(id).expect("tile type id not present in registry")
    }

    /// Finds a tile type by name (first match).
    pub fn by_name(&self, name: &str) -> Option<TileTypeId> {
        self.types.iter().position(|t| t.name == name).map(|i| TileTypeId(i as u16))
    }

    /// Iterates over `(id, type)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TileTypeId, &TileType)> {
        self.types.iter().enumerate().map(|(i, t)| (TileTypeId(i as u16), t))
    }

    /// Validates that an id belongs to this registry.
    pub fn validate(&self, id: TileTypeId) -> Result<(), DeviceError> {
        if id.index() < self.types.len() {
            Ok(())
        } else {
            Err(DeviceError::UnknownTileType(id.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVec;

    fn clb() -> TileType {
        TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)
    }
    fn bram() -> TileType {
        TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)
    }

    #[test]
    fn register_assigns_sequential_ids() {
        let mut reg = TileTypeRegistry::new();
        let a = reg.register(clb()).unwrap();
        let b = reg.register(bram()).unwrap();
        assert_eq!(a, TileTypeId(0));
        assert_eq!(b, TileTypeId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().name, "CLB");
        assert_eq!(reg.get(b).unwrap().frames, 30);
    }

    #[test]
    fn milp_id_is_one_based() {
        assert_eq!(TileTypeId(0).milp_id(), 1);
        assert_eq!(TileTypeId(4).milp_id(), 5);
    }

    #[test]
    fn duplicate_fingerprint_is_rejected() {
        let mut reg = TileTypeRegistry::new();
        reg.register(clb()).unwrap();
        let dup = TileType::new("CLB-copy", ResourceVec::new(1, 0, 0), 36);
        let err = reg.register(dup).unwrap_err();
        assert!(matches!(err, DeviceError::DuplicateTileType { .. }));
    }

    #[test]
    fn same_resources_different_signature_is_allowed() {
        let mut reg = TileTypeRegistry::new();
        reg.register(clb()).unwrap();
        let mut clbm = TileType::new("CLBM", ResourceVec::new(1, 0, 0), 36);
        clbm.config_signature = 1;
        assert!(reg.register(clbm).is_ok());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn register_or_get_returns_existing_id() {
        let mut reg = TileTypeRegistry::new();
        let a = reg.register_or_get(clb());
        let b = reg.register_or_get(clb());
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn by_name_and_validate() {
        let mut reg = TileTypeRegistry::new();
        let a = reg.register(clb()).unwrap();
        assert_eq!(reg.by_name("CLB"), Some(a));
        assert_eq!(reg.by_name("DSP"), None);
        assert!(reg.validate(a).is_ok());
        assert!(reg.validate(TileTypeId(9)).is_err());
    }

    #[test]
    fn iter_preserves_registration_order() {
        let mut reg = TileTypeRegistry::new();
        reg.register(clb()).unwrap();
        reg.register(bram()).unwrap();
        let names: Vec<_> = reg.iter().map(|(_, t)| t.name.as_str()).collect();
        assert_eq!(names, vec!["CLB", "BRAM"]);
    }
}
