//! Error type for device-model construction and partitioning.

use std::fmt;

/// Errors produced while building a device description or while running the
/// columnar partitioning procedure of Section III-B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// A coordinate lies outside the device grid.
    OutOfBounds {
        /// 1-based column of the offending cell.
        col: u32,
        /// 1-based row of the offending cell.
        row: u32,
        /// Number of columns of the device.
        cols: u32,
        /// Number of rows of the device.
        rows: u32,
    },
    /// The grid dimensions are degenerate (zero columns or rows).
    EmptyGrid,
    /// A tile-type id was used that is not registered in the registry.
    UnknownTileType(u16),
    /// Step 1 of the columnar partitioning could not replace a forbidden tile
    /// because the whole column is covered by forbidden areas.
    ColumnFullyForbidden {
        /// 1-based column that could not be repaired.
        col: u32,
    },
    /// Step 4 of the columnar partitioning failed: a portion could not be
    /// extended to the bottom of the FPGA, so the device cannot be described
    /// by full-height columnar portions.
    NotColumnar {
        /// 1-based column where the vertical extension stopped.
        col: u32,
        /// 1-based row at which a tile of a different type was found.
        row: u32,
    },
    /// A cell of the grid has no tile type assigned (hole in the fabric) and
    /// is not covered by a forbidden area, so partitioning cannot proceed.
    UnassignedTile {
        /// 1-based column of the hole.
        col: u32,
        /// 1-based row of the hole.
        row: u32,
    },
    /// A forbidden area extends (partially) outside the device.
    ForbiddenOutOfBounds {
        /// Name of the offending forbidden area.
        name: String,
    },
    /// A die-boundary row lies outside the valid range `1..rows` (a boundary
    /// `r` separates rows `r` and `r + 1`, so it needs a row below it).
    InvalidDieBoundary {
        /// The offending boundary row.
        row: u32,
        /// Number of rows of the device.
        rows: u32,
    },
    /// Two tile types with identical fingerprints were registered under
    /// different identifiers; Definition .1 requires them to be the same type.
    DuplicateTileType {
        /// Name of the tile type registered first.
        first: String,
        /// Name of the tile type registered second.
        second: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds { col, row, cols, rows } => {
                write!(f, "cell ({col}, {row}) lies outside the {cols}x{rows} device grid")
            }
            DeviceError::EmptyGrid => {
                write!(f, "device grid must have at least one column and one row")
            }
            DeviceError::UnknownTileType(id) => write!(f, "tile type id {id} is not registered"),
            DeviceError::ColumnFullyForbidden { col } => write!(
                f,
                "column {col} is entirely covered by forbidden areas; step 1 of the columnar \
                 partitioning cannot find a replacement tile in the same column"
            ),
            DeviceError::NotColumnar { col, row } => write!(
                f,
                "the device cannot be columnar-partitioned: the portion containing column {col} \
                 cannot be extended to the bottom of the FPGA (tile type changes at row {row})"
            ),
            DeviceError::UnassignedTile { col, row } => write!(
                f,
                "cell ({col}, {row}) has no tile type and is not covered by a forbidden area"
            ),
            DeviceError::ForbiddenOutOfBounds { name } => {
                write!(f, "forbidden area `{name}` extends outside the device grid")
            }
            DeviceError::InvalidDieBoundary { row, rows } => write!(
                f,
                "die boundary at row {row} is invalid: boundaries must satisfy 1 <= row < {rows}"
            ),
            DeviceError::DuplicateTileType { first, second } => write!(
                f,
                "tile types `{first}` and `{second}` have identical resources and frame counts; \
                 by Definition .1 they are the same type and must be registered once"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds_mentions_grid_size() {
        let e = DeviceError::OutOfBounds { col: 7, row: 3, cols: 5, rows: 2 };
        let msg = e.to_string();
        assert!(msg.contains("(7, 3)"));
        assert!(msg.contains("5x2"));
    }

    #[test]
    fn display_not_columnar_mentions_column_and_row() {
        let e = DeviceError::NotColumnar { col: 4, row: 6 };
        let msg = e.to_string();
        assert!(msg.contains("column 4"));
        assert!(msg.contains("row 6"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DeviceError>();
    }
}
