//! Columnar partitioning (Section III-B of the paper).
//!
//! The revised partitioning procedure describes the FPGA in terms of
//! *columnar portions*: fixed rectangular areas that extend for the entire
//! device height and contain tiles of a single type. Hard blocks that would
//! break the column contiguity (e.g. the PowerPC of a Virtex-5 FX70T) are
//! declared as *forbidden areas*; their tiles are first replaced by tiles of
//! the same column (step 1) so that the partitioning can proceed, and the
//! forbidden areas are reported alongside the portions (step 6).
//!
//! The result enjoys two properties exploited by the MILP formulation:
//!
//! * **Property .3** — two adjacent columnar portions always have tiles of
//!   different types;
//! * **Property .4** — the portions can be orderly numbered from left to
//!   right.

use crate::error::DeviceError;
use crate::forbidden::ForbiddenArea;
use crate::geometry::Rect;
use crate::grid::Device;
use crate::resources::ResourceVec;
use crate::tile::TileTypeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a portion inside a [`ColumnarPartition`].
///
/// Portions are numbered from left to right (Property .4); the zero-based
/// [`PortionId::index`] corresponds to the one-based MILP enumeration
/// `1..=|P|` via [`PortionId::number`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortionId(pub usize);

impl PortionId {
    /// Zero-based index of the portion.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based portion number as used in the MILP model (left to right).
    #[inline]
    pub fn number(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for PortionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.number())
    }
}

/// A columnar portion: a full-height span of adjacent columns with tiles of a
/// single type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Portion {
    /// Identifier (left-to-right order).
    pub id: PortionId,
    /// Leftmost column covered (1-based).
    pub x1: u32,
    /// Rightmost column covered (1-based, inclusive).
    pub x2: u32,
    /// Tile type of every tile in the portion.
    pub tile_type: TileTypeId,
}

impl Portion {
    /// Width of the portion in columns.
    #[inline]
    pub fn width(&self) -> u32 {
        self.x2 - self.x1 + 1
    }

    /// Returns `true` if the portion contains the given column.
    #[inline]
    pub fn contains_col(&self, col: u32) -> bool {
        col >= self.x1 && col <= self.x2
    }

    /// The full-height rectangle occupied by the portion.
    pub fn rect(&self, rows: u32) -> Rect {
        Rect::new(self.x1, 1, self.width(), rows)
    }
}

/// The result of the columnar partitioning procedure: the ordered portions,
/// the forbidden areas, and per-column lookup tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnarPartition {
    /// Device name this partition was derived from.
    pub device_name: String,
    /// Number of columns of the device (`maxW`).
    pub cols: u32,
    /// Number of rows of the device (`|R|`).
    pub rows: u32,
    /// Columnar portions ordered left to right (set `P`).
    pub portions: Vec<Portion>,
    /// Forbidden areas (set `A`).
    pub forbidden: Vec<ForbiddenArea>,
    /// Effective tile type of each column after the step-1 replacement
    /// (index 0 is column 1).
    column_types: Vec<TileTypeId>,
    /// Portion index of each column (index 0 is column 1).
    col_to_portion: Vec<usize>,
    /// Dense 1-based MILP type ids (`tid`) per registry tile-type index.
    tid_of_type: Vec<Option<u32>>,
    /// Number of distinct tile types present (`nTypes`).
    n_types: u32,
    /// Frames per tile for each registry tile-type index.
    frames_of_type: Vec<u32>,
    /// Resources per tile for each registry tile-type index.
    resources_of_type: Vec<ResourceVec>,
}

impl ColumnarPartition {
    /// Number of portions (`|P|`).
    #[inline]
    pub fn n_portions(&self) -> usize {
        self.portions.len()
    }

    /// Number of distinct tile types present on the device (`nTypes`).
    #[inline]
    pub fn n_types(&self) -> u32 {
        self.n_types
    }

    /// The portion with the given id.
    pub fn portion(&self, id: PortionId) -> &Portion {
        &self.portions[id.index()]
    }

    /// The MILP parameter `tid_p`: dense 1-based identifier of the tile type
    /// of portion `p`.
    pub fn tid(&self, id: PortionId) -> u32 {
        let ty = self.portions[id.index()].tile_type;
        self.tid_of_type[ty.index()].expect("portion tile type must be registered")
    }

    /// The portion containing the given column.
    pub fn portion_of_col(&self, col: u32) -> Option<PortionId> {
        if col < 1 || col > self.cols {
            return None;
        }
        Some(PortionId(self.col_to_portion[(col - 1) as usize]))
    }

    /// Effective tile type of a column (after step-1 replacement).
    pub fn column_type(&self, col: u32) -> Option<TileTypeId> {
        if col < 1 || col > self.cols {
            return None;
        }
        Some(self.column_types[(col - 1) as usize])
    }

    /// Effective tile-type sequence of a span of columns.
    pub fn column_type_sequence(&self, x1: u32, width: u32) -> Vec<TileTypeId> {
        (x1..x1 + width).filter_map(|c| self.column_type(c)).collect()
    }

    /// Frames needed to configure one tile of the given type.
    pub fn frames_per_tile(&self, ty: TileTypeId) -> u32 {
        self.frames_of_type[ty.index()]
    }

    /// Resources carried by one tile of the given type.
    pub fn resources_per_tile(&self, ty: TileTypeId) -> ResourceVec {
        self.resources_of_type[ty.index()]
    }

    /// Returns `true` if the rectangle lies fully on the device.
    pub fn rect_in_bounds(&self, rect: &Rect) -> bool {
        rect.x >= 1 && rect.y >= 1 && rect.x2() <= self.cols && rect.y2() <= self.rows
    }

    /// Returns `true` if the rectangle crosses a forbidden area.
    pub fn rect_crosses_forbidden(&self, rect: &Rect) -> bool {
        self.forbidden.iter().any(|fa| fa.blocks(rect))
    }

    /// Returns `true` if a rectangle is a legal region placement: in bounds
    /// and not crossing any forbidden area.
    pub fn placement_legal(&self, rect: &Rect) -> bool {
        self.rect_in_bounds(rect) && !self.rect_crosses_forbidden(rect)
    }

    /// Resources covered by a rectangle (using effective column types).
    pub fn resources_in_rect(&self, rect: &Rect) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for col in rect.columns() {
            if let Some(ty) = self.column_type(col) {
                total += self.resources_per_tile(ty).scaled(rect.h);
            }
        }
        total
    }

    /// Tiles of each type covered by a rectangle, keyed by registry index.
    pub fn tiles_by_type_in_rect(&self, rect: &Rect) -> Vec<(TileTypeId, u32)> {
        let mut counts: Vec<u32> = vec![0; self.frames_of_type.len()];
        for col in rect.columns() {
            if let Some(ty) = self.column_type(col) {
                counts[ty.index()] += rect.h;
            }
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, c)| (TileTypeId(i as u16), c))
            .collect()
    }

    /// Configuration frames covered by a rectangle.
    pub fn frames_in_rect(&self, rect: &Rect) -> u64 {
        rect.columns()
            .filter_map(|c| self.column_type(c))
            .map(|ty| self.frames_per_tile(ty) as u64 * rect.h as u64)
            .sum()
    }

    /// Portions whose x projection intersects the rectangle, together with
    /// the number of columns of the intersection (the value `sum_r l_{n,p,r} / h`).
    pub fn portions_covered(&self, rect: &Rect) -> Vec<(PortionId, u32)> {
        self.portions
            .iter()
            .filter_map(|p| {
                let lo = p.x1.max(rect.x);
                let hi = p.x2.min(rect.x2());
                if lo <= hi {
                    Some((p.id, hi - lo + 1))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Total usable frames on the device (excluding forbidden tiles).
    pub fn total_frames(&self) -> u64 {
        let full = Rect::new(1, 1, self.cols, self.rows);
        let gross = self.frames_in_rect(&full);
        let forbidden: u64 = self.forbidden.iter().map(|fa| self.frames_in_rect(&fa.rect)).sum();
        gross - forbidden
    }

    /// The per-type frames table, indexed by registry tile-type index.
    pub(crate) fn frames_table(&self) -> &[u32] {
        &self.frames_of_type
    }

    /// The per-type resources table, indexed by registry tile-type index.
    pub(crate) fn resources_table(&self) -> &[ResourceVec] {
        &self.resources_of_type
    }

    /// Total usable resources on the device (excluding forbidden tiles).
    pub fn total_resources(&self) -> ResourceVec {
        let full = Rect::new(1, 1, self.cols, self.rows);
        let mut total = self.resources_in_rect(&full);
        for fa in &self.forbidden {
            total = total.saturating_sub(&self.resources_in_rect(&fa.rect));
        }
        total
    }
}

/// Runs the columnar partitioning procedure of Section III-B on a device.
///
/// Steps:
/// 1. every tile belonging to a forbidden area (or left untyped under a hard
///    block) is replaced by a tile of the same column that does not belong to
///    any forbidden area;
/// 2. (through 5.) the device is scanned top-to-bottom, left-to-right,
///    growing maximal same-type portions first to the right and then to the
///    bottom; if a portion cannot be extended to the bottom of the FPGA the
///    device cannot be columnar-partitioned and an error is returned;
/// 6. the forbidden areas are reported by position and size.
pub fn columnar_partition(device: &Device) -> Result<ColumnarPartition, DeviceError> {
    let cols = device.cols();
    let rows = device.rows();

    // Step 1: build the effective grid with forbidden tiles replaced.
    let mut effective: Vec<Vec<TileTypeId>> = Vec::with_capacity(cols as usize);
    for col in 1..=cols {
        let mut column = Vec::with_capacity(rows as usize);
        // Find the replacement type: first non-forbidden typed tile in the column.
        let replacement = (1..=rows)
            .filter(|&r| !device.is_forbidden(col, r))
            .find_map(|r| device.tile_type_at(col, r));
        for row in 1..=rows {
            let forbidden_here = device.is_forbidden(col, row);
            match device.tile_type_at(col, row) {
                Some(ty) if !forbidden_here => column.push(ty),
                Some(_) | None if forbidden_here => match replacement {
                    Some(ty) => column.push(ty),
                    None => return Err(DeviceError::ColumnFullyForbidden { col }),
                },
                Some(ty) => column.push(ty),
                None => return Err(DeviceError::UnassignedTile { col, row }),
            }
        }
        effective.push(column);
    }

    // Steps 2-5: scan and grow portions. With the effective grid the scan
    // reduces to: every column must be uniform in type (otherwise step 4
    // fails), and adjacent uniform columns of equal type merge into one
    // portion.
    let mut column_types: Vec<TileTypeId> = Vec::with_capacity(cols as usize);
    for col in 1..=cols {
        let column = &effective[(col - 1) as usize];
        let head = column[0];
        if let Some(bad_row) = column.iter().position(|&t| t != head) {
            return Err(DeviceError::NotColumnar { col, row: bad_row as u32 + 1 });
        }
        column_types.push(head);
    }

    let mut portions: Vec<Portion> = Vec::new();
    let mut col_to_portion: Vec<usize> = vec![0; cols as usize];
    let mut col = 1u32;
    while col <= cols {
        let ty = column_types[(col - 1) as usize];
        let mut end = col;
        while end < cols && column_types[end as usize] == ty {
            end += 1;
        }
        let id = PortionId(portions.len());
        for c in col..=end {
            col_to_portion[(c - 1) as usize] = id.index();
        }
        portions.push(Portion { id, x1: col, x2: end, tile_type: ty });
        col = end + 1;
    }

    // Dense MILP type ids for the types that actually appear, numbered in
    // order of first appearance from the left.
    let max_type_index = device.registry.len();
    let mut tid_of_type: Vec<Option<u32>> = vec![None; max_type_index];
    let mut next_tid = 1u32;
    for p in &portions {
        let slot = &mut tid_of_type[p.tile_type.index()];
        if slot.is_none() {
            *slot = Some(next_tid);
            next_tid += 1;
        }
    }
    let n_types = next_tid - 1;

    let frames_of_type: Vec<u32> = device.registry.iter().map(|(_, t)| t.frames).collect();
    let resources_of_type: Vec<ResourceVec> =
        device.registry.iter().map(|(_, t)| t.resources).collect();

    Ok(ColumnarPartition {
        device_name: device.name.clone(),
        cols,
        rows,
        portions,
        forbidden: device.forbidden.clone(),
        column_types,
        col_to_portion,
        tid_of_type,
        n_types,
        frames_of_type,
        resources_of_type,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TileGrid;
    use crate::resources::ResourceVec;
    use crate::tile::{TileType, TileTypeRegistry};

    /// 6 columns x 4 rows, column types C C B C D C, forbidden block over
    /// columns 2-3, rows 2-3.
    fn device_with_block() -> Device {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let bram = reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap();
        let dsp = reg.register(TileType::new("DSP", ResourceVec::new(0, 0, 1), 28)).unwrap();
        let mut grid = TileGrid::new(6, 4).unwrap();
        let types = [clb, clb, bram, clb, dsp, clb];
        for (i, ty) in types.iter().enumerate() {
            grid.fill_column(i as u32 + 1, *ty).unwrap();
        }
        // Hard block: clear the tiles underneath to model a processor.
        let block = Rect::new(2, 2, 2, 2);
        grid.fill_rect(&block, None).unwrap();
        Device::new("toy-block", reg, grid, vec![ForbiddenArea::new("PPC", block)]).unwrap()
    }

    #[test]
    fn partition_produces_ordered_portions() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        // Column types C C B C D C -> portions [1-2 C][3 B][4 C][5 D][6 C].
        assert_eq!(p.n_portions(), 5);
        let spans: Vec<(u32, u32)> = p.portions.iter().map(|q| (q.x1, q.x2)).collect();
        assert_eq!(spans, vec![(1, 2), (3, 3), (4, 4), (5, 5), (6, 6)]);
        // Property .4: ordered left to right.
        for w in p.portions.windows(2) {
            assert!(w[0].x2 < w[1].x1);
        }
        // Property .3: adjacent portions have different types.
        for w in p.portions.windows(2) {
            assert_ne!(w[0].tile_type, w[1].tile_type);
        }
        assert_eq!(p.n_types(), 3);
        assert_eq!(p.forbidden.len(), 1);
    }

    #[test]
    fn step1_replaces_forbidden_tiles_with_column_type() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        // Columns 2 and 3 keep their original types even though rows 2-3 were
        // cleared by the hard block.
        assert_eq!(p.column_type(2), Some(TileTypeId(0)));
        assert_eq!(p.column_type(3), Some(TileTypeId(1)));
    }

    #[test]
    fn tid_is_dense_and_one_based() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        let tids: Vec<u32> = (0..p.n_portions()).map(|i| p.tid(PortionId(i))).collect();
        assert_eq!(tids, vec![1, 2, 1, 3, 1]);
        assert!(tids.iter().all(|&t| t >= 1 && t <= p.n_types()));
    }

    #[test]
    fn non_columnar_device_is_rejected() {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let bram = reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap();
        let mut grid = TileGrid::new(2, 3).unwrap();
        grid.fill_column(1, clb).unwrap();
        grid.fill_column(2, clb).unwrap();
        // Break column 2 contiguity without declaring a forbidden area.
        grid.set(2, 3, Some(bram)).unwrap();
        let d = Device::new("bad", reg, grid, vec![]).unwrap();
        let err = columnar_partition(&d).unwrap_err();
        assert!(matches!(err, DeviceError::NotColumnar { col: 2, row: 3 }));
    }

    #[test]
    fn fully_forbidden_column_is_rejected() {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let mut grid = TileGrid::new(2, 2).unwrap();
        grid.fill_column(1, clb).unwrap();
        // Column 2 is entirely a hard block.
        let block = Rect::new(2, 1, 1, 2);
        let d = Device::new("bad", reg, grid, vec![ForbiddenArea::new("blk", block)]).unwrap();
        let err = columnar_partition(&d).unwrap_err();
        assert!(matches!(err, DeviceError::ColumnFullyForbidden { col: 2 }));
    }

    #[test]
    fn rect_accounting_uses_effective_types() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        let r = Rect::new(1, 1, 3, 2); // columns C C B, 2 rows
        assert_eq!(p.resources_in_rect(&r), ResourceVec::new(4, 2, 0));
        assert_eq!(p.frames_in_rect(&r), 4 * 36 + 2 * 30);
        let covered = p.portions_covered(&r);
        assert_eq!(covered, vec![(PortionId(0), 2), (PortionId(1), 1)]);
    }

    #[test]
    fn placement_legality_checks_bounds_and_forbidden() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        assert!(p.placement_legal(&Rect::new(4, 1, 3, 4)));
        assert!(!p.placement_legal(&Rect::new(2, 2, 1, 1)), "crosses the PPC block");
        assert!(!p.placement_legal(&Rect::new(6, 1, 2, 2)), "out of bounds to the right");
        assert!(!p.placement_legal(&Rect::new(1, 4, 1, 2)), "out of bounds at the bottom");
    }

    #[test]
    fn totals_exclude_forbidden_tiles() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.total_resources(), d.total_resources());
        assert_eq!(p.total_frames(), d.total_frames());
    }

    #[test]
    fn portion_lookup_by_column() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.portion_of_col(1), Some(PortionId(0)));
        assert_eq!(p.portion_of_col(2), Some(PortionId(0)));
        assert_eq!(p.portion_of_col(3), Some(PortionId(1)));
        assert_eq!(p.portion_of_col(6), Some(PortionId(4)));
        assert_eq!(p.portion_of_col(7), None);
        assert_eq!(p.portion_of_col(0), None);
    }

    #[test]
    fn portion_geometry_helpers() {
        let d = device_with_block();
        let p = columnar_partition(&d).unwrap();
        let first = p.portion(PortionId(0));
        assert_eq!(first.width(), 2);
        assert!(first.contains_col(1) && first.contains_col(2) && !first.contains_col(3));
        assert_eq!(first.rect(p.rows), Rect::new(1, 1, 2, 4));
        assert_eq!(PortionId(0).number(), 1);
        assert_eq!(PortionId(0).to_string(), "P1");
    }
}
