//! # rfp-device — FPGA device model substrate
//!
//! This crate models everything the relocation-aware floorplanner needs to
//! know about a partially-reconfigurable FPGA:
//!
//! * **Resources and tiles** ([`resources`], [`tile`]): a *tile* is the
//!   minimal area considered for reconfiguration (Section II of the paper).
//!   Two tiles are of the same [`TileType`] if they carry the same number and
//!   types of resources *and* the same configuration data layout
//!   (Definition .1).
//! * **The tile grid** ([`grid`]): a rectangular array of tiles with optional
//!   hard blocks (embedded processors, PCIe blocks, …).
//! * **Forbidden areas** ([`forbidden`]): rectangular areas that cannot be
//!   crossed by reconfigurable regions nor by free-compatible areas
//!   (Section III-A).
//! * **Columnar partitioning** ([`partition`]): the revised partitioning
//!   procedure of Section III-B, producing full-height *columnar portions*
//!   ordered left to right (Properties .3 and .4) plus the forbidden-area
//!   descriptors.
//! * **Area compatibility** ([`compat`]): Definition .1/.2 — two areas are
//!   compatible if they have the same shape, size and relative positioning of
//!   tiles of the same type; an area is *free-compatible* if additionally it
//!   does not overlap other regions or reserved areas.
//! * **Frame accounting** ([`frames`]): each tile type configures a fixed
//!   number of configuration frames (36 for CLB, 30 for BRAM, 28 for DSP on
//!   the Virtex-5 of the case study); wasted frames are the evaluation metric
//!   of Table II.
//! * **Device library** ([`devices`]): ready-made device descriptions,
//!   including the Virtex-5 FX70T model used by the paper's evaluation, the
//!   toy devices of Figures 1-3, and synthetic generators for scaling
//!   studies.
//!
//! The crate is dependency-light and purely descriptive: all placement logic
//! lives in `rfp-floorplan`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod compat;
pub mod devices;
pub mod error;
pub mod fabric;
pub mod forbidden;
pub mod frames;
pub mod geometry;
pub mod grid;
pub mod partition;
pub mod resources;
pub mod tile;

pub use compat::{
    areas_compatible, columnar_compatible, enumerate_free_compatible, fabric_compatible,
    free_compatible, CompatReport,
};
pub use devices::{
    figure1_device, figure2_device, xc5vfx70t, xc7vx485t, xc7z020, DeviceBuilder, SyntheticSpec,
};
pub use error::DeviceError;
pub use fabric::{fabric_partition, fabric_partition_with_boundaries, FabricPartition};
pub use forbidden::ForbiddenArea;
pub use frames::{frames_in_rect, required_frames, wasted_frames};
pub use geometry::Rect;
pub use grid::{Device, TileGrid};
pub use partition::{columnar_partition, ColumnarPartition, Portion, PortionId};
pub use resources::{ResourceKind, ResourceVec, RESOURCE_KINDS};
pub use tile::{TileType, TileTypeId, TileTypeRegistry};
