//! Configuration-frame accounting.
//!
//! The size of a partial bitstream is proportional to the number of
//! configuration frames of the area it configures. The paper's evaluation
//! (Table II) scores floorplans by **wasted frames**: frames covered by the
//! placed reconfigurable regions beyond what their resource requirements
//! strictly need.

use crate::geometry::Rect;
use crate::partition::ColumnarPartition;
use crate::tile::{TileTypeId, TileTypeRegistry};

/// Number of configuration frames covered by a rectangle on a
/// columnar-partitioned device.
pub fn frames_in_rect(partition: &ColumnarPartition, rect: &Rect) -> u64 {
    partition.frames_in_rect(rect)
}

/// Minimum number of configuration frames needed by a requirement expressed
/// as tiles per tile type (the last column of Table I).
pub fn required_frames(registry: &TileTypeRegistry, tiles: &[(TileTypeId, u32)]) -> u64 {
    tiles.iter().map(|(ty, count)| registry.expect(*ty).frames as u64 * *count as u64).sum()
}

/// Wasted frames of a placement: frames covered minus frames strictly
/// required (saturating at zero — a region can never cover fewer frames than
/// it requires in a valid floorplan, but partial solutions may).
pub fn wasted_frames(covered: u64, required: u64) -> u64 {
    covered.saturating_sub(required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::DeviceBuilder;
    use crate::partition::columnar_partition;
    use crate::resources::ResourceVec;

    #[test]
    fn required_frames_matches_table1_arithmetic() {
        // Uses the paper's frame weights: CLB 36, BRAM 30, DSP 28.
        let mut b = DeviceBuilder::new("t");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        let dsp = b.tile_type("DSP", ResourceVec::new(0, 0, 1), 28);
        b.rows(2).columns(&[clb, bram, dsp]);
        let d = b.build().unwrap();
        // Matched filter: 25 CLB + 5 DSP tiles = 1040 frames.
        assert_eq!(required_frames(&d.registry, &[(clb, 25), (dsp, 5)]), 1040);
        // Video decoder: 55 CLB + 2 BRAM + 5 DSP = 2180 frames.
        assert_eq!(required_frames(&d.registry, &[(clb, 55), (bram, 2), (dsp, 5)]), 2180);
    }

    #[test]
    fn frames_in_rect_counts_column_types() {
        let mut b = DeviceBuilder::new("t");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(4).columns(&[clb, clb, bram, clb]);
        let d = b.build().unwrap();
        let p = columnar_partition(&d).unwrap();
        let r = Rect::new(2, 1, 2, 3); // one CLB column + one BRAM column, 3 rows
        assert_eq!(frames_in_rect(&p, &r), 3 * 36 + 3 * 30);
    }

    #[test]
    fn wasted_frames_saturates() {
        assert_eq!(wasted_frames(1100, 1040), 60);
        assert_eq!(wasted_frames(1000, 1040), 0);
        assert_eq!(wasted_frames(0, 0), 0);
    }
}
