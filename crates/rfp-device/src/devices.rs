//! Device library and builder.
//!
//! Provides:
//!
//! * [`DeviceBuilder`] — a small fluent API for describing columnar devices
//!   (one tile type per column) with optional hard blocks;
//! * [`xc5vfx70t`] — the Virtex-5 FX70T model used by the paper's
//!   evaluation: 8 tile rows (one per clock region), 42 resource columns
//!   (35 CLB, 5 BRAM, 2 DSP), frame weights 36/30/28 per tile, and a
//!   PowerPC 440 hard block in the centre of the die modelled as a forbidden
//!   area;
//! * [`figure1_device`] and [`figure2_device`] — small devices reproducing
//!   the illustrative examples of Figures 1 and 2;
//! * [`SyntheticSpec`] — parameterised synthetic columnar devices for
//!   scaling studies.

use crate::error::DeviceError;
use crate::forbidden::ForbiddenArea;
use crate::geometry::Rect;
use crate::grid::{Device, TileGrid};
use crate::resources::ResourceVec;
use crate::tile::{TileType, TileTypeId, TileTypeRegistry};
use serde::{Deserialize, Serialize};

/// Fluent builder for columnar devices.
///
/// ```
/// use rfp_device::{DeviceBuilder, ResourceVec};
///
/// let mut b = DeviceBuilder::new("demo");
/// let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
/// let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
/// b.rows(4).columns(&[clb, clb, bram, clb]);
/// let device = b.build().unwrap();
/// assert_eq!(device.cols(), 4);
/// assert_eq!(device.rows(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    name: String,
    registry: TileTypeRegistry,
    rows: u32,
    columns: Vec<TileTypeId>,
    forbidden: Vec<ForbiddenArea>,
    hard_blocks: Vec<Rect>,
}

impl DeviceBuilder {
    /// Starts a new device description.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceBuilder {
            name: name.into(),
            registry: TileTypeRegistry::new(),
            rows: 1,
            columns: Vec::new(),
            forbidden: Vec::new(),
            hard_blocks: Vec::new(),
        }
    }

    /// Registers (or reuses) a tile type and returns its id.
    pub fn tile_type(&mut self, name: &str, resources: ResourceVec, frames: u32) -> TileTypeId {
        self.registry.register_or_get(TileType::new(name, resources, frames))
    }

    /// Sets the number of tile rows.
    pub fn rows(&mut self, rows: u32) -> &mut Self {
        self.rows = rows;
        self
    }

    /// Appends one column of the given tile type.
    pub fn column(&mut self, ty: TileTypeId) -> &mut Self {
        self.columns.push(ty);
        self
    }

    /// Appends several columns at once, in left-to-right order.
    pub fn columns(&mut self, tys: &[TileTypeId]) -> &mut Self {
        self.columns.extend_from_slice(tys);
        self
    }

    /// Appends `count` columns of the given tile type.
    pub fn repeat_column(&mut self, ty: TileTypeId, count: u32) -> &mut Self {
        for _ in 0..count {
            self.columns.push(ty);
        }
        self
    }

    /// Declares a forbidden area whose underlying fabric keeps its column
    /// tile types (e.g. a region reserved for static logic).
    pub fn forbidden(&mut self, name: &str, rect: Rect) -> &mut Self {
        self.forbidden.push(ForbiddenArea::new(name, rect));
        self
    }

    /// Declares a hard block: the covered tiles carry no resources (their
    /// grid cells are cleared) and the rectangle is also a forbidden area.
    pub fn hard_block(&mut self, name: &str, rect: Rect) -> &mut Self {
        self.forbidden.push(ForbiddenArea::new(name, rect));
        self.hard_blocks.push(rect);
        self
    }

    /// Number of columns described so far.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Assembles the device.
    pub fn build(&self) -> Result<Device, DeviceError> {
        if self.columns.is_empty() || self.rows == 0 {
            return Err(DeviceError::EmptyGrid);
        }
        let mut grid = TileGrid::new(self.columns.len() as u32, self.rows)?;
        for (i, ty) in self.columns.iter().enumerate() {
            grid.fill_column(i as u32 + 1, *ty)?;
        }
        for block in &self.hard_blocks {
            grid.fill_rect(block, None)?;
        }
        Device::new(self.name.clone(), self.registry.clone(), grid, self.forbidden.clone())
    }
}

/// Frame weight of a CLB tile on the Virtex-5 of the case study.
pub const V5_CLB_FRAMES: u32 = 36;
/// Frame weight of a BRAM tile on the Virtex-5 of the case study.
pub const V5_BRAM_FRAMES: u32 = 30;
/// Frame weight of a DSP tile on the Virtex-5 of the case study.
pub const V5_DSP_FRAMES: u32 = 28;

/// Builds the Virtex-5 FX70T model used throughout the paper's evaluation.
///
/// The device is described at tile granularity: one tile is one resource
/// column of one clock region (20 CLB rows), so the FX70T becomes an
/// 8-row x 42-column grid with 35 CLB columns, 5 BRAM columns and 2 DSP
/// columns. The PowerPC 440 block breaks the central columns and is modelled
/// as a hard block / forbidden area, exactly the situation that motivates the
/// paper's forbidden-area extension (Section III-A).
///
/// The exact column ordering of the real die is not public at this
/// granularity; the model preserves every property the evaluation relies on:
/// the resource totals dominate the SDR design, DSP columns are scarce (2),
/// BRAM columns are interspersed, and the frame weights are the paper's
/// 36/30/28.
pub fn xc5vfx70t() -> Device {
    let mut b = DeviceBuilder::new("xc5vfx70t");
    let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), V5_CLB_FRAMES);
    let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), V5_BRAM_FRAMES);
    let dsp = b.tile_type("DSP", ResourceVec::new(0, 0, 1), V5_DSP_FRAMES);
    b.rows(8);
    // 42 columns, left to right: B at 4, 11, 17, 26, 37; D at 7, 32; C elsewhere.
    let bram_cols = [4u32, 11, 17, 26, 37];
    let dsp_cols = [7u32, 32];
    for col in 1..=42u32 {
        if bram_cols.contains(&col) {
            b.column(bram);
        } else if dsp_cols.contains(&col) {
            b.column(dsp);
        } else {
            b.column(clb);
        }
    }
    // PowerPC 440 hard block: 4 columns x 3 rows in the centre of the die.
    b.hard_block("PPC440", Rect::new(19, 4, 4, 3));
    b.build().expect("the FX70T model is a valid columnar device")
}

/// Small two-type striped device reproducing the situation of Figure 1:
/// areas `A = (1,1,2,2)` and `B = (3,4,2,2)` are compatible, while
/// `C = (2,1,2,2)` is not compatible with `A`.
pub fn figure1_device() -> Device {
    let mut b = DeviceBuilder::new("figure1");
    let blue = b.tile_type("BLUE", ResourceVec::new(1, 0, 0), 36);
    let green = b.tile_type("GREEN", ResourceVec::new(0, 1, 0), 30);
    b.rows(6).columns(&[blue, green, blue, green, blue, green]);
    b.build().expect("figure-1 device is valid")
}

/// Small device in the spirit of Figure 2: after replacing the hard-processor
/// tiles (step 1) the columnar partitioning yields exactly **6 portions** and
/// reports **2 forbidden areas**, matching Equation (3) of the paper
/// (`P = {1..6}`, `A = {f1, f2}`).
pub fn figure2_device() -> Device {
    let mut b = DeviceBuilder::new("figure2");
    let a = b.tile_type("A", ResourceVec::new(1, 0, 0), 36);
    let bb = b.tile_type("B", ResourceVec::new(0, 1, 0), 30);
    b.rows(6);
    // Column types: A A B A B A A A -> portions [1-2][3][4][5][6-8] ... we need 6:
    // A A B A B A A A gives portions (1-2)A (3)B (4)A (5)B (6-8)A = 5; add one more
    // boundary with a trailing B column: A A B A B A A B -> 6 portions.
    b.columns(&[a, a, bb, a, bb, a, a, bb]);
    // Two hard processors, as in Figure 2a (gray areas).
    b.hard_block("f1", Rect::new(2, 2, 2, 2));
    b.hard_block("f2", Rect::new(6, 4, 2, 2));
    b.build().expect("figure-2 device is valid")
}

/// Frame weight of a CLB tile on 7-series devices (one clock region / 50 CLB
/// rows per tile; 36 frames per CLB column as on Virtex-5 keeps the model
/// comparable across families).
pub const V7_CLB_FRAMES: u32 = 36;
/// Frame weight of a BRAM tile on 7-series devices.
pub const V7_BRAM_FRAMES: u32 = 28;
/// Frame weight of a DSP tile on 7-series devices.
pub const V7_DSP_FRAMES: u32 = 28;

/// Builds a Zynq-7020-class device model (the programmable logic of the
/// ZC702/PYNQ boards): 3 tile rows of roughly 60 resource columns with the
/// processing system occupying the top-left corner as a forbidden area.
///
/// The paper notes that its columnar description "is compliant with most of
/// the commercially available FPGAs, including Xilinx devices of the Virtex-7
/// family"; this model (and [`xc7vx485t`]) let users target those newer parts
/// with the same flow.
pub fn xc7z020() -> Device {
    let mut b = DeviceBuilder::new("xc7z020");
    let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), V7_CLB_FRAMES);
    let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), V7_BRAM_FRAMES);
    let dsp = b.tile_type("DSP", ResourceVec::new(0, 0, 1), V7_DSP_FRAMES);
    b.rows(3);
    // 58 columns: BRAM every 9th column, DSP every 13th, CLB elsewhere.
    for col in 1..=58u32 {
        if col % 13 == 0 {
            b.column(dsp);
        } else if col % 9 == 0 {
            b.column(bram);
        } else {
            b.column(clb);
        }
    }
    // The ARM processing system occupies the top-left corner of the fabric.
    b.hard_block("PS7", Rect::new(1, 1, 14, 1));
    b.build().expect("the 7z020 model is a valid columnar device")
}

/// Builds a Virtex-7 485T-class device model (the VC707 board): 14 tile rows,
/// 120 resource columns, no hard processor (pure columnar device, the easy
/// case for the partitioning of Section III).
pub fn xc7vx485t() -> Device {
    let mut b = DeviceBuilder::new("xc7vx485t");
    let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), V7_CLB_FRAMES);
    let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), V7_BRAM_FRAMES);
    let dsp = b.tile_type("DSP", ResourceVec::new(0, 0, 1), V7_DSP_FRAMES);
    b.rows(14);
    for col in 1..=120u32 {
        if col % 11 == 0 {
            b.column(dsp);
        } else if col % 7 == 0 {
            b.column(bram);
        } else {
            b.column(clb);
        }
    }
    b.build().expect("the 7vx485t model is a valid columnar device")
}

/// Specification of a synthetic columnar device for scaling studies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Device name.
    pub name: String,
    /// Number of resource columns.
    pub cols: u32,
    /// Number of tile rows.
    pub rows: u32,
    /// Every `bram_every`-th column is a BRAM column (0 disables BRAM).
    pub bram_every: u32,
    /// Every `dsp_every`-th column is a DSP column (0 disables DSP).
    pub dsp_every: u32,
    /// Optional central hard block (columns x rows).
    pub hard_block: Option<(u32, u32)>,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            name: "synthetic".to_string(),
            cols: 20,
            rows: 4,
            bram_every: 5,
            dsp_every: 9,
            hard_block: None,
        }
    }
}

impl SyntheticSpec {
    /// Builds the synthetic device.
    ///
    /// Column `c` (1-based) is a DSP column if `dsp_every > 0` and
    /// `c % dsp_every == 0`, otherwise a BRAM column if `bram_every > 0` and
    /// `c % bram_every == 0`, otherwise a CLB column. The optional hard block
    /// is centred on the device.
    pub fn build(&self) -> Result<Device, DeviceError> {
        let mut b = DeviceBuilder::new(self.name.clone());
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), V5_CLB_FRAMES);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), V5_BRAM_FRAMES);
        let dsp = b.tile_type("DSP", ResourceVec::new(0, 0, 1), V5_DSP_FRAMES);
        b.rows(self.rows);
        for c in 1..=self.cols {
            if self.dsp_every > 0 && c % self.dsp_every == 0 {
                b.column(dsp);
            } else if self.bram_every > 0 && c % self.bram_every == 0 {
                b.column(bram);
            } else {
                b.column(clb);
            }
        }
        if let Some((bw, bh)) = self.hard_block {
            if bw > 0 && bh > 0 && bw < self.cols && bh < self.rows {
                let x = (self.cols - bw) / 2 + 1;
                let y = (self.rows - bh) / 2 + 1;
                b.hard_block("HARD", Rect::new(x, y, bw, bh));
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::columnar_partition;
    use crate::resources::ResourceKind;

    #[test]
    fn builder_rejects_empty_descriptions() {
        let b = DeviceBuilder::new("empty");
        assert!(matches!(b.build(), Err(DeviceError::EmptyGrid)));
    }

    #[test]
    fn fx70t_has_expected_shape_and_resources() {
        let d = xc5vfx70t();
        assert_eq!(d.cols(), 42);
        assert_eq!(d.rows(), 8);
        let res = d.total_resources();
        // 35 CLB columns x 8 rows minus the 12 CLB tiles under the PPC440.
        assert_eq!(res[ResourceKind::Clb], 35 * 8 - 12);
        assert_eq!(res[ResourceKind::Bram], 5 * 8);
        assert_eq!(res[ResourceKind::Dsp], 2 * 8);
        assert_eq!(d.forbidden.len(), 1);
    }

    #[test]
    fn fx70t_is_columnar_partitionable() {
        let d = xc5vfx70t();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.cols, 42);
        assert_eq!(p.rows, 8);
        assert_eq!(p.n_types(), 3);
        // Adjacent portions always differ in type (Property .3).
        for w in p.portions.windows(2) {
            assert_ne!(w[0].tile_type, w[1].tile_type);
        }
        // 5 BRAM + 2 DSP single-column portions split the CLB span into 8
        // CLB portions -> 15 portions in total.
        assert_eq!(p.n_portions(), 15);
    }

    #[test]
    fn fx70t_dsp_capacity_is_scarce() {
        // The feasibility analysis of Section VI hinges on DSP scarcity: only
        // two DSP columns of 8 tiles each exist.
        let d = xc5vfx70t();
        assert_eq!(d.total_resources()[ResourceKind::Dsp], 16);
    }

    #[test]
    fn fx70t_total_frames_cover_the_sdr_design() {
        let d = xc5vfx70t();
        // The SDR design needs 4202 frames (Table I); the device must offer
        // considerably more.
        assert!(d.total_frames() > 4202 * 2);
    }

    #[test]
    fn figure1_device_compat_scenario() {
        let d = figure1_device();
        assert_eq!(d.cols(), 6);
        assert_eq!(d.rows(), 6);
        assert_eq!(d.registry.len(), 2);
    }

    #[test]
    fn figure2_partition_yields_six_portions_and_two_forbidden_areas() {
        let d = figure2_device();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.n_portions(), 6, "Equation (3): P = {{1..6}}");
        assert_eq!(p.forbidden.len(), 2, "Equation (3): A = {{f1, f2}}");
    }

    #[test]
    fn zynq_model_is_columnar_with_the_ps_as_forbidden_area() {
        let d = xc7z020();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.forbidden.len(), 1);
        assert_eq!(p.forbidden[0].name, "PS7");
        assert_eq!(p.n_types(), 3);
        assert!(d.total_resources()[ResourceKind::Clb] > 100);
        // Adjacent portions always differ in type (Property .3).
        for w in p.portions.windows(2) {
            assert_ne!(w[0].tile_type, w[1].tile_type);
        }
    }

    #[test]
    fn virtex7_model_is_columnar_and_larger_than_the_fx70t() {
        let v7 = xc7vx485t();
        let v5 = xc5vfx70t();
        assert!(v7.total_frames() > v5.total_frames());
        let p = columnar_partition(&v7).unwrap();
        assert!(p.n_portions() > 20);
        assert!(p.forbidden.is_empty());
    }

    #[test]
    fn synthetic_spec_builds_and_partitions() {
        let spec = SyntheticSpec { hard_block: Some((2, 2)), ..SyntheticSpec::default() };
        let d = spec.build().unwrap();
        assert_eq!(d.cols(), 20);
        let p = columnar_partition(&d).unwrap();
        assert!(p.n_portions() > 1);
        assert_eq!(p.forbidden.len(), 1);
    }

    #[test]
    fn synthetic_spec_without_special_columns_is_single_portion() {
        let spec = SyntheticSpec {
            name: "uniform".into(),
            cols: 10,
            rows: 3,
            bram_every: 0,
            dsp_every: 0,
            hard_block: None,
        };
        let d = spec.build().unwrap();
        let p = columnar_partition(&d).unwrap();
        assert_eq!(p.n_portions(), 1);
        assert_eq!(p.n_types(), 1);
    }

    #[test]
    fn repeat_column_and_hard_block_builder_paths() {
        let mut b = DeviceBuilder::new("rep");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        b.rows(4).repeat_column(clb, 6);
        b.hard_block("blk", Rect::new(3, 2, 2, 2));
        let d = b.build().unwrap();
        assert_eq!(d.cols(), 6);
        assert!(d.is_forbidden(3, 2));
        assert_eq!(d.tile_type_at(3, 2), None);
        assert_eq!(d.usable_tiles(), 24 - 4);
    }
}
