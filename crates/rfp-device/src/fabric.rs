//! Heterogeneous tile fabrics: the canonical device partition.
//!
//! The paper's columnar partitioning (Section III-B) assumes that a region's
//! resource footprint depends only on its column span. Modern fabrics are not
//! columnar: irregular BRAM/DSP column patterns, forbidden regions and
//! multi-die boundaries break that assumption. [`FabricPartition`] models the
//! general case — a per-tile effective resource grid plus forbidden
//! rectangles and die-boundary rows that relocatable regions may not cross —
//! while keeping the columnar description as a special case: when the device
//! *is* columnar the partition carries a [`ColumnarPartition`] view so every
//! consumer (candidate enumeration, the MILP model, the IO codecs) can keep
//! the fast columnar path bit-for-bit unchanged.
//!
//! Die boundaries do **not** restrict static placement — a region may span a
//! boundary — but a bitstream cannot be relocated across one, so the
//! compatibility check ([`crate::compat::fabric_compatible`]) rejects moves
//! where either area crosses a boundary.

use crate::error::DeviceError;
use crate::forbidden::ForbiddenArea;
use crate::geometry::Rect;
use crate::grid::Device;
use crate::partition::{columnar_partition, ColumnarPartition};
use crate::resources::ResourceVec;
use crate::tile::TileTypeId;
use serde::{Deserialize, Serialize};

/// The generalized device partition: a per-tile effective resource grid with
/// forbidden rectangles and die-boundary rows.
///
/// Constructed either from any device via [`fabric_partition`] /
/// [`fabric_partition_with_boundaries`], or from an existing
/// [`ColumnarPartition`] via `From` (which yields a *legacy columnar* fabric
/// with no die boundaries — the exact behaviour-preserving embedding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricPartition {
    /// Device name this partition was derived from.
    pub device_name: String,
    /// Number of columns of the device (`maxW`).
    pub cols: u32,
    /// Number of rows of the device (`|R|`).
    pub rows: u32,
    /// Forbidden areas (set `A`).
    pub forbidden: Vec<ForbiddenArea>,
    /// Die-boundary rows, sorted ascending. A boundary `r` separates rows `r`
    /// and `r + 1`; a rectangle crosses it iff `rect.y <= r < rect.y2()`.
    pub die_boundaries: Vec<u32>,
    /// Effective tile type of each cell after the step-1 forbidden-tile
    /// replacement, row-major: index `(row-1)*cols + (col-1)`.
    cells: Vec<TileTypeId>,
    /// The columnar view, present iff the device is columnar-partitionable.
    columnar: Option<ColumnarPartition>,
    /// Frames per tile for each registry tile-type index.
    frames_of_type: Vec<u32>,
    /// Resources per tile for each registry tile-type index.
    resources_of_type: Vec<ResourceVec>,
}

impl FabricPartition {
    #[inline]
    fn idx(&self, col: u32, row: u32) -> usize {
        ((row - 1) as usize) * self.cols as usize + (col - 1) as usize
    }

    /// Effective tile type at `(col, row)` (1-based), or `None` out of
    /// bounds. Every in-bounds cell carries a type: forbidden cells were
    /// replaced during construction (step 1 of the partitioning procedure).
    pub fn tile_type_at(&self, col: u32, row: u32) -> Option<TileTypeId> {
        if col < 1 || col > self.cols || row < 1 || row > self.rows {
            return None;
        }
        Some(self.cells[self.idx(col, row)])
    }

    /// The columnar view of this fabric, if the device is columnar.
    #[inline]
    pub fn columnar(&self) -> Option<&ColumnarPartition> {
        self.columnar.as_ref()
    }

    /// `true` when the fabric is exactly a legacy columnar device: columnar
    /// *and* without die boundaries. Consumers use this to keep the original
    /// columnar code paths (and their serialized artefacts) byte-identical.
    #[inline]
    pub fn is_columnar_legacy(&self) -> bool {
        self.columnar.is_some() && self.die_boundaries.is_empty()
    }

    /// Effective tile type of a column, when the fabric is columnar.
    pub fn column_type(&self, col: u32) -> Option<TileTypeId> {
        self.columnar.as_ref().and_then(|cp| cp.column_type(col))
    }

    /// Frames needed to configure one tile of the given type.
    pub fn frames_per_tile(&self, ty: TileTypeId) -> u32 {
        self.frames_of_type[ty.index()]
    }

    /// Resources carried by one tile of the given type.
    pub fn resources_per_tile(&self, ty: TileTypeId) -> ResourceVec {
        self.resources_of_type[ty.index()]
    }

    /// Returns `true` if the rectangle lies fully on the device.
    pub fn rect_in_bounds(&self, rect: &Rect) -> bool {
        rect.x >= 1 && rect.y >= 1 && rect.x2() <= self.cols && rect.y2() <= self.rows
    }

    /// Returns `true` if the rectangle crosses a forbidden area.
    pub fn rect_crosses_forbidden(&self, rect: &Rect) -> bool {
        self.forbidden.iter().any(|fa| fa.blocks(rect))
    }

    /// Returns `true` if the rectangle spans a die boundary. Crossing a
    /// boundary is legal for static placement but makes the area ineligible
    /// as a relocation source or target.
    pub fn rect_crosses_die_boundary(&self, rect: &Rect) -> bool {
        self.die_boundaries.iter().any(|&b| rect.y <= b && b < rect.y2())
    }

    /// Returns `true` if a rectangle is a legal region placement: in bounds
    /// and not crossing any forbidden area.
    pub fn placement_legal(&self, rect: &Rect) -> bool {
        self.rect_in_bounds(rect) && !self.rect_crosses_forbidden(rect)
    }

    /// Resources covered by a rectangle (using effective tile types).
    pub fn resources_in_rect(&self, rect: &Rect) -> ResourceVec {
        if let Some(cp) = &self.columnar {
            return cp.resources_in_rect(rect);
        }
        let mut total = ResourceVec::ZERO;
        for (c, r) in rect.cells() {
            if let Some(ty) = self.tile_type_at(c, r) {
                total += self.resources_per_tile(ty);
            }
        }
        total
    }

    /// Tiles of each type covered by a rectangle, keyed by registry index.
    pub fn tiles_by_type_in_rect(&self, rect: &Rect) -> Vec<(TileTypeId, u32)> {
        if let Some(cp) = &self.columnar {
            return cp.tiles_by_type_in_rect(rect);
        }
        let mut counts: Vec<u32> = vec![0; self.frames_of_type.len()];
        for (c, r) in rect.cells() {
            if let Some(ty) = self.tile_type_at(c, r) {
                counts[ty.index()] += 1;
            }
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, c)| (TileTypeId(i as u16), c))
            .collect()
    }

    /// Configuration frames covered by a rectangle.
    pub fn frames_in_rect(&self, rect: &Rect) -> u64 {
        if let Some(cp) = &self.columnar {
            return cp.frames_in_rect(rect);
        }
        rect.cells()
            .filter_map(|(c, r)| self.tile_type_at(c, r))
            .map(|ty| self.frames_per_tile(ty) as u64)
            .sum()
    }

    /// Total usable frames on the device (excluding forbidden tiles).
    pub fn total_frames(&self) -> u64 {
        if let Some(cp) = &self.columnar {
            return cp.total_frames();
        }
        let full = Rect::new(1, 1, self.cols, self.rows);
        let gross = self.frames_in_rect(&full);
        let forbidden: u64 = self.forbidden.iter().map(|fa| self.frames_in_rect(&fa.rect)).sum();
        gross - forbidden
    }

    /// Total usable resources on the device (excluding forbidden tiles).
    pub fn total_resources(&self) -> ResourceVec {
        if let Some(cp) = &self.columnar {
            return cp.total_resources();
        }
        let full = Rect::new(1, 1, self.cols, self.rows);
        let mut total = self.resources_in_rect(&full);
        for fa in &self.forbidden {
            total = total.saturating_sub(&self.resources_in_rect(&fa.rect));
        }
        total
    }

    /// The raw effective cell grid, row-major. Used by the structural cache
    /// keys and fingerprints of non-columnar fabrics.
    pub fn cell_types(&self) -> &[TileTypeId] {
        &self.cells
    }
}

impl From<ColumnarPartition> for FabricPartition {
    fn from(cp: ColumnarPartition) -> Self {
        let cols = cp.cols;
        let rows = cp.rows;
        let mut cells = Vec::with_capacity(cols as usize * rows as usize);
        for _row in 1..=rows {
            for col in 1..=cols {
                cells.push(cp.column_type(col).expect("column in bounds"));
            }
        }
        FabricPartition {
            device_name: cp.device_name.clone(),
            cols,
            rows,
            forbidden: cp.forbidden.clone(),
            die_boundaries: Vec::new(),
            cells,
            frames_of_type: cp.frames_table().to_vec(),
            resources_of_type: cp.resources_table().to_vec(),
            columnar: Some(cp),
        }
    }
}

/// Partitions any device into a heterogeneous tile fabric (no die
/// boundaries). Equivalent to
/// [`fabric_partition_with_boundaries`]`(device, &[])`.
pub fn fabric_partition(device: &Device) -> Result<FabricPartition, DeviceError> {
    fabric_partition_with_boundaries(device, &[])
}

/// Partitions any device into a heterogeneous tile fabric with the given
/// die-boundary rows.
///
/// The effective grid applies step 1 of the columnar partitioning procedure
/// per cell: every tile covered by a forbidden area is replaced by the first
/// non-forbidden typed tile of the same column (the column must not be fully
/// forbidden); a typed cell keeps its own type, and an untyped cell outside
/// any forbidden area is an error. Unlike [`columnar_partition`] the column
/// need not be uniform in type.
///
/// Each boundary row `r` must satisfy `1 <= r < rows` (the boundary lies
/// between rows `r` and `r + 1`); boundaries are sorted and deduplicated.
pub fn fabric_partition_with_boundaries(
    device: &Device,
    die_boundaries: &[u32],
) -> Result<FabricPartition, DeviceError> {
    let cols = device.cols();
    let rows = device.rows();

    let mut boundaries: Vec<u32> = die_boundaries.to_vec();
    boundaries.sort_unstable();
    boundaries.dedup();
    if let Some(&bad) = boundaries.iter().find(|&&b| b < 1 || b >= rows) {
        return Err(DeviceError::InvalidDieBoundary { row: bad, rows });
    }

    let mut cells = Vec::with_capacity(cols as usize * rows as usize);
    let mut replacements: Vec<Option<TileTypeId>> = Vec::with_capacity(cols as usize);
    for col in 1..=cols {
        let replacement = (1..=rows)
            .filter(|&r| !device.is_forbidden(col, r))
            .find_map(|r| device.tile_type_at(col, r));
        replacements.push(replacement);
    }
    for row in 1..=rows {
        for col in 1..=cols {
            let forbidden_here = device.is_forbidden(col, row);
            match device.tile_type_at(col, row) {
                Some(ty) if !forbidden_here => cells.push(ty),
                Some(_) | None if forbidden_here => {
                    match replacements[(col - 1) as usize] {
                        Some(ty) => cells.push(ty),
                        None => return Err(DeviceError::ColumnFullyForbidden { col }),
                    }
                }
                Some(ty) => cells.push(ty),
                None => return Err(DeviceError::UnassignedTile { col, row }),
            }
        }
    }

    let frames_of_type: Vec<u32> = device.registry.iter().map(|(_, t)| t.frames).collect();
    let resources_of_type: Vec<ResourceVec> =
        device.registry.iter().map(|(_, t)| t.resources).collect();

    Ok(FabricPartition {
        device_name: device.name.clone(),
        cols,
        rows,
        forbidden: device.forbidden.clone(),
        die_boundaries: boundaries,
        cells,
        columnar: columnar_partition(device).ok(),
        frames_of_type,
        resources_of_type,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{xc5vfx70t, DeviceBuilder};
    use crate::grid::TileGrid;
    use crate::resources::ResourceVec;
    use crate::tile::{TileType, TileTypeRegistry};

    /// A genuinely heterogeneous 4x4 device: column 2 is BRAM on rows 1-2 and
    /// CLB on rows 3-4 (not columnar-partitionable).
    fn hetero_device() -> Device {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let bram = reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap();
        let mut grid = TileGrid::new(4, 4).unwrap();
        for c in 1..=4 {
            grid.fill_column(c, clb).unwrap();
        }
        grid.set(2, 1, Some(bram)).unwrap();
        grid.set(2, 2, Some(bram)).unwrap();
        Device::new("hetero-toy", reg, grid, vec![]).unwrap()
    }

    #[test]
    fn columnar_device_yields_a_legacy_fabric() {
        let d = xc5vfx70t();
        let f = fabric_partition(&d).unwrap();
        assert!(f.is_columnar_legacy());
        let cp = f.columnar().unwrap();
        assert_eq!(cp.cols, f.cols);
        // Per-cell accounting agrees with the columnar view everywhere.
        let r = Rect::new(3, 2, 5, 4);
        assert_eq!(f.frames_in_rect(&r), cp.frames_in_rect(&r));
        assert_eq!(f.resources_in_rect(&r), cp.resources_in_rect(&r));
        assert_eq!(f.tiles_by_type_in_rect(&r), cp.tiles_by_type_in_rect(&r));
        assert_eq!(f.total_frames(), cp.total_frames());
        assert_eq!(f.total_resources(), cp.total_resources());
    }

    #[test]
    fn from_columnar_partition_embeds_exactly() {
        let d = xc5vfx70t();
        let cp = columnar_partition(&d).unwrap();
        let f = FabricPartition::from(cp.clone());
        assert!(f.is_columnar_legacy());
        assert_eq!(f.columnar(), Some(&cp));
        for col in 1..=f.cols {
            for row in 1..=f.rows {
                assert_eq!(f.tile_type_at(col, row), cp.column_type(col));
            }
        }
    }

    #[test]
    fn hetero_device_is_partitioned_per_cell() {
        let d = hetero_device();
        assert!(columnar_partition(&d).is_err());
        let f = fabric_partition(&d).unwrap();
        assert!(f.columnar().is_none());
        assert!(!f.is_columnar_legacy());
        assert_eq!(f.tile_type_at(2, 1).unwrap().index(), 1);
        assert_eq!(f.tile_type_at(2, 3).unwrap().index(), 0);
        let r = Rect::new(1, 1, 2, 4);
        assert_eq!(f.resources_in_rect(&r), ResourceVec::new(6, 2, 0));
        assert_eq!(f.frames_in_rect(&r), 6 * 36 + 2 * 30);
    }

    #[test]
    fn forbidden_cells_are_replaced_per_column() {
        let mut b = DeviceBuilder::new("fab-blk");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(4).columns(&[clb, bram, clb, clb]);
        b.hard_block("blk", Rect::new(2, 2, 2, 2));
        let d = b.build().unwrap();
        let f = fabric_partition(&d).unwrap();
        // The BRAM column keeps its type under the block.
        assert_eq!(f.tile_type_at(2, 2).unwrap().index(), 1);
        assert_eq!(f.tile_type_at(3, 3).unwrap().index(), 0);
        assert!(f.rect_crosses_forbidden(&Rect::new(2, 2, 1, 1)));
    }

    #[test]
    fn die_boundaries_are_validated_and_checked() {
        let d = hetero_device();
        let f = fabric_partition_with_boundaries(&d, &[2]).unwrap();
        assert_eq!(f.die_boundaries, vec![2]);
        assert!(!f.is_columnar_legacy());
        // Boundary 2 lies between rows 2 and 3.
        assert!(f.rect_crosses_die_boundary(&Rect::new(1, 2, 2, 2)));
        assert!(f.rect_crosses_die_boundary(&Rect::new(1, 1, 1, 4)));
        assert!(!f.rect_crosses_die_boundary(&Rect::new(1, 1, 2, 2)));
        assert!(!f.rect_crosses_die_boundary(&Rect::new(1, 3, 2, 2)));
        // Static placement is unaffected by boundaries.
        assert!(f.placement_legal(&Rect::new(1, 2, 2, 2)));

        let err = fabric_partition_with_boundaries(&d, &[4]).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidDieBoundary { row: 4, rows: 4 }));
        assert!(fabric_partition_with_boundaries(&d, &[0]).is_err());
    }

    #[test]
    fn boundaries_are_sorted_and_deduplicated() {
        let d = hetero_device();
        let f = fabric_partition_with_boundaries(&d, &[3, 1, 3]).unwrap();
        assert_eq!(f.die_boundaries, vec![1, 3]);
    }

    #[test]
    fn columnar_device_with_boundaries_keeps_the_columnar_view() {
        let d = xc5vfx70t();
        let f = fabric_partition_with_boundaries(&d, &[4]).unwrap();
        assert!(f.columnar().is_some());
        assert!(!f.is_columnar_legacy(), "die boundaries disqualify the legacy fast path");
        assert!(f.rect_crosses_die_boundary(&Rect::new(1, 1, 3, 8)));
    }
}
