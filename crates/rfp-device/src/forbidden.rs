//! Forbidden areas (set `A` of Section III-A).
//!
//! A forbidden area is a fixed rectangular area of the device that cannot be
//! crossed by reconfigurable regions nor by free-compatible areas. They model
//! hard blocks that break the columnar structure of the fabric — for example
//! the PowerPC 440 block in the middle of a Virtex-5 FX70T — and any region
//! the designer wants to reserve (static logic, IO banks, …).
//!
//! Unlike the portions of set `P`, forbidden areas *overlap* with the
//! portions: the columnar partitioning first replaces the tiles under a
//! forbidden area with tiles of the same column (step 1) and only afterwards
//! derives the portions, so portions still tile the whole device.

use crate::geometry::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named rectangular forbidden area.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForbiddenArea {
    /// Designer-visible name (e.g. `"PPC440"`).
    pub name: String,
    /// The tiles covered by the area.
    pub rect: Rect,
}

impl ForbiddenArea {
    /// Creates a forbidden area.
    pub fn new(name: impl Into<String>, rect: Rect) -> Self {
        ForbiddenArea { name: name.into(), rect }
    }

    /// Parameter `xa1_a`: leftmost column of a tile in the area.
    #[inline]
    pub fn xa1(&self) -> u32 {
        self.rect.x
    }

    /// Parameter `xa2_a`: rightmost column of a tile in the area.
    #[inline]
    pub fn xa2(&self) -> u32 {
        self.rect.x2()
    }

    /// Parameter `raa_{a,r}`: `true` if the area lies on row `r`.
    #[inline]
    pub fn lies_on_row(&self, row: u32) -> bool {
        row >= self.rect.y && row <= self.rect.y2()
    }

    /// Returns `true` if the area covers the tile at `(col, row)`.
    #[inline]
    pub fn covers(&self, col: u32, row: u32) -> bool {
        self.rect.contains(col, row)
    }

    /// Returns `true` if a candidate region rectangle crosses this area.
    #[inline]
    pub fn blocks(&self, candidate: &Rect) -> bool {
        self.rect.overlaps(candidate)
    }
}

impl fmt::Display for ForbiddenArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppc() -> ForbiddenArea {
        ForbiddenArea::new("PPC440", Rect::new(19, 4, 4, 3))
    }

    #[test]
    fn x_extent_parameters() {
        let a = ppc();
        assert_eq!(a.xa1(), 19);
        assert_eq!(a.xa2(), 22);
    }

    #[test]
    fn row_membership() {
        let a = ppc();
        assert!(!a.lies_on_row(3));
        assert!(a.lies_on_row(4));
        assert!(a.lies_on_row(6));
        assert!(!a.lies_on_row(7));
    }

    #[test]
    fn covers_and_blocks() {
        let a = ppc();
        assert!(a.covers(20, 5));
        assert!(!a.covers(20, 7));
        // A region overlapping a single tile of the area is blocked.
        assert!(a.blocks(&Rect::new(22, 6, 3, 3)));
        // A region next to the area is not blocked.
        assert!(!a.blocks(&Rect::new(23, 1, 3, 8)));
        assert!(!a.blocks(&Rect::new(19, 7, 4, 2)));
    }

    #[test]
    fn display_includes_name() {
        assert!(ppc().to_string().contains("PPC440"));
    }
}
