//! Area compatibility (Definitions .1 and .2, Figure 1).
//!
//! Two areas are **compatible** if they have the same shape, size and
//! relative positioning of tiles of the same type: a bitstream generated for
//! one can, in principle, be moved to the other by only rewriting frame
//! addresses. An area is **free-compatible** with respect to another if it is
//! compatible *and* does not overlap any area assigned to a reconfigurable
//! region or any other free-compatible area.
//!
//! This module provides both a general 2-D check working directly on the
//! tile grid (used by the Figure 1 example and by the bitstream relocation
//! filter) and a fast columnar check working on a [`ColumnarPartition`]
//! (used by the floorplanner and its validators).

use crate::fabric::FabricPartition;
use crate::geometry::Rect;
use crate::grid::Device;
use crate::partition::ColumnarPartition;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of a compatibility check, carrying the reason for a mismatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompatReport {
    /// The two areas are compatible.
    Compatible,
    /// The areas have different widths or heights.
    ShapeMismatch {
        /// Size of the first area (w, h).
        a: (u32, u32),
        /// Size of the second area (w, h).
        b: (u32, u32),
    },
    /// A tile at the given relative offset has a different type in the two
    /// areas (or is missing in one of them).
    TileMismatch {
        /// Column offset (0-based) of the first mismatching tile.
        dx: u32,
        /// Row offset (0-based) of the first mismatching tile.
        dy: u32,
    },
    /// One of the areas lies (partially) outside the device.
    OutOfBounds,
    /// One of the areas crosses a forbidden area.
    CrossesForbidden,
    /// One of the areas spans a die boundary; bitstreams cannot be relocated
    /// across dies, so such areas are never relocation-compatible.
    CrossesDieBoundary,
}

impl CompatReport {
    /// Returns `true` for [`CompatReport::Compatible`].
    pub fn is_compatible(&self) -> bool {
        matches!(self, CompatReport::Compatible)
    }
}

impl fmt::Display for CompatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatReport::Compatible => write!(f, "compatible"),
            CompatReport::ShapeMismatch { a, b } => {
                write!(f, "shape mismatch: {}x{} vs {}x{}", a.0, a.1, b.0, b.1)
            }
            CompatReport::TileMismatch { dx, dy } => {
                write!(f, "tile type mismatch at relative offset (+{dx}, +{dy})")
            }
            CompatReport::OutOfBounds => write!(f, "area lies outside the device"),
            CompatReport::CrossesForbidden => write!(f, "area crosses a forbidden area"),
            CompatReport::CrossesDieBoundary => write!(f, "area spans a die boundary"),
        }
    }
}

/// General 2-D compatibility check on the raw tile grid (Definition .1).
///
/// Checks shape, size and the tile type at every relative position. Areas
/// crossing forbidden areas are never compatible, because their configuration
/// data cannot be owned by a reconfigurable module.
pub fn areas_compatible(device: &Device, a: &Rect, b: &Rect) -> CompatReport {
    if !device.grid.rect_in_bounds(a) || !device.grid.rect_in_bounds(b) {
        return CompatReport::OutOfBounds;
    }
    if device.rect_crosses_forbidden(a) || device.rect_crosses_forbidden(b) {
        return CompatReport::CrossesForbidden;
    }
    if a.w != b.w || a.h != b.h {
        return CompatReport::ShapeMismatch { a: (a.w, a.h), b: (b.w, b.h) };
    }
    for dy in 0..a.h {
        for dx in 0..a.w {
            let ta = device.tile_type_at(a.x + dx, a.y + dy);
            let tb = device.tile_type_at(b.x + dx, b.y + dy);
            if ta != tb {
                return CompatReport::TileMismatch { dx, dy };
            }
        }
    }
    CompatReport::Compatible
}

/// Columnar compatibility check (the specialisation used by the MILP model).
///
/// On a columnar-partitioned device the tile type only depends on the column,
/// so two areas are compatible iff they have the same width and height and
/// the same left-to-right sequence of column types, and neither crosses a
/// forbidden area.
pub fn columnar_compatible(partition: &ColumnarPartition, a: &Rect, b: &Rect) -> CompatReport {
    if !partition.rect_in_bounds(a) || !partition.rect_in_bounds(b) {
        return CompatReport::OutOfBounds;
    }
    if partition.rect_crosses_forbidden(a) || partition.rect_crosses_forbidden(b) {
        return CompatReport::CrossesForbidden;
    }
    if a.w != b.w || a.h != b.h {
        return CompatReport::ShapeMismatch { a: (a.w, a.h), b: (b.w, b.h) };
    }
    for dx in 0..a.w {
        let ta = partition.column_type(a.x + dx);
        let tb = partition.column_type(b.x + dx);
        if ta != tb {
            return CompatReport::TileMismatch { dx, dy: 0 };
        }
    }
    CompatReport::Compatible
}

/// Generalized fabric compatibility check.
///
/// Reduces to [`columnar_compatible`] on columnar fabrics (bit-for-bit: same
/// checks in the same order) and extends it with two fabric-only rules:
///
/// * areas spanning a **die boundary** are never relocation-compatible
///   ([`CompatReport::CrossesDieBoundary`]);
/// * on non-columnar fabrics the tile types are compared **per cell**, like
///   the exhaustive grid oracle [`areas_compatible`].
pub fn fabric_compatible(partition: &FabricPartition, a: &Rect, b: &Rect) -> CompatReport {
    if !partition.rect_in_bounds(a) || !partition.rect_in_bounds(b) {
        return CompatReport::OutOfBounds;
    }
    if partition.rect_crosses_forbidden(a) || partition.rect_crosses_forbidden(b) {
        return CompatReport::CrossesForbidden;
    }
    if partition.rect_crosses_die_boundary(a) || partition.rect_crosses_die_boundary(b) {
        return CompatReport::CrossesDieBoundary;
    }
    if a.w != b.w || a.h != b.h {
        return CompatReport::ShapeMismatch { a: (a.w, a.h), b: (b.w, b.h) };
    }
    if let Some(cp) = partition.columnar() {
        // Fast columnar path: the tile type only depends on the column.
        for dx in 0..a.w {
            let ta = cp.column_type(a.x + dx);
            let tb = cp.column_type(b.x + dx);
            if ta != tb {
                return CompatReport::TileMismatch { dx, dy: 0 };
            }
        }
        return CompatReport::Compatible;
    }
    for dy in 0..a.h {
        for dx in 0..a.w {
            let ta = partition.tile_type_at(a.x + dx, a.y + dy);
            let tb = partition.tile_type_at(b.x + dx, b.y + dy);
            if ta != tb {
                return CompatReport::TileMismatch { dx, dy };
            }
        }
    }
    CompatReport::Compatible
}

/// Free-compatibility check (Definition .2).
///
/// `candidate` is free-compatible with respect to `source` if the two areas
/// are fabric-compatible and `candidate` does not overlap any of the
/// `occupied` rectangles (areas assigned to reconfigurable regions or other
/// free-compatible areas).
pub fn free_compatible(
    partition: &FabricPartition,
    source: &Rect,
    candidate: &Rect,
    occupied: &[Rect],
) -> bool {
    fabric_compatible(partition, source, candidate).is_compatible()
        && !occupied.iter().any(|o| o.overlaps(candidate))
}

/// Enumerates every placement of an area free-compatible with `source`,
/// excluding `source` itself and any placement overlapping `occupied`.
///
/// Candidates are returned in row-major order (top-to-bottom, left-to-right
/// of their top-left corner). This is the ground truth used by tests and by
/// the combinatorial floorplanning engine.
pub fn enumerate_free_compatible(
    partition: &FabricPartition,
    source: &Rect,
    occupied: &[Rect],
) -> Vec<Rect> {
    let mut out = Vec::new();
    if source.w > partition.cols || source.h > partition.rows {
        return out;
    }
    for y in 1..=(partition.rows - source.h + 1) {
        for x in 1..=(partition.cols - source.w + 1) {
            let candidate = Rect::new(x, y, source.w, source.h);
            if candidate == *source {
                continue;
            }
            if free_compatible(partition, source, &candidate, occupied) {
                out.push(candidate);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::figure1_device;
    use crate::forbidden::ForbiddenArea;
    use crate::grid::{Device, TileGrid};
    use crate::partition::columnar_partition;
    use crate::resources::ResourceVec;
    use crate::tile::{TileType, TileTypeRegistry};

    /// 6 columns x 6 rows, column types alternating Blue Green Blue Green Blue Green.
    fn striped_device() -> Device {
        figure1_device()
    }

    #[test]
    fn figure1_a_b_compatible_a_c_not() {
        // Reproduces the qualitative content of Figure 1: areas A and B are
        // compatible (same relative column types), A and C are not (the first
        // column type differs).
        let d = striped_device();
        let a = Rect::new(1, 1, 2, 2);
        let b = Rect::new(3, 4, 2, 2);
        let c = Rect::new(2, 1, 2, 2);
        assert!(areas_compatible(&d, &a, &b).is_compatible());
        assert_eq!(areas_compatible(&d, &a, &c), CompatReport::TileMismatch { dx: 0, dy: 0 });
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let d = striped_device();
        let a = Rect::new(1, 1, 2, 2);
        let b = Rect::new(1, 4, 2, 3);
        assert_eq!(
            areas_compatible(&d, &a, &b),
            CompatReport::ShapeMismatch { a: (2, 2), b: (2, 3) }
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let d = striped_device();
        let a = Rect::new(1, 1, 2, 2);
        let b = Rect::new(6, 6, 2, 2);
        assert_eq!(areas_compatible(&d, &a, &b), CompatReport::OutOfBounds);
    }

    #[test]
    fn forbidden_crossing_is_reported() {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let mut grid = TileGrid::new(4, 4).unwrap();
        for c in 1..=4 {
            grid.fill_column(c, clb).unwrap();
        }
        let d =
            Device::new("fb", reg, grid, vec![ForbiddenArea::new("blk", Rect::new(3, 3, 1, 1))])
                .unwrap();
        let a = Rect::new(1, 1, 2, 2);
        let b = Rect::new(3, 3, 2, 2);
        assert_eq!(areas_compatible(&d, &a, &b), CompatReport::CrossesForbidden);
    }

    #[test]
    fn columnar_check_agrees_with_grid_check_on_columnar_devices() {
        let d = striped_device();
        let p = columnar_partition(&d).unwrap();
        let rects = [
            Rect::new(1, 1, 2, 2),
            Rect::new(3, 4, 2, 2),
            Rect::new(2, 1, 2, 2),
            Rect::new(5, 2, 2, 3),
            Rect::new(1, 3, 3, 2),
        ];
        for a in &rects {
            for b in &rects {
                assert_eq!(
                    areas_compatible(&d, a, b).is_compatible(),
                    columnar_compatible(&p, a, b).is_compatible(),
                    "disagreement for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn fabric_check_bit_agrees_with_columnar_check_on_columnar_devices() {
        let d = striped_device();
        let cp = columnar_partition(&d).unwrap();
        let f = crate::fabric::fabric_partition(&d).unwrap();
        for ax in 1..=5u32 {
            for ay in 1..=5u32 {
                for bx in 1..=5u32 {
                    for by in 1..=5u32 {
                        let a = Rect::new(ax, ay, 2, 2);
                        let b = Rect::new(bx, by, 2, 2);
                        assert_eq!(
                            fabric_compatible(&f, &a, &b),
                            columnar_compatible(&cp, &a, &b),
                            "disagreement for {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn die_boundary_blocks_relocation_but_not_identity_of_report_order() {
        let d = striped_device();
        let f = crate::fabric::fabric_partition_with_boundaries(&d, &[3]).unwrap();
        let a = Rect::new(1, 1, 2, 2); // above the boundary
        let b = Rect::new(3, 4, 2, 2); // below the boundary
        assert!(fabric_compatible(&f, &a, &b).is_compatible());
        // A source spanning rows 3-4 crosses the boundary between rows 3 and 4.
        let crossing = Rect::new(1, 3, 2, 2);
        assert_eq!(
            fabric_compatible(&f, &crossing, &a),
            CompatReport::CrossesDieBoundary
        );
        assert_eq!(
            fabric_compatible(&f, &a, &crossing),
            CompatReport::CrossesDieBoundary
        );
        // Out-of-bounds and forbidden checks still take precedence.
        let oob = Rect::new(6, 6, 2, 2);
        assert_eq!(fabric_compatible(&f, &crossing, &oob), CompatReport::OutOfBounds);
    }

    #[test]
    fn free_compatible_respects_occupied_areas() {
        let d = striped_device();
        let p = crate::fabric::fabric_partition(&d).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(3, 4, 2, 2);
        assert!(free_compatible(&p, &source, &target, &[]));
        // Another region sitting on the target makes it non-free.
        let blocker = Rect::new(4, 5, 2, 2);
        assert!(!free_compatible(&p, &source, &target, &[blocker]));
        // A blocker elsewhere does not interfere.
        let elsewhere = Rect::new(5, 1, 2, 2);
        assert!(free_compatible(&p, &source, &target, &[elsewhere]));
    }

    #[test]
    fn enumeration_matches_pairwise_checks() {
        let d = striped_device();
        let p = crate::fabric::fabric_partition(&d).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let occupied = [source, Rect::new(5, 1, 2, 2)];
        let found = enumerate_free_compatible(&p, &source, &occupied);
        assert!(!found.is_empty());
        for cand in &found {
            assert!(free_compatible(&p, &source, cand, &occupied));
            assert_ne!(cand, &source);
        }
        // Every free-compatible placement is found: cross-check with a brute
        // force scan.
        let mut brute = Vec::new();
        for y in 1..=(p.rows - source.h + 1) {
            for x in 1..=(p.cols - source.w + 1) {
                let c = Rect::new(x, y, source.w, source.h);
                if c != source && free_compatible(&p, &source, &c, &occupied) {
                    brute.push(c);
                }
            }
        }
        assert_eq!(found, brute);
    }

    #[test]
    fn oversized_source_has_no_candidates() {
        let d = striped_device();
        let p = crate::fabric::fabric_partition(&d).unwrap();
        let source = Rect::new(1, 1, 6, 6);
        assert!(enumerate_free_compatible(&p, &source, &[]).is_empty());
    }

    #[test]
    fn report_display_is_informative() {
        assert_eq!(CompatReport::Compatible.to_string(), "compatible");
        assert!(CompatReport::TileMismatch { dx: 1, dy: 0 }.to_string().contains("(+1, +0)"));
        assert!(CompatReport::ShapeMismatch { a: (2, 2), b: (3, 2) }
            .to_string()
            .contains("2x2 vs 3x2"));
    }
}
