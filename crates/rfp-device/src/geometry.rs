//! Rectangle geometry on the tile grid.
//!
//! All coordinates are **1-based** and **inclusive**, matching the paper's
//! convention (`x_n >= 1`, `maxW` is the last valid column). Columns grow
//! from left to right, rows from top to bottom (the partitioning procedure
//! scans "top to bottom, left to right").

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle of tiles, expressed in 1-based inclusive tile
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Leftmost column covered (1-based).
    pub x: u32,
    /// Topmost row covered (1-based).
    pub y: u32,
    /// Width in tiles (>= 1).
    pub w: u32,
    /// Height in tiles (>= 1).
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    ///
    /// # Panics
    /// Panics if `w` or `h` is zero: a region always covers at least one tile.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        assert!(x >= 1 && y >= 1, "tile coordinates are 1-based");
        assert!(w >= 1 && h >= 1, "a rectangle covers at least one tile");
        Rect { x, y, w, h }
    }

    /// Creates a rectangle from two opposite corners (both inclusive).
    pub fn from_corners(x1: u32, y1: u32, x2: u32, y2: u32) -> Self {
        let (x1, x2) = (x1.min(x2), x1.max(x2));
        let (y1, y2) = (y1.min(y2), y1.max(y2));
        Rect::new(x1, y1, x2 - x1 + 1, y2 - y1 + 1)
    }

    /// Rightmost column covered (inclusive).
    #[inline]
    pub fn x2(&self) -> u32 {
        self.x + self.w - 1
    }

    /// Bottommost row covered (inclusive).
    #[inline]
    pub fn y2(&self) -> u32 {
        self.y + self.h - 1
    }

    /// Number of tiles covered.
    #[inline]
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Half-perimeter (w + h), the interface-cost proxy used by floorplanning
    /// objectives.
    #[inline]
    pub fn half_perimeter(&self) -> u32 {
        self.w + self.h
    }

    /// Returns `true` if the tile at `(col, row)` is covered.
    #[inline]
    pub fn contains(&self, col: u32, row: u32) -> bool {
        col >= self.x && col <= self.x2() && row >= self.y && row <= self.y2()
    }

    /// Returns `true` if the two rectangles share at least one tile.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x <= other.x2() && other.x <= self.x2() && self.y <= other.y2() && other.y <= self.y2()
    }

    /// Returns `true` if `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x && other.x2() <= self.x2() && other.y >= self.y && other.y2() <= self.y2()
    }

    /// Returns the intersection of the two rectangles, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = self.x2().min(other.x2());
        let y2 = self.y2().min(other.y2());
        Some(Rect::from_corners(x1, y1, x2, y2))
    }

    /// Returns `true` if the projections of the two rectangles on the x axis
    /// intersect (the quantity the `k_{n,p}` variables of the MILP model
    /// encode).
    #[inline]
    pub fn x_projection_overlaps(&self, other: &Rect) -> bool {
        self.x <= other.x2() && other.x <= self.x2()
    }

    /// Number of columns shared by the x projections of the two rectangles.
    pub fn x_overlap_width(&self, other: &Rect) -> u32 {
        if !self.x_projection_overlaps(other) {
            0
        } else {
            self.x2().min(other.x2()) - self.x.max(other.x) + 1
        }
    }

    /// Manhattan distance between the centres of the two rectangles, in tile
    /// units scaled by 2 (so the value stays integral for odd sizes).
    pub fn center_distance_x2(&self, other: &Rect) -> u64 {
        let cx_a = 2 * self.x as i64 + self.w as i64 - 1;
        let cy_a = 2 * self.y as i64 + self.h as i64 - 1;
        let cx_b = 2 * other.x as i64 + other.w as i64 - 1;
        let cy_b = 2 * other.y as i64 + other.h as i64 - 1;
        ((cx_a - cx_b).abs() + (cy_a - cy_b).abs()) as u64
    }

    /// Iterates over all `(col, row)` tile coordinates covered, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let xs = self.x..=self.x2();
        let ys = self.y..=self.y2();
        ys.flat_map(move |r| xs.clone().map(move |c| (c, r)))
    }

    /// Columns covered, left to right.
    pub fn columns(&self) -> impl Iterator<Item = u32> {
        self.x..=self.x2()
    }

    /// Rows covered, top to bottom.
    pub fn rows(&self) -> impl Iterator<Item = u32> {
        self.y..=self.y2()
    }

    /// Translates the rectangle by a signed column/row delta, returning `None`
    /// if the result would leave the 1-based coordinate space.
    pub fn translated(&self, dx: i64, dy: i64) -> Option<Rect> {
        let nx = self.x as i64 + dx;
        let ny = self.y as i64 + dy;
        if nx < 1 || ny < 1 || nx > u32::MAX as i64 || ny > u32::MAX as i64 {
            return None;
        }
        Some(Rect { x: nx as u32, y: ny as u32, w: self.w, h: self.h })
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[x={}..{}, y={}..{}]", self.x, self.x2(), self.y, self.y2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_area() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.x2(), 5);
        assert_eq!(r.y2(), 7);
        assert_eq!(r.area(), 20);
        assert_eq!(r.half_perimeter(), 9);
    }

    #[test]
    fn from_corners_normalizes_order() {
        let r = Rect::from_corners(5, 7, 2, 3);
        assert_eq!(r, Rect::new(2, 3, 4, 5));
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_width_panics() {
        let _ = Rect::new(1, 1, 0, 1);
    }

    #[test]
    fn contains_boundaries() {
        let r = Rect::new(2, 2, 3, 2);
        assert!(r.contains(2, 2));
        assert!(r.contains(4, 3));
        assert!(!r.contains(5, 2));
        assert!(!r.contains(2, 4));
        assert!(!r.contains(1, 2));
    }

    #[test]
    fn overlap_is_symmetric_and_tight() {
        let a = Rect::new(1, 1, 3, 3);
        let b = Rect::new(3, 3, 2, 2); // shares tile (3,3)
        let c = Rect::new(4, 1, 2, 2); // adjacent to a, no shared tile
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn intersection_matches_overlap() {
        let a = Rect::new(1, 1, 4, 4);
        let b = Rect::new(3, 2, 4, 4);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::from_corners(3, 2, 4, 4));
        let far = Rect::new(10, 10, 1, 1);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn x_projection_and_overlap_width() {
        let a = Rect::new(2, 1, 3, 1); // cols 2..4
        let b = Rect::new(4, 9, 3, 1); // cols 4..6
        let c = Rect::new(5, 1, 2, 1); // cols 5..6
        assert!(a.x_projection_overlaps(&b));
        assert_eq!(a.x_overlap_width(&b), 1);
        assert!(!a.x_projection_overlaps(&c));
        assert_eq!(a.x_overlap_width(&c), 0);
    }

    #[test]
    fn center_distance_is_manhattan() {
        let a = Rect::new(1, 1, 2, 2); // centre (1.5, 1.5) -> x2 = (3,3)
        let b = Rect::new(4, 1, 2, 2); // centre (4.5, 1.5) -> x2 = (9,3)
        assert_eq!(a.center_distance_x2(&b), 6); // 3 tiles * 2
        assert_eq!(a.center_distance_x2(&a), 0);
    }

    #[test]
    fn cells_enumerates_every_tile_once() {
        let r = Rect::new(2, 3, 2, 2);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells, vec![(2, 3), (3, 3), (2, 4), (3, 4)]);
        assert_eq!(cells.len() as u64, r.area());
    }

    #[test]
    fn translated_respects_bounds() {
        let r = Rect::new(2, 2, 2, 2);
        assert_eq!(r.translated(-1, -1), Some(Rect::new(1, 1, 2, 2)));
        assert_eq!(r.translated(-2, 0), None);
        assert_eq!(r.translated(3, 4), Some(Rect::new(5, 6, 2, 2)));
    }

    #[test]
    fn contains_rect_checks_full_containment() {
        let outer = Rect::new(1, 1, 5, 5);
        assert!(outer.contains_rect(&Rect::new(2, 2, 2, 2)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(4, 4, 3, 3)));
    }
}
