//! The tile grid and the full device description.

use crate::error::DeviceError;
use crate::forbidden::ForbiddenArea;
use crate::geometry::Rect;
use crate::resources::ResourceVec;
use crate::tile::{TileTypeId, TileTypeRegistry};
use serde::{Deserialize, Serialize};

/// A rectangular grid of tiles.
///
/// Every cell either carries a [`TileTypeId`] or is empty (`None`), which is
/// used for cells occupied by hard blocks (embedded processors, PCIe cores)
/// that carry no reconfigurable resources. Coordinates are 1-based: columns
/// `1..=cols` left to right, rows `1..=rows` top to bottom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid {
    cols: u32,
    rows: u32,
    /// Row-major cell storage: index `(row-1)*cols + (col-1)`.
    cells: Vec<Option<TileTypeId>>,
}

impl TileGrid {
    /// Creates an empty grid with the given dimensions.
    pub fn new(cols: u32, rows: u32) -> Result<Self, DeviceError> {
        if cols == 0 || rows == 0 {
            return Err(DeviceError::EmptyGrid);
        }
        Ok(TileGrid { cols, rows, cells: vec![None; cols as usize * rows as usize] })
    }

    /// Number of columns (`maxW` in the MILP model).
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows (`|R|` in the MILP model).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Returns `true` if the 1-based coordinate lies inside the grid.
    #[inline]
    pub fn in_bounds(&self, col: u32, row: u32) -> bool {
        col >= 1 && col <= self.cols && row >= 1 && row <= self.rows
    }

    /// Returns `true` if the rectangle lies fully inside the grid.
    #[inline]
    pub fn rect_in_bounds(&self, rect: &Rect) -> bool {
        rect.x >= 1 && rect.y >= 1 && rect.x2() <= self.cols && rect.y2() <= self.rows
    }

    fn idx(&self, col: u32, row: u32) -> usize {
        ((row - 1) as usize) * self.cols as usize + (col - 1) as usize
    }

    /// Reads the tile type at `(col, row)`.
    pub fn get(&self, col: u32, row: u32) -> Result<Option<TileTypeId>, DeviceError> {
        if !self.in_bounds(col, row) {
            return Err(DeviceError::OutOfBounds { col, row, cols: self.cols, rows: self.rows });
        }
        Ok(self.cells[self.idx(col, row)])
    }

    /// Writes the tile type at `(col, row)`.
    pub fn set(&mut self, col: u32, row: u32, ty: Option<TileTypeId>) -> Result<(), DeviceError> {
        if !self.in_bounds(col, row) {
            return Err(DeviceError::OutOfBounds { col, row, cols: self.cols, rows: self.rows });
        }
        let i = self.idx(col, row);
        self.cells[i] = ty;
        Ok(())
    }

    /// Fills an entire column with one tile type.
    pub fn fill_column(&mut self, col: u32, ty: TileTypeId) -> Result<(), DeviceError> {
        for row in 1..=self.rows {
            self.set(col, row, Some(ty))?;
        }
        Ok(())
    }

    /// Fills a rectangle with one tile type (or clears it with `None`).
    pub fn fill_rect(&mut self, rect: &Rect, ty: Option<TileTypeId>) -> Result<(), DeviceError> {
        if !self.rect_in_bounds(rect) {
            return Err(DeviceError::OutOfBounds {
                col: rect.x2(),
                row: rect.y2(),
                cols: self.cols,
                rows: self.rows,
            });
        }
        for (c, r) in rect.cells() {
            let i = self.idx(c, r);
            self.cells[i] = ty;
        }
        Ok(())
    }

    /// Iterates over all `(col, row, tile_type)` cells, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, Option<TileTypeId>)> + '_ {
        (1..=self.rows)
            .flat_map(move |r| (1..=self.cols).map(move |c| (c, r, self.cells[self.idx(c, r)])))
    }
}

/// A complete device description: tile-type registry, tile grid and the list
/// of forbidden areas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable device name (e.g. `"xc5vfx70t"`).
    pub name: String,
    /// Registry of tile types present on the device.
    pub registry: TileTypeRegistry,
    /// The tile grid.
    pub grid: TileGrid,
    /// Forbidden areas that regions and free-compatible areas must not cross.
    pub forbidden: Vec<ForbiddenArea>,
}

impl Device {
    /// Assembles and validates a device description.
    ///
    /// Validation checks that every referenced tile type is registered, that
    /// forbidden areas lie inside the grid, and that every cell without a tile
    /// type is covered by a forbidden area (hard blocks must be declared).
    pub fn new(
        name: impl Into<String>,
        registry: TileTypeRegistry,
        grid: TileGrid,
        forbidden: Vec<ForbiddenArea>,
    ) -> Result<Self, DeviceError> {
        let device = Device { name: name.into(), registry, grid, forbidden };
        device.validate()?;
        Ok(device)
    }

    /// Re-runs the construction-time validation.
    pub fn validate(&self) -> Result<(), DeviceError> {
        for fa in &self.forbidden {
            if !self.grid.rect_in_bounds(&fa.rect) {
                return Err(DeviceError::ForbiddenOutOfBounds { name: fa.name.clone() });
            }
        }
        for (col, row, ty) in self.grid.iter() {
            match ty {
                Some(id) => self.registry.validate(id)?,
                None => {
                    if !self.is_forbidden(col, row) {
                        return Err(DeviceError::UnassignedTile { col, row });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.grid.cols()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.grid.rows()
    }

    /// Tile type at `(col, row)`, if the cell carries one.
    pub fn tile_type_at(&self, col: u32, row: u32) -> Option<TileTypeId> {
        self.grid.get(col, row).ok().flatten()
    }

    /// Returns `true` if `(col, row)` is covered by any forbidden area.
    pub fn is_forbidden(&self, col: u32, row: u32) -> bool {
        self.forbidden.iter().any(|fa| fa.covers(col, row))
    }

    /// Returns `true` if the rectangle crosses any forbidden area.
    pub fn rect_crosses_forbidden(&self, rect: &Rect) -> bool {
        self.forbidden.iter().any(|fa| fa.blocks(rect))
    }

    /// Total reconfigurable resources of the device, excluding tiles covered
    /// by forbidden areas.
    pub fn total_resources(&self) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for (col, row, ty) in self.grid.iter() {
            if self.is_forbidden(col, row) {
                continue;
            }
            if let Some(id) = ty {
                total += self.registry.expect(id).resources;
            }
        }
        total
    }

    /// Total configuration frames of the usable (non-forbidden) tiles.
    pub fn total_frames(&self) -> u64 {
        let mut total = 0u64;
        for (col, row, ty) in self.grid.iter() {
            if self.is_forbidden(col, row) {
                continue;
            }
            if let Some(id) = ty {
                total += self.registry.expect(id).frames as u64;
            }
        }
        total
    }

    /// Number of usable (typed and non-forbidden) tiles.
    pub fn usable_tiles(&self) -> u64 {
        self.grid.iter().filter(|(c, r, ty)| ty.is_some() && !self.is_forbidden(*c, *r)).count()
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVec;
    use crate::tile::TileType;

    fn small_device() -> Device {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let bram = reg.register(TileType::new("BRAM", ResourceVec::new(0, 1, 0), 30)).unwrap();
        let mut grid = TileGrid::new(4, 3).unwrap();
        for col in 1..=4 {
            let ty = if col == 3 { bram } else { clb };
            grid.fill_column(col, ty).unwrap();
        }
        Device::new("toy", reg, grid, vec![]).unwrap()
    }

    #[test]
    fn grid_rejects_degenerate_dimensions() {
        assert!(matches!(TileGrid::new(0, 3), Err(DeviceError::EmptyGrid)));
        assert!(matches!(TileGrid::new(3, 0), Err(DeviceError::EmptyGrid)));
    }

    #[test]
    fn grid_get_set_roundtrip_and_bounds() {
        let mut grid = TileGrid::new(3, 2).unwrap();
        assert_eq!(grid.get(1, 1).unwrap(), None);
        grid.set(2, 2, Some(TileTypeId(0))).unwrap();
        assert_eq!(grid.get(2, 2).unwrap(), Some(TileTypeId(0)));
        assert!(grid.get(4, 1).is_err());
        assert!(grid.set(0, 1, None).is_err());
    }

    #[test]
    fn device_counts_resources_and_frames() {
        let d = small_device();
        // 3 CLB columns x 3 rows = 9 CLB tiles, 1 BRAM column x 3 rows = 3 BRAM tiles.
        assert_eq!(d.total_resources(), ResourceVec::new(9, 3, 0));
        assert_eq!(d.total_frames(), 9 * 36 + 3 * 30);
        assert_eq!(d.usable_tiles(), 12);
    }

    #[test]
    fn forbidden_area_excluded_from_totals() {
        let mut d = small_device();
        d.forbidden.push(ForbiddenArea::new("blk", Rect::new(1, 1, 2, 1)));
        d.validate().unwrap();
        assert_eq!(d.total_resources(), ResourceVec::new(7, 3, 0));
        assert_eq!(d.usable_tiles(), 10);
        assert!(d.is_forbidden(1, 1));
        assert!(!d.is_forbidden(1, 2));
        assert!(d.rect_crosses_forbidden(&Rect::new(2, 1, 1, 3)));
        assert!(!d.rect_crosses_forbidden(&Rect::new(3, 1, 2, 3)));
    }

    #[test]
    fn unassigned_cell_outside_forbidden_is_rejected() {
        let mut reg = TileTypeRegistry::new();
        let clb = reg.register(TileType::new("CLB", ResourceVec::new(1, 0, 0), 36)).unwrap();
        let mut grid = TileGrid::new(2, 2).unwrap();
        grid.fill_column(1, clb).unwrap();
        // Column 2 left empty and not declared forbidden.
        let err = Device::new("bad", reg.clone(), grid.clone(), vec![]).unwrap_err();
        assert!(matches!(err, DeviceError::UnassignedTile { col: 2, .. }));
        // Declaring the hole as a forbidden area makes the device valid.
        let ok =
            Device::new("good", reg, grid, vec![ForbiddenArea::new("hole", Rect::new(2, 1, 1, 2))]);
        assert!(ok.is_ok());
    }

    #[test]
    fn forbidden_out_of_bounds_is_rejected() {
        let d = small_device();
        let err = Device::new(
            "bad",
            d.registry.clone(),
            d.grid.clone(),
            vec![ForbiddenArea::new("oob", Rect::new(4, 3, 2, 2))],
        )
        .unwrap_err();
        assert!(matches!(err, DeviceError::ForbiddenOutOfBounds { .. }));
    }

    #[test]
    fn unknown_tile_type_is_rejected() {
        let d = small_device();
        let mut grid = d.grid.clone();
        grid.set(1, 1, Some(TileTypeId(42))).unwrap();
        let err = Device::new("bad", d.registry.clone(), grid, vec![]).unwrap_err();
        assert!(matches!(err, DeviceError::UnknownTileType(42)));
    }

    #[test]
    fn grid_iter_covers_every_cell_once() {
        let d = small_device();
        assert_eq!(d.grid.iter().count(), 12);
    }
}
