//! The software relocation filter.
//!
//! In the spirit of REPLICA [2][3] and BiRF [4][5]: relocation only rewrites
//! the frame addresses of the partial bitstream (by the column/row offset
//! between the source and the target area) and recomputes the CRC. The filter
//! refuses to relocate into a target area that is not **compatible** with the
//! source area (Definition .1): same shape, size and relative positioning of
//! tiles of the same type. Whether the target is *free* (Definition .2) is a
//! run-time property checked by the configuration-memory model, not by the
//! filter.

use crate::format::{Bitstream, Frame};
use rfp_device::compat::{fabric_compatible, CompatReport};
use rfp_device::{FabricPartition, Rect};
use std::fmt;

/// Errors reported by the relocation filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocationError {
    /// The target area is not compatible with the bitstream's source area.
    NotCompatible {
        /// The detailed compatibility report.
        report: CompatReport,
    },
    /// The bitstream failed its CRC check before relocation.
    CorruptSource {
        /// CRC stored in the container.
        stored: u32,
        /// CRC recomputed over the content.
        computed: u32,
    },
}

impl fmt::Display for RelocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocationError::NotCompatible { report } => {
                write!(f, "target area is not compatible with the source area: {report}")
            }
            RelocationError::CorruptSource { stored, computed } => write!(
                f,
                "source bitstream is corrupt (stored CRC {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for RelocationError {}

/// Relocates a partial bitstream to a compatible target area.
///
/// Returns a new bitstream whose frame addresses point at `target` and whose
/// CRC has been recomputed; the configuration payload is untouched, which is
/// exactly what makes relocation cheap compared to re-implementing the module
/// for the new location.
///
/// The compatibility gate is [`fabric_compatible`], so a move is a relocation
/// only when the areas match tile-for-tile *and* neither spans a die
/// boundary — cross-die moves are refused with
/// [`CompatReport::CrossesDieBoundary`] and must regenerate.
pub fn relocate(
    partition: &FabricPartition,
    bitstream: &Bitstream,
    target: Rect,
) -> Result<Bitstream, RelocationError> {
    if let Err(crate::format::BitstreamError::CrcMismatch { stored, computed }) = bitstream.verify()
    {
        return Err(RelocationError::CorruptSource { stored, computed });
    }
    let report = fabric_compatible(partition, &bitstream.area, &target);
    if !report.is_compatible() {
        return Err(RelocationError::NotCompatible { report });
    }
    let dx = target.x as i64 - bitstream.area.x as i64;
    let dy = target.y as i64 - bitstream.area.y as i64;
    let frames: Vec<Frame> = bitstream
        .frames
        .iter()
        .map(|f| {
            let mut address = f.address;
            address.column = (address.column as i64 + dx) as u32;
            address.row = (address.row as i64 + dy) as u32;
            Frame { address, words: f.words.clone() }
        })
        .collect();
    let mut out = Bitstream {
        device: bitstream.device.clone(),
        module: bitstream.module.clone(),
        area: target,
        frames,
        crc: 0,
    };
    out.crc = out.compute_crc();
    Ok(out)
}

/// How a module was moved to its new area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// The partial bitstream was relocated by rewriting frame addresses —
    /// the cheap path (a pure copy through the relocation filter).
    Relocated,
    /// The target was not compatible; the bitstream had to be regenerated —
    /// the stand-in for a re-implementation of the module for the new
    /// location, which is orders of magnitude more expensive in practice.
    Resynthesized,
}

impl fmt::Display for MoveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveKind::Relocated => f.write_str("relocated"),
            MoveKind::Resynthesized => f.write_str("resynthesized"),
        }
    }
}

/// Moves a bitstream to `target`, relocating when the target is compatible
/// and regenerating (re-synthesis-equivalent) when it is not.
///
/// `seed` deterministically parameterises the regenerated payload on the
/// expensive path. Corrupt sources and illegal target areas remain errors —
/// the move either succeeds by one of the two mechanisms or not at all.
pub fn relocate_or_regenerate(
    partition: &FabricPartition,
    bitstream: &Bitstream,
    target: Rect,
    seed: u64,
) -> Result<(Bitstream, MoveKind), RelocationError> {
    match relocate(partition, bitstream, target) {
        Ok(moved) => Ok((moved, MoveKind::Relocated)),
        Err(RelocationError::NotCompatible { report }) => {
            match Bitstream::generate(partition, bitstream.module.clone(), target, seed) {
                Ok(bs) => Ok((bs, MoveKind::Resynthesized)),
                // An illegal target cannot be configured by either mechanism.
                Err(_) => Err(RelocationError::NotCompatible { report }),
            }
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::compat::enumerate_free_compatible;
    use rfp_device::{
        fabric_partition, fabric_partition_with_boundaries, figure1_device, xc5vfx70t,
    };

    #[test]
    fn relocation_to_a_compatible_area_preserves_payload_and_fixes_addresses() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(3, 4, 2, 2);
        let bs = Bitstream::generate(&p, "demo", source, 11).unwrap();
        let moved = relocate(&p, &bs, target).unwrap();
        assert_eq!(moved.area, target);
        assert!(moved.verify().is_ok());
        assert_ne!(moved.crc, bs.crc, "addresses changed, so the CRC must change");
        // Payload is untouched, addresses are shifted by (+2, +3).
        for (a, b) in bs.frames.iter().zip(moved.frames.iter()) {
            assert_eq!(a.words, b.words);
            assert_eq!(b.address.column, a.address.column + 2);
            assert_eq!(b.address.row, a.address.row + 3);
            assert_eq!(b.address.minor, a.address.minor);
        }
    }

    #[test]
    fn relocation_to_an_incompatible_area_is_refused() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let bs = Bitstream::generate(&p, "demo", source, 11).unwrap();
        // Area C of Figure 1: same shape but shifted by one column, so the
        // column types do not line up.
        let err = relocate(&p, &bs, Rect::new(2, 1, 2, 2));
        assert!(matches!(err, Err(RelocationError::NotCompatible { .. })));
        // A different shape is refused too.
        let err2 = relocate(&p, &bs, Rect::new(3, 4, 3, 2));
        assert!(matches!(err2, Err(RelocationError::NotCompatible { .. })));
    }

    #[test]
    fn cross_die_relocation_is_refused_and_regenerates() {
        // Same striped device, but with a die boundary between rows 3 and 4:
        // the A -> B move of Figure 1 now crosses dies and must downgrade
        // from a relocation to a re-synthesis-equivalent regeneration.
        let p = fabric_partition_with_boundaries(&figure1_device(), &[3]).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(1, 3, 2, 2); // spans rows 3-4 across the boundary
        let bs = Bitstream::generate(&p, "demo", source, 11).unwrap();
        let err = relocate(&p, &bs, target).unwrap_err();
        assert!(
            matches!(
                &err,
                RelocationError::NotCompatible { report: CompatReport::CrossesDieBoundary }
            ),
            "{err}"
        );
        let (rebuilt, kind) = relocate_or_regenerate(&p, &bs, target, 3).unwrap();
        assert_eq!(kind, MoveKind::Resynthesized);
        assert_eq!(rebuilt.area, target);
        assert!(rebuilt.verify().is_ok());
    }

    #[test]
    fn corrupt_bitstreams_are_refused() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let mut bs = Bitstream::generate(&p, "demo", Rect::new(1, 1, 2, 2), 11).unwrap();
        bs.frames[0].words[3] ^= 0xFF;
        let err = relocate(&p, &bs, Rect::new(3, 4, 2, 2));
        assert!(matches!(err, Err(RelocationError::CorruptSource { .. })));
    }

    #[test]
    fn every_free_compatible_area_reported_by_the_device_model_accepts_relocation() {
        let p = fabric_partition(&xc5vfx70t()).unwrap();
        let source = Rect::new(1, 1, 3, 2);
        let bs = Bitstream::generate(&p, "demo", source, 5).unwrap();
        let targets = enumerate_free_compatible(&p, &source, &[source]);
        assert!(!targets.is_empty());
        for t in targets.iter().take(20) {
            let moved = relocate(&p, &bs, *t).expect("free-compatible targets must be accepted");
            assert!(moved.verify().is_ok());
        }
    }

    #[test]
    fn relocate_or_regenerate_picks_the_cheap_path_when_compatible() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let bs = Bitstream::generate(&p, "demo", Rect::new(1, 1, 2, 2), 11).unwrap();
        // Compatible target: pure relocation, payload untouched.
        let (moved, kind) = relocate_or_regenerate(&p, &bs, Rect::new(3, 4, 2, 2), 99).unwrap();
        assert_eq!(kind, MoveKind::Relocated);
        assert_eq!(moved.frames[0].words, bs.frames[0].words);
        // Incompatible target: regenerated at the new area.
        let (rebuilt, kind) = relocate_or_regenerate(&p, &bs, Rect::new(2, 1, 2, 2), 99).unwrap();
        assert_eq!(kind, MoveKind::Resynthesized);
        assert_eq!(rebuilt.area, Rect::new(2, 1, 2, 2));
        assert!(rebuilt.verify().is_ok());
        assert_eq!(rebuilt.n_frames(), p.frames_in_rect(&Rect::new(2, 1, 2, 2)) as usize);
        // An out-of-device target fails outright.
        assert!(relocate_or_regenerate(&p, &bs, Rect::new(6, 6, 2, 2), 0).is_err());
        // A corrupt source fails on both paths.
        let mut bad = bs.clone();
        bad.frames[0].words[0] ^= 1;
        assert!(matches!(
            relocate_or_regenerate(&p, &bad, Rect::new(3, 4, 2, 2), 0),
            Err(RelocationError::CorruptSource { .. })
        ));
    }

    #[test]
    fn double_relocation_returns_to_the_original() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(3, 4, 2, 2);
        let bs = Bitstream::generate(&p, "demo", source, 11).unwrap();
        let moved = relocate(&p, &bs, target).unwrap();
        let back = relocate(&p, &moved, source).unwrap();
        assert_eq!(back, bs);
    }
}
