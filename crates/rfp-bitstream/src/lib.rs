//! # rfp-bitstream — synthetic partial bitstreams and the relocation filter
//!
//! Bitstream relocation is "the capability of moving a task from an area of
//! the FPGA to another one simply by moving the configuration data from the
//! initial location to the corresponding target location"; in practice the
//! frame addresses in the partial bitstream are rewritten and the CRC is
//! recomputed before the bitstream is sent to the configuration interface
//! (Section I of the paper, and the REPLICA/BiRF filters of [2]-[5]).
//!
//! The real Xilinx bitstream format is proprietary; this crate provides a
//! faithful *synthetic* substitute that exercises exactly the code path the
//! floorplanner enables:
//!
//! * [`format`] — a partial-bitstream container with per-frame addresses
//!   (column / row / minor index), a payload of configuration words per frame
//!   and a CRC-32 trailer;
//! * [`crc`] — a from-scratch CRC-32 (IEEE polynomial) implementation;
//! * [`relocate`] — the software relocation filter: it refuses to relocate
//!   into an area that is not *compatible* (Definition .1) with the source,
//!   rewrites the frame addresses by the column/row offset and recomputes the
//!   CRC;
//! * [`memory`] — a simulated configuration memory that accepts partial
//!   bitstreams, verifies their CRC and detects conflicting writes, used by
//!   the end-to-end examples.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod crc;
pub mod format;
pub mod memory;
pub mod relocate;

pub use crc::crc32;
pub use format::{Bitstream, BitstreamError, FrameAddress, FRAME_WORDS};
pub use memory::ConfigMemory;
pub use relocate::{relocate, relocate_or_regenerate, MoveKind, RelocationError};
