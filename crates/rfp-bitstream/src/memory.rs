//! Simulated configuration memory.
//!
//! A minimal model of the device's configuration plane: partial bitstreams
//! are "programmed" frame by frame, the CRC is verified on entry, and the
//! memory tracks which module owns each tile so that overlapping
//! configurations — the malfunction scenario the free-compatible-area
//! definition (Definition .2) exists to prevent — are detected.

use crate::format::{Bitstream, BitstreamError};
use rfp_device::Rect;
use std::collections::HashMap;
use std::fmt;

/// Errors reported by the configuration memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The bitstream failed its CRC check.
    Bitstream(BitstreamError),
    /// The target area overlaps an area owned by another module.
    Conflict {
        /// Module already configured at the conflicting location.
        existing: String,
        /// Module that attempted the overlapping configuration.
        incoming: String,
        /// One conflicting tile.
        column: u32,
        /// Row of the conflicting tile.
        row: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Bitstream(e) => write!(f, "bitstream rejected: {e}"),
            ConfigError::Conflict { existing, incoming, column, row } => write!(
                f,
                "configuration conflict at ({column}, {row}): `{incoming}` overlaps `{existing}`"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The simulated configuration memory of one device.
#[derive(Debug, Clone, Default)]
pub struct ConfigMemory {
    /// Owner module per tile.
    owners: HashMap<(u32, u32), String>,
    /// Areas currently configured, by module instance name.
    areas: HashMap<String, Rect>,
    /// Total frames written since creation (reconfiguration traffic).
    frames_written: u64,
}

impl ConfigMemory {
    /// Creates an empty configuration memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs a partial bitstream under an instance name.
    ///
    /// Verifies the CRC, checks that the target area does not overlap any
    /// area owned by a *different* instance (reprogramming the same instance
    /// elsewhere releases its previous area), and records ownership.
    pub fn program(&mut self, instance: &str, bitstream: &Bitstream) -> Result<(), ConfigError> {
        bitstream.verify().map_err(ConfigError::Bitstream)?;
        for (c, r) in bitstream.area.cells() {
            if let Some(owner) = self.owners.get(&(c, r)) {
                if owner != instance {
                    return Err(ConfigError::Conflict {
                        existing: owner.clone(),
                        incoming: instance.to_string(),
                        column: c,
                        row: r,
                    });
                }
            }
        }
        // Release the instance's previous area (module moved by relocation).
        if let Some(old) = self.areas.remove(instance) {
            for (c, r) in old.cells() {
                self.owners.remove(&(c, r));
            }
        }
        for (c, r) in bitstream.area.cells() {
            self.owners.insert((c, r), instance.to_string());
        }
        self.areas.insert(instance.to_string(), bitstream.area);
        self.frames_written += bitstream.n_frames() as u64;
        Ok(())
    }

    /// Transfers ownership of a configured area from one instance name to
    /// another **without writing any frame** — the atomic switch step of a
    /// double-buffered (no-break) move: the shadow copy is programmed under a
    /// scratch name while the original keeps running, then this rename makes
    /// the copy the live instance.
    ///
    /// Fails (returns `false`, memory untouched) when `from` is not
    /// configured or when `to` is already configured as a different
    /// instance. Renaming an instance to itself is a no-op success.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        if from == to {
            return self.areas.contains_key(from);
        }
        if !self.areas.contains_key(from) || self.areas.contains_key(to) {
            return false;
        }
        let area = self.areas.remove(from).expect("checked above");
        for (c, r) in area.cells() {
            self.owners.insert((c, r), to.to_string());
        }
        self.areas.insert(to.to_string(), area);
        true
    }

    /// Removes an instance from the configuration plane.
    pub fn remove(&mut self, instance: &str) -> bool {
        match self.areas.remove(instance) {
            Some(area) => {
                for (c, r) in area.cells() {
                    self.owners.remove(&(c, r));
                }
                true
            }
            None => false,
        }
    }

    /// Area currently occupied by an instance.
    pub fn area_of(&self, instance: &str) -> Option<Rect> {
        self.areas.get(instance).copied()
    }

    /// Areas currently configured (useful as the `occupied` input of the
    /// free-compatible enumeration).
    pub fn occupied(&self) -> Vec<Rect> {
        let mut v: Vec<Rect> = self.areas.values().copied().collect();
        v.sort_by_key(|r| (r.x, r.y, r.w, r.h));
        v
    }

    /// Total frames written since creation.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relocate::relocate;
    use rfp_device::{fabric_partition, figure1_device};

    #[test]
    fn programming_and_conflicts() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let a = Bitstream::generate(&p, "filter", Rect::new(1, 1, 2, 2), 1).unwrap();
        let b = Bitstream::generate(&p, "decoder", Rect::new(2, 2, 2, 2), 2).unwrap();
        let c = Bitstream::generate(&p, "decoder", Rect::new(5, 4, 2, 2), 2).unwrap();
        let mut mem = ConfigMemory::new();
        mem.program("filter", &a).unwrap();
        // Overlapping configuration from a different module is refused.
        assert!(matches!(mem.program("decoder", &b), Err(ConfigError::Conflict { .. })));
        // A disjoint area is fine.
        mem.program("decoder", &c).unwrap();
        assert_eq!(mem.occupied().len(), 2);
        assert_eq!(mem.area_of("filter"), Some(Rect::new(1, 1, 2, 2)));
        assert_eq!(mem.frames_written(), a.n_frames() as u64 + c.n_frames() as u64);
    }

    #[test]
    fn relocation_moves_a_module_between_areas() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(3, 4, 2, 2);
        let bs = Bitstream::generate(&p, "filter", source, 1).unwrap();
        let mut mem = ConfigMemory::new();
        mem.program("filter", &bs).unwrap();
        let moved = relocate(&p, &bs, target).unwrap();
        mem.program("filter", &moved).unwrap();
        assert_eq!(mem.area_of("filter"), Some(target));
        // The old area is released: another module can take it.
        let other = Bitstream::generate(&p, "other", source, 9).unwrap();
        mem.program("other", &other).unwrap();
    }

    #[test]
    fn corrupt_bitstreams_are_rejected_by_the_memory() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let mut bs = Bitstream::generate(&p, "filter", Rect::new(1, 1, 2, 2), 1).unwrap();
        bs.frames[0].words[0] ^= 1;
        let mut mem = ConfigMemory::new();
        assert!(matches!(mem.program("filter", &bs), Err(ConfigError::Bitstream(_))));
    }

    #[test]
    fn rename_switches_ownership_without_writing_frames() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let source = Rect::new(1, 1, 2, 2);
        let target = Rect::new(3, 4, 2, 2);
        let bs = Bitstream::generate(&p, "filter", source, 1).unwrap();
        let mut mem = ConfigMemory::new();
        mem.program("filter", &bs).unwrap();
        // Double-buffered move: shadow copy at the target, then switch.
        let shadow = relocate(&p, &bs, target).unwrap();
        mem.program("filter.shadow", &shadow).unwrap();
        let frames_after_copy = mem.frames_written();
        assert!(mem.remove("filter"));
        assert!(mem.rename("filter.shadow", "filter"));
        assert_eq!(mem.frames_written(), frames_after_copy, "the switch writes no frame");
        assert_eq!(mem.area_of("filter"), Some(target));
        assert_eq!(mem.area_of("filter.shadow"), None);
        // The freed source area is owned by nobody again.
        let other = Bitstream::generate(&p, "other", source, 9).unwrap();
        mem.program("other", &other).unwrap();
        // Error paths: unknown source, occupied destination, self-rename.
        assert!(!mem.rename("ghost", "x"));
        assert!(!mem.rename("other", "filter"));
        assert!(mem.rename("other", "other"));
        assert_eq!(mem.area_of("other"), Some(source));
    }

    #[test]
    fn remove_releases_tiles() {
        let p = fabric_partition(&figure1_device()).unwrap();
        let bs = Bitstream::generate(&p, "filter", Rect::new(1, 1, 2, 2), 1).unwrap();
        let mut mem = ConfigMemory::new();
        mem.program("filter", &bs).unwrap();
        assert!(mem.remove("filter"));
        assert!(!mem.remove("filter"));
        assert!(mem.occupied().is_empty());
        // The area is free again.
        let other = Bitstream::generate(&p, "other", Rect::new(1, 1, 2, 2), 2).unwrap();
        mem.program("other", &other).unwrap();
    }
}
