//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! Relocating a bitstream invalidates the CRC embedded by the vendor tools;
//! the relocation filter must recompute it after rewriting the frame
//! addresses ([2]). The synthetic bitstream format uses the ubiquitous
//! reflected CRC-32 with polynomial `0xEDB88320`.

/// Computes the CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed an intermediate state (start from `0xFFFF_FFFF`)
/// and finish by XOR-ing with `0xFFFF_FFFF`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state ^= byte as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let (head, tail) = data.split_at(10);
        let streamed = crc32_update(crc32_update(0xFFFF_FFFF, head), tail) ^ 0xFFFF_FFFF;
        assert_eq!(streamed, crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        data[17] ^= 0x20;
        assert_ne!(crc32(&data), base);
    }
}
