//! The synthetic partial-bitstream format.
//!
//! A partial bitstream configures a rectangular area of the device. For every
//! tile of the area (one column of one row), the configuration data consists
//! of `frames_per_tile(tile type)` frames of [`FRAME_WORDS`] 32-bit words.
//! Each frame carries an explicit [`FrameAddress`] — device column, tile row
//! and minor frame index — which is what the relocation filter rewrites. The
//! container ends with a CRC-32 over the addresses and payloads.

use crate::crc::crc32_update;
use bytes::{BufMut, Bytes, BytesMut};
use rfp_device::{FabricPartition, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of 32-bit words per configuration frame (a Virtex-5 frame holds 41
/// words; the synthetic format keeps that flavour).
pub const FRAME_WORDS: usize = 41;

/// Address of one configuration frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameAddress {
    /// Device column of the tile (1-based).
    pub column: u32,
    /// Tile row (1-based).
    pub row: u32,
    /// Minor frame index within the tile (0-based).
    pub minor: u32,
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}r{}m{}", self.column, self.row, self.minor)
    }
}

/// One configuration frame: its address and payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame address.
    pub address: FrameAddress,
    /// Payload words.
    pub words: Vec<u32>,
}

/// Errors reported by the bitstream container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// The area lies outside the device or crosses a forbidden area.
    IllegalArea(Rect),
    /// The stored CRC does not match the recomputed one.
    CrcMismatch {
        /// CRC stored in the container.
        stored: u32,
        /// CRC recomputed over the content.
        computed: u32,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::IllegalArea(r) => {
                write!(f, "area {r} is outside the device or crosses a forbidden area")
            }
            BitstreamError::CrcMismatch { stored, computed } => {
                write!(f, "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

/// A partial bitstream for a rectangular area of a columnar device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Name of the device the bitstream was generated for.
    pub device: String,
    /// Name of the module the bitstream implements.
    pub module: String,
    /// The area configured by the bitstream.
    pub area: Rect,
    /// Configuration frames in address order.
    pub frames: Vec<Frame>,
    /// CRC-32 over addresses and payloads.
    pub crc: u32,
}

impl Bitstream {
    /// Generates a partial bitstream for `area` with a deterministic
    /// pseudo-random payload derived from `seed` (stands in for the synthesis
    /// result of the module).
    pub fn generate(
        partition: &FabricPartition,
        module: impl Into<String>,
        area: Rect,
        seed: u64,
    ) -> Result<Bitstream, BitstreamError> {
        if !partition.placement_legal(&area) {
            return Err(BitstreamError::IllegalArea(area));
        }
        let mut frames = Vec::new();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next_word = || {
            // xorshift64* — deterministic filler payload.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
        };
        for col in area.columns() {
            for row in area.rows() {
                let ty = partition.tile_type_at(col, row).expect("legal area");
                let minors = partition.frames_per_tile(ty);
                for minor in 0..minors {
                    let words = (0..FRAME_WORDS).map(|_| next_word()).collect();
                    frames.push(Frame { address: FrameAddress { column: col, row, minor }, words });
                }
            }
        }
        let mut bs = Bitstream {
            device: partition.device_name.clone(),
            module: module.into(),
            area,
            frames,
            crc: 0,
        };
        bs.crc = bs.compute_crc();
        Ok(bs)
    }

    /// Number of configuration frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Size of the configuration payload in bytes (addresses excluded), the
    /// quantity the paper's "wasted frames" metric is a proxy for.
    pub fn payload_bytes(&self) -> usize {
        self.frames.len() * FRAME_WORDS * 4
    }

    /// Recomputes the CRC-32 over addresses and payloads.
    pub fn compute_crc(&self) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        let mut buf = [0u8; 12];
        for frame in &self.frames {
            buf[..4].copy_from_slice(&frame.address.column.to_le_bytes());
            buf[4..8].copy_from_slice(&frame.address.row.to_le_bytes());
            buf[8..12].copy_from_slice(&frame.address.minor.to_le_bytes());
            state = crc32_update(state, &buf);
            for word in &frame.words {
                state = crc32_update(state, &word.to_le_bytes());
            }
        }
        state ^ 0xFFFF_FFFF
    }

    /// Verifies the stored CRC.
    pub fn verify(&self) -> Result<(), BitstreamError> {
        let computed = self.compute_crc();
        if computed == self.crc {
            Ok(())
        } else {
            Err(BitstreamError::CrcMismatch { stored: self.crc, computed })
        }
    }

    /// Serialises the bitstream to a flat byte buffer (header, frames, CRC).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(32 + self.frames.len() * (12 + FRAME_WORDS * 4));
        out.put_u32_le(self.area.x);
        out.put_u32_le(self.area.y);
        out.put_u32_le(self.area.w);
        out.put_u32_le(self.area.h);
        out.put_u32_le(self.frames.len() as u32);
        for frame in &self.frames {
            out.put_u32_le(frame.address.column);
            out.put_u32_le(frame.address.row);
            out.put_u32_le(frame.address.minor);
            for word in &frame.words {
                out.put_u32_le(*word);
            }
        }
        out.put_u32_le(self.crc);
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::{fabric_partition, xc5vfx70t};

    fn partition() -> FabricPartition {
        fabric_partition(&xc5vfx70t()).unwrap()
    }

    #[test]
    fn frame_count_matches_the_frame_accounting_of_the_device_model() {
        let p = partition();
        // Columns 1-3 are CLB CLB CLB (36 frames per tile); 2 rows.
        let area = Rect::new(1, 1, 3, 2);
        let bs = Bitstream::generate(&p, "m", area, 1).unwrap();
        assert_eq!(bs.n_frames() as u64, p.frames_in_rect(&area));
        assert_eq!(bs.payload_bytes(), bs.n_frames() * FRAME_WORDS * 4);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let p = partition();
        let area = Rect::new(1, 1, 2, 1);
        let a = Bitstream::generate(&p, "m", area, 7).unwrap();
        let b = Bitstream::generate(&p, "m", area, 7).unwrap();
        let c = Bitstream::generate(&p, "m", area, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.frames[0].words, c.frames[0].words);
    }

    #[test]
    fn crc_round_trip_and_tamper_detection() {
        let p = partition();
        let mut bs = Bitstream::generate(&p, "m", Rect::new(1, 1, 2, 2), 3).unwrap();
        assert!(bs.verify().is_ok());
        bs.frames[0].words[0] ^= 1;
        assert!(matches!(bs.verify(), Err(BitstreamError::CrcMismatch { .. })));
    }

    #[test]
    fn illegal_areas_are_rejected() {
        let p = partition();
        // Crosses the PPC440 forbidden block.
        let err = Bitstream::generate(&p, "m", Rect::new(19, 4, 2, 2), 0);
        assert!(matches!(err, Err(BitstreamError::IllegalArea(_))));
        let oob = Bitstream::generate(&p, "m", Rect::new(42, 8, 2, 2), 0);
        assert!(matches!(oob, Err(BitstreamError::IllegalArea(_))));
    }

    #[test]
    fn serialisation_contains_every_frame() {
        let p = partition();
        let bs = Bitstream::generate(&p, "m", Rect::new(1, 1, 1, 1), 0).unwrap();
        let bytes = bs.to_bytes();
        assert_eq!(bytes.len(), 20 + bs.n_frames() * (12 + FRAME_WORDS * 4) + 4);
    }

    #[test]
    fn addresses_cover_exactly_the_area() {
        let p = partition();
        let area = Rect::new(2, 3, 2, 2);
        let bs = Bitstream::generate(&p, "m", area, 1).unwrap();
        assert!(bs.frames.iter().all(|f| area.contains(f.address.column, f.address.row)));
        // Every tile of the area appears.
        for (c, r) in area.cells() {
            assert!(bs.frames.iter().any(|f| f.address.column == c && f.address.row == r));
        }
    }
}
