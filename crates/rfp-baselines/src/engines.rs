//! The baseline floorplanners as first-class [`FloorplanEngine`]s.
//!
//! Promotes the [`crate::annealing`] and [`crate::tessellation`] free
//! functions into engines that speak the unified solve contract of
//! `rfp-floorplan::engine`, and provides [`full_registry`] — the builtin
//! exact engines (`milp`, `ho`, `combinatorial`) plus `annealing` and
//! `tessellation` — which is what the `rfp` CLI and the benchmark harness
//! use.
//!
//! Both baselines are heuristics: they never report
//! [`OutcomeStatus::Proven`], and being relocation-unaware they leave every
//! requested free-compatible area missing (a constraint-mode request
//! therefore makes them report [`OutcomeStatus::Infeasible`]).

use crate::annealing::{AnnealingConfig, AnnealingFloorplanner};
use crate::tessellation::{tessellation_floorplan, TessellationConfig};
use rfp_floorplan::engine::{
    EngineRegistry, EngineStats, FloorplanEngine, OutcomeStatus, SolveControl, SolveOutcome,
    SolveRequest,
};
use rfp_floorplan::problem::RelocationMode;
use rfp_floorplan::FloorplanProblem;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The simulated-annealing baseline (in the spirit of [9]) as an engine,
/// id `"annealing"`.
#[derive(Debug, Clone, Default)]
pub struct AnnealingEngine {
    /// Annealer parameters; the request's time budget is honoured as a
    /// deadline on top of the iteration budget.
    pub config: AnnealingConfig,
}

impl AnnealingEngine {
    /// An engine with custom annealer parameters.
    pub fn with_config(config: AnnealingConfig) -> Self {
        AnnealingEngine { config }
    }
}

/// `true` when the problem carries a constraint-mode relocation request,
/// which the relocation-unaware baselines can never satisfy.
fn has_relocation_constraint(problem: &FloorplanProblem) -> bool {
    problem.relocation.iter().any(|r| matches!(r.mode, RelocationMode::Constraint))
}

impl FloorplanEngine for AnnealingEngine {
    fn id(&self) -> &'static str {
        "annealing"
    }

    fn description(&self) -> &'static str {
        "simulated-annealing baseline ([9]-style): wire-length-driven, relocation-unaware"
    }

    fn solve(&self, req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
        let problem = req.effective_problem();
        let start = Instant::now();
        let deadline = (req.time_limit_secs > 0.0)
            .then(|| start + Duration::from_secs_f64(req.time_limit_secs));
        let mut stats = EngineStats::new(self.id());
        if has_relocation_constraint(&problem) {
            return SolveOutcome::without_floorplan(
                OutcomeStatus::Infeasible,
                "the annealing baseline is relocation-unaware and cannot satisfy \
                 constraint-mode relocation requests",
                stats,
            );
        }
        let annealer = AnnealingFloorplanner::new(self.config.clone());
        let run = match annealer.solve_with_control(&problem, deadline, ctl) {
            Ok(run) => run,
            Err(e) => {
                stats.solve_seconds = start.elapsed().as_secs_f64();
                stats.cancelled = ctl.cancel.is_cancelled();
                return SolveOutcome::without_floorplan(
                    OutcomeStatus::Infeasible,
                    e.to_string(),
                    stats,
                );
            }
        };
        stats.nodes = run.moves;
        stats.solve_seconds = start.elapsed().as_secs_f64();
        stats.cancelled = run.cancelled;
        match run.floorplan {
            Some(fp) => {
                let metrics = fp.metrics(&problem);
                SolveOutcome {
                    status: OutcomeStatus::Feasible,
                    floorplan: Some(fp),
                    metrics: Some(metrics),
                    detail: None,
                    stats,
                }
            }
            None => {
                let status = if run.cancelled || run.hit_deadline {
                    OutcomeStatus::BudgetExhausted
                } else {
                    OutcomeStatus::Infeasible
                };
                SolveOutcome::without_floorplan(
                    status,
                    "simulated annealing found no overlap-free placement",
                    stats,
                )
            }
        }
    }
}

/// The columnar-kernel-tessellation baseline (in the spirit of [8]) as an
/// engine, id `"tessellation"`.
#[derive(Debug, Clone, Default)]
pub struct TessellationEngine {
    /// Tessellation parameters.
    pub config: TessellationConfig,
}

impl TessellationEngine {
    /// An engine with custom tessellation parameters.
    pub fn with_config(config: TessellationConfig) -> Self {
        TessellationEngine { config }
    }
}

impl FloorplanEngine for TessellationEngine {
    fn id(&self) -> &'static str {
        "tessellation"
    }

    fn description(&self) -> &'static str {
        "columnar kernel tessellation baseline ([8]-style): reconfiguration-centric greedy"
    }

    fn solve(&self, req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
        let problem = req.effective_problem();
        let start = Instant::now();
        let mut stats = EngineStats::new(self.id());
        stats.cancelled = ctl.cancel.is_cancelled();
        if stats.cancelled {
            return SolveOutcome::without_floorplan(
                OutcomeStatus::BudgetExhausted,
                "cancelled before the tessellation pass started",
                stats,
            );
        }
        if has_relocation_constraint(&problem) {
            return SolveOutcome::without_floorplan(
                OutcomeStatus::Infeasible,
                "the tessellation baseline is relocation-unaware and cannot satisfy \
                 constraint-mode relocation requests",
                stats,
            );
        }
        match tessellation_floorplan(&problem, &self.config) {
            Ok(mut fp) => {
                // The baseline leaves every requested area missing; record
                // that explicitly so metric-mode costs show up.
                for (request, region, mode) in problem.fc_areas() {
                    fp.fc_areas.push(rfp_floorplan::FcPlacement {
                        request,
                        region,
                        mode,
                        rect: None,
                    });
                }
                stats.solve_seconds = start.elapsed().as_secs_f64();
                let metrics = fp.metrics(&problem);
                stats.cancelled = ctl.cancel.is_cancelled();
                SolveOutcome {
                    status: OutcomeStatus::Feasible,
                    floorplan: Some(fp),
                    metrics: Some(metrics),
                    detail: None,
                    stats,
                }
            }
            Err(e) => {
                stats.solve_seconds = start.elapsed().as_secs_f64();
                stats.cancelled = ctl.cancel.is_cancelled();
                SolveOutcome::without_floorplan(OutcomeStatus::Infeasible, e.to_string(), stats)
            }
        }
    }
}

/// Registers the two baseline engines into an existing registry.
pub fn register_baselines(registry: &mut EngineRegistry) {
    registry.register(Arc::new(AnnealingEngine::default()));
    registry.register(Arc::new(TessellationEngine::default()));
}

/// The full five-engine registry: `milp`, `ho`, `combinatorial`,
/// `annealing` and `tessellation`, all with default configurations.
pub fn full_registry() -> EngineRegistry {
    let mut registry = EngineRegistry::builtin();
    register_baselines(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use rfp_floorplan::problem::{RegionSpec, RelocationRequest};

    fn problem() -> FloorplanProblem {
        let mut b = DeviceBuilder::new("baseline-engines");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(4).columns(&[clb, clb, bram, clb, clb, bram, clb, clb]);
        let mut p = FloorplanProblem::new(columnar_partition(&b.build().unwrap()).unwrap());
        let a = p.add_region(RegionSpec::new("A", vec![(clb, 3), (bram, 1)]));
        let b2 = p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        p.connect(a, b2, 16.0);
        p
    }

    #[test]
    fn full_registry_has_all_five_engines() {
        let r = full_registry();
        assert_eq!(r.ids(), vec!["milp", "ho", "combinatorial", "annealing", "tessellation"]);
    }

    #[test]
    fn baseline_engines_solve_and_never_claim_proof() {
        let p = problem();
        let req = SolveRequest::new(p.clone());
        for id in ["annealing", "tessellation"] {
            let outcome = full_registry().get(id).unwrap().solve(&req, &SolveControl::default());
            assert_eq!(outcome.status, OutcomeStatus::Feasible, "{id}: {:?}", outcome.detail);
            assert!(!outcome.is_proven());
            assert!(outcome.floorplan.unwrap().validate(&p).is_empty());
            assert_eq!(outcome.stats.engine, id);
        }
    }

    #[test]
    fn relocation_constraints_make_the_baselines_infeasible() {
        let mut p = problem();
        p.request_relocation(RelocationRequest::constraint(0, 1));
        let req = SolveRequest::new(p);
        for id in ["annealing", "tessellation"] {
            let outcome = full_registry().get(id).unwrap().solve(&req, &SolveControl::default());
            assert_eq!(outcome.status, OutcomeStatus::Infeasible, "{id}");
        }
    }

    #[test]
    fn metric_mode_relocation_is_reported_missing_not_infeasible() {
        let mut p = problem();
        p.request_relocation(RelocationRequest::metric(0, 2, 1.0));
        let req = SolveRequest::new(p.clone());
        for id in ["annealing", "tessellation"] {
            let outcome = full_registry().get(id).unwrap().solve(&req, &SolveControl::default());
            assert_eq!(outcome.status, OutcomeStatus::Feasible, "{id}");
            let m = outcome.metrics.unwrap();
            assert_eq!(m.fc_requested, 2);
            assert_eq!(m.fc_found, 0);
            assert!(m.relocation_cost > 0.0);
        }
    }

    #[test]
    fn cancelled_annealing_engine_reports_budget_exhausted_or_partial() {
        let p = problem();
        let ctl = SolveControl::default();
        ctl.cancel.cancel();
        let outcome = AnnealingEngine::default().solve(&SolveRequest::new(p), &ctl);
        assert!(outcome.stats.cancelled);
    }
}
