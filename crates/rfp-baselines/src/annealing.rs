//! Simulated-annealing floorplanner (in the spirit of [9]).
//!
//! Bolchini et al. explore the placement space with simulated annealing and
//! mainly optimise the overall wire length. The reproduction anneals over the
//! candidate placements enumerated by `rfp-floorplan`:
//!
//! * the state assigns one candidate rectangle to every region;
//! * a move re-assigns a random region to a random candidate;
//! * the cost is a weighted sum of pairwise overlap area (heavily penalised),
//!   wire length and wasted frames;
//! * a geometric cooling schedule with a fixed iteration budget keeps runs
//!   reproducible (the RNG is seeded).
//!
//! The annealer does not handle relocation requests — like the original
//! baseline it predates the relocation-aware formulation — so requested
//! free-compatible areas are reported as missing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_device::Rect;
use rfp_floorplan::candidates::{enumerate_candidates, Candidate, CandidateConfig};
use rfp_floorplan::engine::SolveControl;
use rfp_floorplan::placement::{FcPlacement, Floorplan};
use rfp_floorplan::problem::FloorplanProblem;
use rfp_floorplan::FloorplanError;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of the simulated-annealing baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Geometric cooling factor applied every `iterations / 100` moves.
    pub cooling: f64,
    /// Weight of the wire-length term.
    pub wirelength_weight: f64,
    /// Weight of the wasted-frames term.
    pub waste_weight: f64,
    /// Penalty per overlapping tile (must dwarf the other terms).
    pub overlap_penalty: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            seed: 1,
            iterations: 20_000,
            initial_temperature: 1000.0,
            cooling: 0.95,
            wirelength_weight: 1.0,
            waste_weight: 0.05,
            overlap_penalty: 10_000.0,
        }
    }
}

/// The simulated-annealing floorplanner.
#[derive(Debug, Clone, Default)]
pub struct AnnealingFloorplanner {
    /// Parameters.
    pub config: AnnealingConfig,
}

struct State<'a> {
    problem: &'a FloorplanProblem,
    candidates: &'a [Vec<Candidate>],
    /// Chosen candidate index per region.
    choice: Vec<usize>,
}

impl<'a> State<'a> {
    fn rects(&self) -> Vec<Rect> {
        self.choice.iter().enumerate().map(|(r, &c)| self.candidates[r][c].rect).collect()
    }

    fn cost(&self, cfg: &AnnealingConfig) -> f64 {
        let rects = self.rects();
        let mut overlap_tiles = 0u64;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if let Some(inter) = rects[i].intersection(&rects[j]) {
                    overlap_tiles += inter.area();
                }
            }
        }
        let mut wirelength = 0.0;
        for c in &self.problem.connections {
            wirelength += c.weight * rects[c.a].center_distance_x2(&rects[c.b]) as f64 / 2.0;
        }
        let waste: u64 =
            self.choice.iter().enumerate().map(|(r, &c)| self.candidates[r][c].waste).sum();
        cfg.overlap_penalty * overlap_tiles as f64
            + cfg.wirelength_weight * wirelength
            + cfg.waste_weight * waste as f64
    }

    fn is_overlap_free(&self) -> bool {
        let rects = self.rects();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].overlaps(&rects[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Details of a controlled annealing run (see
/// [`AnnealingFloorplanner::solve_with_control`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingRun {
    /// Best overlap-free floorplan found, if any.
    pub floorplan: Option<Floorplan>,
    /// Moves actually proposed (may be below the configured iteration budget
    /// when the run was cancelled or hit its deadline).
    pub moves: u64,
    /// `true` when the run stopped on the control's cancellation token.
    pub cancelled: bool,
    /// `true` when the run stopped because the deadline expired (as opposed
    /// to completing its iteration budget or being cancelled).
    pub hit_deadline: bool,
}

impl AnnealingFloorplanner {
    /// Creates an annealer with the given configuration.
    pub fn new(config: AnnealingConfig) -> Self {
        AnnealingFloorplanner { config }
    }

    /// Runs the annealer and returns the best overlap-free floorplan found.
    pub fn solve(&self, problem: &FloorplanProblem) -> Result<Floorplan, FloorplanError> {
        let run = self.solve_with_control(problem, None, &SolveControl::default())?;
        run.floorplan.ok_or_else(|| FloorplanError::Infeasible {
            reason: "simulated annealing found no overlap-free placement".to_string(),
        })
    }

    /// Runs the annealer under a [`SolveControl`] and an optional deadline.
    ///
    /// The move loop polls the control's cancellation token (and the
    /// deadline) every few hundred proposals and stops early, keeping the
    /// best floorplan found so far; improved incumbents are reported through
    /// the control's callback with the annealing cost as the objective.
    pub fn solve_with_control(
        &self,
        problem: &FloorplanProblem,
        deadline: Option<Instant>,
        ctl: &SolveControl,
    ) -> Result<AnnealingRun, FloorplanError> {
        problem.validate()?;
        let cand_cfg = CandidateConfig::default();
        let mut candidates = Vec::with_capacity(problem.regions.len());
        for spec in &problem.regions {
            let cands = enumerate_candidates(&problem.partition, spec, &cand_cfg);
            if cands.is_empty() {
                return Err(FloorplanError::ImpossibleRequirement {
                    region: spec.name.clone(),
                    detail: "no candidate placement satisfies the requirement".to_string(),
                });
            }
            candidates.push(cands);
        }

        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut state = State {
            problem,
            candidates: &candidates,
            choice: (0..problem.regions.len())
                .map(|r| rng.gen_range(0..candidates[r].len()))
                .collect(),
        };
        let start = Instant::now();
        let mut cost = state.cost(cfg);
        let mut best: Option<(f64, Vec<usize>)> =
            state.is_overlap_free().then(|| (cost, state.choice.clone()));
        if best.is_some() {
            ctl.report_incumbent("annealing", cost, 0.0);
        }

        let mut temperature = cfg.initial_temperature;
        let cooling_period = (cfg.iterations / 100).max(1);
        let mut moves = 0u64;
        let mut cancelled = false;
        let mut hit_deadline = false;
        for it in 0..cfg.iterations {
            if it % 256 == 0 {
                if ctl.cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    hit_deadline = true;
                    break;
                }
            }
            moves += 1;
            let region = rng.gen_range(0..state.choice.len());
            let old_choice = state.choice[region];
            let new_choice = rng.gen_range(0..candidates[region].len());
            if new_choice == old_choice {
                continue;
            }
            state.choice[region] = new_choice;
            let new_cost = state.cost(cfg);
            let delta = new_cost - cost;
            let accept = delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0));
            if accept {
                cost = new_cost;
                if state.is_overlap_free() && best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                    best = Some((cost, state.choice.clone()));
                    ctl.report_incumbent("annealing", cost, start.elapsed().as_secs_f64());
                }
            } else {
                state.choice[region] = old_choice;
            }
            if it % cooling_period == 0 {
                temperature = (temperature * cfg.cooling).max(1e-3);
            }
        }

        let Some((_, choice)) = best else {
            return Ok(AnnealingRun { floorplan: None, moves, cancelled, hit_deadline });
        };
        state.choice = choice;
        let mut floorplan = Floorplan::from_regions(state.rects());
        // The baseline is relocation-unaware: every requested area is missing.
        for (request, region, mode) in problem.fc_areas() {
            floorplan.fc_areas.push(FcPlacement { request, region, mode, rect: None });
        }
        let issues = floorplan.validate(problem);
        // Only relocation-constraint violations are expected for this baseline.
        if issues.iter().any(|i| !i.contains("was not identified")) {
            return Err(FloorplanError::Infeasible { reason: issues.join("; ") });
        }
        Ok(AnnealingRun { floorplan: Some(floorplan), moves, cancelled, hit_deadline })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use rfp_floorplan::combinatorial::{solve_combinatorial, CombinatorialConfig};
    use rfp_floorplan::problem::{RegionSpec, RelocationRequest};

    fn problem() -> FloorplanProblem {
        let mut b = DeviceBuilder::new("sa");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(4).columns(&[clb, clb, bram, clb, clb, bram, clb, clb]);
        let part = columnar_partition(&b.build().unwrap()).unwrap();
        let mut p = FloorplanProblem::new(part);
        let a = p.add_region(RegionSpec::new("A", vec![(clb, 3), (bram, 1)]));
        let b2 = p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        let c = p.add_region(RegionSpec::new("C", vec![(clb, 1), (bram, 1)]));
        p.connect_chain(&[a, b2, c], 16.0);
        p
    }

    #[test]
    fn annealing_finds_a_valid_floorplan() {
        let p = problem();
        let fp = AnnealingFloorplanner::default().solve(&p).unwrap();
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
    }

    #[test]
    fn annealing_is_deterministic_for_a_seed() {
        let p = problem();
        let a = AnnealingFloorplanner::default().solve(&p).unwrap();
        let b = AnnealingFloorplanner::default().solve(&p).unwrap();
        assert_eq!(a, b);
        let other_seed =
            AnnealingFloorplanner::new(AnnealingConfig { seed: 7, ..Default::default() })
                .solve(&p)
                .unwrap();
        // Different seeds may or may not give the same floorplan; both must be valid.
        assert!(other_seed.validate(&p).is_empty());
    }

    #[test]
    fn annealing_cannot_beat_the_exact_engine_on_waste_plus_wirelength() {
        let p = problem();
        let sa = AnnealingFloorplanner::default().solve(&p).unwrap();
        let exact = solve_combinatorial(&p, &CombinatorialConfig::default()).unwrap();
        let sa_m = sa.metrics(&p);
        let exact_waste = exact.best_waste.unwrap();
        assert!(sa_m.wasted_frames >= exact_waste);
    }

    #[test]
    fn relocation_requests_are_reported_missing() {
        let mut p = problem();
        p.request_relocation(RelocationRequest::metric(0, 2, 1.0));
        let fp = AnnealingFloorplanner::default().solve(&p).unwrap();
        assert_eq!(fp.fc_found(), 0);
        assert_eq!(fp.fc_areas.len(), 2);
        assert!(fp.metrics(&p).relocation_cost > 0.0);
    }

    #[test]
    fn cancelled_annealing_stops_before_proposing_moves() {
        let p = problem();
        let ctl = SolveControl::default();
        ctl.cancel.cancel();
        let run = AnnealingFloorplanner::default().solve_with_control(&p, None, &ctl).unwrap();
        assert!(run.cancelled);
        assert_eq!(run.moves, 0);
    }

    #[test]
    fn expired_deadline_stops_early_but_is_not_a_cancellation() {
        let p = problem();
        let run = AnnealingFloorplanner::default()
            .solve_with_control(&p, Some(Instant::now()), &SolveControl::default())
            .unwrap();
        assert!(!run.cancelled);
        assert!(run.hit_deadline);
        assert_eq!(run.moves, 0);
    }

    #[test]
    fn completed_runs_record_neither_deadline_nor_cancellation() {
        let p = problem();
        let run = AnnealingFloorplanner::default()
            .solve_with_control(&p, None, &SolveControl::default())
            .unwrap();
        assert!(!run.cancelled);
        assert!(!run.hit_deadline);
        assert!(run.moves > 0);
    }

    #[test]
    fn infeasible_requirements_error_out() {
        let mut p = problem();
        p.add_region(RegionSpec::new("huge", vec![(p.regions[0].tile_req()[0].0, 500)]));
        assert!(AnnealingFloorplanner::default().solve(&p).is_err());
    }
}
