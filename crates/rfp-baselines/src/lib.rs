//! # rfp-baselines — baseline floorplanners
//!
//! The paper's Table II compares the relocation-aware floorplanner (PA)
//! against two prior floorplanners:
//!
//! * **[8] Vipin & Fahmy** — an architecture-aware, reconfiguration-centric
//!   heuristic whose Columnar Kernel Tessellation mainly minimises the amount
//!   of wasted resources (and therefore bitstream size). It is reproduced
//!   here by [`tessellation`]: regions are grown column-portion by
//!   column-portion (never splitting a portion horizontally), which is
//!   reconfiguration-friendly but wastes the resources of partially-used
//!   portions.
//! * **[9] Bolchini et al.** — a simulated-annealing floorplanner that mainly
//!   optimises wire length; reproduced by [`annealing`].
//!
//! The `[10]` baseline (MILP without relocation) needs no dedicated code: the
//! paper notes that PA is equivalent to [10] when no relocation requirement
//! is given, so the Table II row for [10] is produced by running the PA
//! engine on the plain SDR instance.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod annealing;
pub mod engines;
pub mod tessellation;

pub use annealing::{AnnealingConfig, AnnealingFloorplanner, AnnealingRun};
pub use engines::{full_registry, register_baselines, AnnealingEngine, TessellationEngine};
pub use tessellation::{tessellation_floorplan, TessellationConfig};
