//! Reconfiguration-centric tessellation heuristic (in the spirit of [8]).
//!
//! Vipin & Fahmy's architecture-aware floorplanner tessellates the device
//! into reconfiguration-friendly kernels aligned with the resource columns:
//! a region never splits a resource column horizontally, so its partial
//! bitstream addresses whole configuration columns of each covered clock
//! region. The price is waste: every tile of a covered portion-row is paid
//! for even when only part of it is needed.
//!
//! The reproduction places regions greedily, most demanding first. For every
//! region it scans candidate anchors (left-to-right, top-to-bottom) and grows
//! a portion-aligned rectangle — whole portions in width, minimal rows in
//! height — until the requirement is covered, keeping the candidate with the
//! fewest wasted frames that does not overlap previously-placed regions.
//!
//! On an irregular fabric there are no portions to align with; the heuristic
//! degrades gracefully to arbitrary column spans (every column is its own
//! span unit) with per-rectangle tile counting, still preferring the
//! minimal-height, least-wasteful candidate.

use rfp_device::{ColumnarPartition, PortionId, Rect};
use rfp_floorplan::placement::Floorplan;
use rfp_floorplan::problem::FloorplanProblem;
use rfp_floorplan::FloorplanError;
use serde::{Deserialize, Serialize};

/// Parameters of the tessellation heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TessellationConfig {
    /// When `true`, regions additionally extend to the full device height
    /// (one reconfigurable slot per set of columns), which models the most
    /// conservative reconfiguration-centric style.
    pub full_height_slots: bool,
}

/// Tiles of each type covered by a span of whole portions at height `h`.
fn portion_span_covers(
    partition: &ColumnarPartition,
    first: usize,
    last: usize,
    h: u32,
    req: &[(rfp_device::TileTypeId, u32)],
) -> bool {
    req.iter().all(|&(ty, need)| {
        let cols: u32 = (first..=last)
            .map(|p| {
                let portion = partition.portion(PortionId(p));
                if portion.tile_type == ty {
                    portion.width()
                } else {
                    0
                }
            })
            .sum();
        cols * h >= need
    })
}

/// Runs the tessellation heuristic.
pub fn tessellation_floorplan(
    problem: &FloorplanProblem,
    config: &TessellationConfig,
) -> Result<Floorplan, FloorplanError> {
    problem.validate()?;
    let partition = &problem.partition;
    let rows = partition.rows;

    // Most demanding regions first.
    let mut order: Vec<usize> = (0..problem.regions.len()).collect();
    order.sort_by_key(|&i| {
        (u64::MAX - problem.regions[i].required_frames(partition), problem.regions[i].name.clone())
    });

    let mut placed: Vec<Option<Rect>> = vec![None; problem.regions.len()];
    let mut occupied: Vec<Rect> = Vec::new();

    for &i in &order {
        let spec = &problem.regions[i];
        let mut best: Option<(u64, Rect)> = None;
        if let Some(cp) = partition.columnar() {
            let n_portions = cp.n_portions();
            for first in 0..n_portions {
                for last in first..n_portions {
                    // Minimal number of rows covering the requirement with
                    // whole portions `first..=last`.
                    let mut h_needed = None;
                    for h in 1..=rows {
                        if portion_span_covers(cp, first, last, h, spec.tile_req()) {
                            h_needed = Some(h);
                            break;
                        }
                    }
                    let Some(mut h) = h_needed else { continue };
                    if config.full_height_slots {
                        h = rows;
                    }
                    let x1 = cp.portion(PortionId(first)).x1;
                    let x2 = cp.portion(PortionId(last)).x2;
                    let w = x2 - x1 + 1;
                    for y in 1..=(rows - h + 1) {
                        let rect = Rect::new(x1, y, w, h);
                        if !partition.placement_legal(&rect) {
                            continue;
                        }
                        if occupied.iter().any(|o| o.overlaps(&rect)) {
                            continue;
                        }
                        let waste = partition
                            .frames_in_rect(&rect)
                            .saturating_sub(spec.required_frames(partition));
                        if best.as_ref().is_none_or(|(bw, _)| waste < *bw) {
                            best = Some((waste, rect));
                        }
                    }
                }
            }
        } else {
            // Irregular fabric: no portions, so any column span may anchor a
            // slot. Coverage depends on *which* rows the rectangle covers, so
            // the minimal height is found per anchor instead of per span.
            for x1 in 1..=partition.cols {
                for x2 in x1..=partition.cols {
                    let w = x2 - x1 + 1;
                    for y in 1..=rows {
                        let mut chosen = None;
                        for h in 1..=(rows - y + 1) {
                            let rect = Rect::new(x1, y, w, h);
                            let counts = partition.tiles_by_type_in_rect(&rect);
                            let covers = spec.tile_req().iter().all(|&(ty, need)| {
                                counts
                                    .iter()
                                    .find(|&&(t, _)| t == ty)
                                    .is_some_and(|&(_, have)| have >= need)
                            });
                            if covers {
                                chosen = Some(if config.full_height_slots {
                                    Rect::new(x1, 1, w, rows)
                                } else {
                                    rect
                                });
                                break;
                            }
                        }
                        let Some(rect) = chosen else { continue };
                        if !partition.placement_legal(&rect) {
                            continue;
                        }
                        if occupied.iter().any(|o| o.overlaps(&rect)) {
                            continue;
                        }
                        let waste = partition
                            .frames_in_rect(&rect)
                            .saturating_sub(spec.required_frames(partition));
                        if best.as_ref().is_none_or(|(bw, _)| waste < *bw) {
                            best = Some((waste, rect));
                        }
                    }
                }
            }
        }
        match best {
            Some((_, rect)) => {
                placed[i] = Some(rect);
                occupied.push(rect);
            }
            None => {
                return Err(FloorplanError::Infeasible {
                    reason: format!(
                        "tessellation heuristic could not place region `{}`",
                        spec.name
                    ),
                })
            }
        }
    }

    let floorplan =
        Floorplan::from_regions(placed.into_iter().map(|r| r.expect("all placed")).collect());
    let issues = floorplan.validate(problem);
    if issues.is_empty() {
        Ok(floorplan)
    } else {
        Err(FloorplanError::Infeasible { reason: issues.join("; ") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use rfp_floorplan::combinatorial::{solve_combinatorial, CombinatorialConfig};
    use rfp_floorplan::problem::RegionSpec;

    fn small_problem() -> (FloorplanProblem, rfp_device::TileTypeId, rfp_device::TileTypeId) {
        let mut b = DeviceBuilder::new("tess");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(4).columns(&[clb, clb, bram, clb, clb, bram, clb, clb]);
        let p = columnar_partition(&b.build().unwrap()).unwrap();
        (FloorplanProblem::new(p), clb, bram)
    }

    #[test]
    fn tessellation_produces_valid_floorplans() {
        let (mut p, clb, bram) = small_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 3), (bram, 1)]));
        p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        let fp = tessellation_floorplan(&p, &TessellationConfig::default()).unwrap();
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
    }

    #[test]
    fn regions_are_portion_aligned() {
        let (mut p, clb, bram) = small_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
        let fp = tessellation_floorplan(&p, &TessellationConfig::default()).unwrap();
        let rect = fp.regions[0];
        // The left edge must coincide with a portion start and the right edge
        // with a portion end.
        let part = p.partition.columnar().expect("test device is columnar");
        let left = part.portion_of_col(rect.x).unwrap();
        let right = part.portion_of_col(rect.x2()).unwrap();
        assert_eq!(part.portion(left).x1, rect.x);
        assert_eq!(part.portion(right).x2, rect.x2());
    }

    #[test]
    fn tessellation_wastes_at_least_as_much_as_the_exact_engine() {
        let (mut p, clb, bram) = small_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 3), (bram, 1)]));
        p.add_region(RegionSpec::new("B", vec![(clb, 1), (bram, 1)]));
        let tess = tessellation_floorplan(&p, &TessellationConfig::default()).unwrap();
        let exact = solve_combinatorial(&p, &CombinatorialConfig::default()).unwrap();
        assert!(tess.metrics(&p).wasted_frames >= exact.best_waste.unwrap());
    }

    #[test]
    fn full_height_mode_wastes_more() {
        let (mut p, clb, bram) = small_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
        let compact = tessellation_floorplan(&p, &TessellationConfig::default()).unwrap();
        let full =
            tessellation_floorplan(&p, &TessellationConfig { full_height_slots: true }).unwrap();
        assert!(full.metrics(&p).wasted_frames >= compact.metrics(&p).wasted_frames);
        assert_eq!(full.regions[0].h, p.partition.rows);
    }

    #[test]
    fn overfull_instances_are_rejected() {
        let (mut p, _, bram) = small_problem();
        for i in 0..5 {
            p.add_region(RegionSpec::new(format!("B{i}"), vec![(bram, 2)]));
        }
        assert!(tessellation_floorplan(&p, &TessellationConfig::default()).is_err());
    }
}
