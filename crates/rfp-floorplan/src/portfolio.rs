//! Engine portfolio racing.
//!
//! Exact engines dominate on some instance shapes and heuristics on others,
//! and there is no reliable a-priori predictor. A [`Portfolio`] sidesteps
//! the choice: it launches several [`FloorplanEngine`]s on the *same*
//! [`SolveRequest`] on parallel threads and cancels the stragglers through
//! their [`SolveControl`] tokens as soon as one engine returns a **proven**
//! result. If nobody proves within the budget, the best feasible floorplan
//! (lowest composite objective, ties to the engine registered first) wins —
//! the tie-break is **stable engine order**, not thread-finish order, so
//! repeated races on the same request name the same winner.
//!
//! Every engine gets its own [`CancelToken`] child so that a caller-level
//! cancellation still stops the whole race, while a race-level cancellation
//! never leaks into the caller's token.
//!
//! Racing composes with in-engine parallelism: every leg receives the same
//! request, including [`SolveRequest::threads`], so a race of parallel-capable
//! engines runs `legs × threads` workers — budget accordingly.

use crate::engine::{
    CancelToken, FloorplanEngine, IncumbentCallback, OutcomeStatus, SolveControl, SolveOutcome,
    SolveRequest,
};
use std::sync::mpsc;
use std::sync::Arc;

/// Outcome of one engine's leg of a race.
#[derive(Debug, Clone)]
pub struct RaceEntry {
    /// Engine id.
    pub engine: String,
    /// The engine's outcome (losers typically report
    /// [`OutcomeStatus::BudgetExhausted`] or a feasible-but-unproven result
    /// with [`crate::engine::EngineStats::cancelled`] set).
    pub outcome: SolveOutcome,
    /// Order of arrival: 0 finished first.
    pub arrival: usize,
}

/// Outcome of a portfolio race.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Index into [`RaceOutcome::entries`] of the winning engine, when any
    /// engine produced a floorplan.
    pub winner: Option<usize>,
    /// All engines' results, in registration order.
    pub entries: Vec<RaceEntry>,
}

impl RaceOutcome {
    /// The winning entry, if any.
    pub fn winning_entry(&self) -> Option<&RaceEntry> {
        self.winner.map(|i| &self.entries[i])
    }

    /// The winning outcome, if any engine produced a floorplan.
    pub fn best(&self) -> Option<&SolveOutcome> {
        self.winning_entry().map(|e| &e.outcome)
    }
}

/// A set of engines raced against each other on a shared request.
///
/// ```
/// use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
/// use rfp_floorplan::engine::{EngineRegistry, SolveRequest};
/// use rfp_floorplan::portfolio::Portfolio;
/// use rfp_floorplan::problem::{FloorplanProblem, RegionSpec};
///
/// let mut b = DeviceBuilder::new("race");
/// let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
/// b.rows(2).columns(&[clb, clb, clb]);
/// let mut problem = FloorplanProblem::new(columnar_partition(&b.build().unwrap()).unwrap());
/// problem.add_region(RegionSpec::new("A", vec![(clb, 2)]));
///
/// let registry = EngineRegistry::builtin();
/// let portfolio = Portfolio::new(vec![
///     registry.get("combinatorial").unwrap(),
///     registry.get("milp").unwrap(),
/// ]);
/// let race = portfolio.race(&SolveRequest::new(problem));
/// assert!(race.best().unwrap().is_proven());
/// ```
#[derive(Clone, Default)]
pub struct Portfolio {
    engines: Vec<Arc<dyn FloorplanEngine>>,
}

impl Portfolio {
    /// A portfolio over the given engines.
    pub fn new(engines: Vec<Arc<dyn FloorplanEngine>>) -> Self {
        Portfolio { engines }
    }

    /// A portfolio over every engine of a registry, in registration order.
    pub fn from_registry(registry: &crate::engine::EngineRegistry) -> Self {
        Portfolio { engines: registry.iter().cloned().collect() }
    }

    /// Adds an engine to the portfolio.
    pub fn push(&mut self, engine: Arc<dyn FloorplanEngine>) {
        self.engines.push(engine);
    }

    /// Ids of the participating engines.
    pub fn ids(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.id()).collect()
    }

    /// Races the engines on the request with a default (non-cancellable,
    /// silent) control.
    pub fn race(&self, req: &SolveRequest) -> RaceOutcome {
        self.race_controlled(req, &SolveControl::default())
    }

    /// Races the engines on the request.
    ///
    /// Each engine runs on its own thread with its own cancellation token;
    /// the first engine to return a [`OutcomeStatus::Proven`] outcome
    /// cancels all others. The caller's `ctl` is honoured: cancelling its
    /// token aborts the whole race, and its incumbent callback receives the
    /// merged progress stream of every engine (events carry the reporting
    /// engine's id).
    ///
    /// The legs also *cooperate*: every engine shares one
    /// [`crate::engine::SharedIncumbent`] slot (the caller's, when `ctl`
    /// carries one), and
    /// a leg that finishes with a feasible-but-unproven floorplan offers it
    /// there, so still-running MILP legs adopt it as an incumbent and prune
    /// their trees instead of merely waiting to be beaten or cancelled.
    pub fn race_controlled(&self, req: &SolveRequest, ctl: &SolveControl) -> RaceOutcome {
        if self.engines.is_empty() {
            return RaceOutcome { winner: None, entries: Vec::new() };
        }

        let _race = rfp_trace::span("portfolio.race");
        let tokens: Vec<CancelToken> = self.engines.iter().map(|_| CancelToken::new()).collect();
        let on_incumbent: Option<IncumbentCallback> = ctl.on_incumbent.clone();
        let shared = ctl.shared_incumbent.clone().unwrap_or_default();

        // Leg threads record onto their own tracks, named by engine id; the
        // handle must be captured here because thread-locals do not cross
        // `scope.spawn`.
        let trace = rfp_trace::current();
        let (tx, rx) = mpsc::channel::<(usize, SolveOutcome)>();
        let mut slots: Vec<Option<RaceEntry>> = vec![None; self.engines.len()];
        std::thread::scope(|scope| {
            for (i, engine) in self.engines.iter().enumerate() {
                let tx = tx.clone();
                let engine_ctl = SolveControl {
                    cancel: tokens[i].clone(),
                    on_incumbent: on_incumbent.clone(),
                    shared_incumbent: Some(shared.clone()),
                };
                let engine = engine.clone();
                let trace = trace.clone();
                scope.spawn(move || {
                    let _scope = trace.map(|h| h.install(engine.id()));
                    let outcome = {
                        let _leg = rfp_trace::span(&format!("engine.{}", engine.id()));
                        engine.solve(req, &engine_ctl)
                    };
                    if outcome.stats.cancelled {
                        rfp_trace::count("engine.cancelled", 1);
                    }
                    // The receiver may have left already; that is fine.
                    let _ = tx.send((i, outcome));
                });
            }
            drop(tx);

            let mut arrived = 0usize;
            loop {
                match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok((i, outcome)) => {
                        if outcome.status == OutcomeStatus::Proven {
                            // First proven result: stop the stragglers.
                            for (j, t) in tokens.iter().enumerate() {
                                if j != i && !t.is_cancelled() {
                                    rfp_trace::count("portfolio.loser_cancels", 1);
                                    t.cancel();
                                }
                            }
                        } else if let (Some(fp), Some(m)) = (&outcome.floorplan, &outcome.metrics) {
                            // A finished-but-unproven leg feeds its best
                            // floorplan to the engines still running.
                            rfp_trace::count("portfolio.incumbent_offers", 1);
                            shared.offer(m.objective, fp);
                        }
                        slots[i] = Some(RaceEntry {
                            engine: self.engines[i].id().to_string(),
                            outcome,
                            arrival: arrived,
                        });
                        arrived += 1;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
                // Propagate a caller-level cancellation to every leg.
                if ctl.cancel.is_cancelled() {
                    for t in &tokens {
                        t.cancel();
                    }
                }
            }
        });

        let entries: Vec<RaceEntry> =
            slots.into_iter().map(|s| s.expect("every engine reports exactly once")).collect();

        // Winner: first proven by arrival (a genuine race — whoever proves
        // first stopped everybody else); otherwise the best feasible
        // floorplan by composite objective, with ties broken by **stable
        // engine registration order** rather than thread-finish order, so
        // the winner of an unproven race is reproducible run to run.
        let winner = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.outcome.status == OutcomeStatus::Proven)
            .min_by_key(|&(i, e)| (e.arrival, i))
            .map(|(i, _)| i)
            .or_else(|| {
                entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.outcome.floorplan.is_some())
                    .min_by(|&(ia, a), &(ib, b)| {
                        let oa = a.outcome.metrics.as_ref().map_or(f64::INFINITY, |m| m.objective);
                        let ob = b.outcome.metrics.as_ref().map_or(f64::INFINITY, |m| m.objective);
                        oa.partial_cmp(&ob).unwrap_or(std::cmp::Ordering::Equal).then(ia.cmp(&ib))
                    })
                    .map(|(i, _)| i)
            });
        RaceOutcome { winner, entries }
    }
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.ids()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineRegistry, EngineStats};
    use crate::problem::{FloorplanProblem, RegionSpec};
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn tiny_problem() -> FloorplanProblem {
        let mut b = DeviceBuilder::new("portfolio-tiny");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(3).columns(&[clb, clb, bram, clb, clb]);
        let mut p = FloorplanProblem::new(columnar_partition(&b.build().unwrap()).unwrap());
        p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
        p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        p
    }

    /// An engine that spins until cancelled, then reports whether it saw the
    /// cancellation — the probe for loser-cancellation semantics.
    struct Sleeper {
        observed_cancel: Arc<AtomicBool>,
    }

    impl crate::engine::FloorplanEngine for Sleeper {
        fn id(&self) -> &'static str {
            "sleeper"
        }
        fn description(&self) -> &'static str {
            "test engine that only returns once cancelled"
        }
        fn solve(&self, _req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
            while !ctl.cancel.is_cancelled() {
                std::thread::yield_now();
            }
            self.observed_cancel.store(true, Ordering::SeqCst);
            let mut stats = EngineStats::new("sleeper");
            stats.cancelled = true;
            SolveOutcome::without_floorplan(OutcomeStatus::BudgetExhausted, "cancelled", stats)
        }
    }

    #[test]
    fn race_returns_a_proven_winner_and_cancels_losers() {
        let observed = Arc::new(AtomicBool::new(false));
        let registry = EngineRegistry::builtin();
        let portfolio = Portfolio::new(vec![
            Arc::new(Sleeper { observed_cancel: observed.clone() }),
            registry.get("combinatorial").unwrap(),
        ]);
        let race = portfolio.race(&SolveRequest::new(tiny_problem()));
        let winner = race.winning_entry().expect("combinatorial proves the tiny instance");
        assert_eq!(winner.engine, "combinatorial");
        assert!(winner.outcome.is_proven());
        assert!(observed.load(Ordering::SeqCst), "the loser must observe the cancellation");
        let sleeper = race.entries.iter().find(|e| e.engine == "sleeper").unwrap();
        assert!(sleeper.outcome.stats.cancelled);
        assert_eq!(sleeper.outcome.status, OutcomeStatus::BudgetExhausted);
    }

    #[test]
    fn caller_cancellation_aborts_the_whole_race() {
        let observed = Arc::new(AtomicBool::new(false));
        let portfolio =
            Portfolio::new(vec![Arc::new(Sleeper { observed_cancel: observed.clone() })]);
        let ctl = SolveControl::default();
        let token = ctl.cancel.clone();
        let problem = tiny_problem();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                // No exact engine participates, so only the caller's token
                // can end this race.
                portfolio.race_controlled(&SolveRequest::new(problem.clone()), &ctl)
            });
            token.cancel();
            let race = handle.join().unwrap();
            assert!(race.winner.is_none());
        });
        assert!(observed.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_portfolio_has_no_winner() {
        let race = Portfolio::default().race(&SolveRequest::new(tiny_problem()));
        assert!(race.winner.is_none());
        assert!(race.entries.is_empty());
    }

    /// A feasible-only stub engine with a fixed objective and an optional
    /// stall, used to probe the unproven-race winner selection.
    struct Fixed {
        id: &'static str,
        waste: u64,
        delay: std::time::Duration,
    }

    impl Fixed {
        fn new(id: &'static str, waste: u64) -> Self {
            Fixed { id, waste, delay: std::time::Duration::ZERO }
        }
    }

    impl crate::engine::FloorplanEngine for Fixed {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "stub"
        }
        fn solve(&self, req: &SolveRequest, _ctl: &SolveControl) -> SolveOutcome {
            std::thread::sleep(self.delay);
            let p = &req.problem;
            let fp = crate::heuristic::greedy_floorplan(p).unwrap();
            let mut metrics = fp.metrics(p);
            metrics.objective = self.waste as f64;
            SolveOutcome {
                status: OutcomeStatus::Feasible,
                floorplan: Some(fp),
                metrics: Some(metrics),
                detail: None,
                stats: EngineStats::new(self.id),
            }
        }
    }

    #[test]
    fn feasible_fallback_picks_the_lowest_objective() {
        let portfolio = Portfolio::new(vec![
            Arc::new(Fixed::new("worse", 10)),
            Arc::new(Fixed::new("better", 3)),
        ]);
        let race = portfolio.race(&SolveRequest::new(tiny_problem()));
        assert_eq!(race.winning_entry().unwrap().engine, "better");
    }

    /// An engine that blocks until a sibling's result appears in the shared
    /// incumbent slot, then returns that very floorplan — the probe for
    /// cross-engine incumbent sharing.
    struct SharedIncumbentProbe {
        saw_version: Arc<std::sync::atomic::AtomicU64>,
    }

    impl crate::engine::FloorplanEngine for SharedIncumbentProbe {
        fn id(&self) -> &'static str {
            "probe"
        }
        fn description(&self) -> &'static str {
            "test engine that waits for a shared incumbent"
        }
        fn solve(&self, req: &SolveRequest, ctl: &SolveControl) -> SolveOutcome {
            let shared = ctl.shared_incumbent.as_ref().expect("the race installs a shared slot");
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while shared.version() == 0 && !ctl.cancel.is_cancelled() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "no shared incumbent arrived within the deadline"
                );
                std::thread::yield_now();
            }
            let (version, objective, fp) =
                shared.best().expect("a non-zero version implies a stored floorplan");
            self.saw_version.store(version, std::sync::atomic::Ordering::SeqCst);
            let mut metrics = fp.metrics(&req.problem);
            metrics.objective = objective;
            SolveOutcome {
                status: OutcomeStatus::Feasible,
                floorplan: Some(fp),
                metrics: Some(metrics),
                detail: Some("adopted the shared incumbent".into()),
                stats: EngineStats::new("probe"),
            }
        }
    }

    #[test]
    fn losers_feed_their_result_to_still_running_engines() {
        // `fast-loser` finishes immediately with a feasible-but-unproven
        // floorplan; the race must offer it to the shared slot, where the
        // still-running probe engine picks it up. Without the offer the probe
        // would spin to its deadline and panic.
        let saw_version = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let portfolio = Portfolio::new(vec![
            Arc::new(Fixed::new("fast-loser", 7)),
            Arc::new(SharedIncumbentProbe { saw_version: saw_version.clone() }),
        ]);
        let race = portfolio.race(&SolveRequest::new(tiny_problem()));
        assert!(
            saw_version.load(std::sync::atomic::Ordering::SeqCst) > 0,
            "the probe must observe the loser's offer"
        );
        let probe = race.entries.iter().find(|e| e.engine == "probe").unwrap();
        assert_eq!(
            probe.outcome.metrics.as_ref().unwrap().objective,
            7.0,
            "the probe must have received exactly the loser's floorplan"
        );
    }

    #[test]
    fn a_caller_provided_shared_slot_receives_the_offers() {
        let shared = crate::engine::SharedIncumbent::new();
        let ctl = SolveControl { shared_incumbent: Some(shared.clone()), ..Default::default() };
        let portfolio = Portfolio::new(vec![Arc::new(Fixed::new("only", 4))]);
        let race = portfolio.race_controlled(&SolveRequest::new(tiny_problem()), &ctl);
        assert!(race.winner.is_some());
        let (_, objective, _) = shared.best().expect("the caller's slot must be filled");
        assert_eq!(objective, 4.0);
    }

    #[test]
    fn equal_objective_ties_break_by_stable_engine_order_not_finish_order() {
        // Two engines report the *same* objective; the first-registered one
        // is deliberately slowed down so it always finishes last. The winner
        // must still be the first-registered engine, on every run —
        // `rfp solve --portfolio` output would otherwise flap with thread
        // scheduling.
        let problem = tiny_problem();
        for _ in 0..8 {
            let portfolio = Portfolio::new(vec![
                Arc::new(Fixed {
                    id: "first",
                    waste: 5,
                    delay: std::time::Duration::from_millis(30),
                }),
                Arc::new(Fixed::new("second", 5)),
            ]);
            let race = portfolio.race(&SolveRequest::new(problem.clone()));
            let winner = race.winning_entry().expect("both engines are feasible");
            assert_eq!(winner.engine, "first", "tie must break by registration order");
            // The slowed-down engine really did arrive last, so the old
            // finish-order tie-break would have picked `second`.
            assert_eq!(race.entries[0].arrival, 1);
            assert_eq!(race.entries[1].arrival, 0);
        }
    }
}
