//! Stable problem fingerprints for cross-request memoisation.
//!
//! The candidate enumeration in [`crate::candidates`] has always memoised on
//! the *structural* content of a lookup — per-column tile types and frames
//! rather than device names — so identical synthetic devices share entries.
//! This module lifts that canonical encoding into a public
//! [`ProblemFingerprint`] covering a whole [`FloorplanProblem`]: three
//! independent digests of the **device structure**, the **resource demand**
//! and the **objective configuration**, hashed with FNV-1a so the value is
//! stable across processes and Rust releases (unlike `DefaultHasher`, whose
//! keys are randomised per process).
//!
//! The solve service keys its cross-request outcome cache on these
//! fingerprints: an exact match replays the cached outcome, and a
//! *near* match (same device, close demand) warm-starts the engines from the
//! nearest cached floorplan via [`crate::engine::SolveRequest::with_warm_outcome`].

use crate::problem::{FloorplanProblem, RegionSpec, RelocationMode};
use rfp_device::FabricPartition;

/// Per-column `(tile-type index, frames per tile)` — the canonical device
/// encoding shared by the candidate cache and [`ProblemFingerprint`] on
/// columnar fabrics. Two devices with equal column encodings, rows and
/// forbidden rectangles are interchangeable for floorplanning regardless of
/// their names. Returns an empty vector on a fabric with no columnar view
/// (a heterogeneous device is encoded per cell by [`device_cells`] instead).
pub fn device_columns(partition: &FabricPartition) -> Vec<(usize, u32)> {
    let Some(cp) = partition.columnar() else { return Vec::new() };
    (1..=cp.cols)
        .map(|c| {
            let ty = cp.column_type(c).expect("column inside device");
            (ty.index(), cp.frames_per_tile(ty))
        })
        .collect()
}

/// Per-cell `(tile-type index, frames per tile)` in row-major order — the
/// canonical encoding of a heterogeneous fabric. Defined for every fabric
/// (on a columnar device each column repeats `rows` times), but cache keys
/// only fall back to it when no columnar view exists.
pub fn device_cells(partition: &FabricPartition) -> Vec<(usize, u32)> {
    partition
        .cell_types()
        .iter()
        .map(|&ty| (ty.index(), partition.frames_per_tile(ty)))
        .collect()
}

/// Forbidden rectangles as `(x, y, w, h)` tuples, in device order.
pub fn forbidden_rects(partition: &FabricPartition) -> Vec<(u32, u32, u32, u32)> {
    partition.forbidden.iter().map(|f| (f.rect.x, f.rect.y, f.rect.w, f.rect.h)).collect()
}

/// A region's requirement as sorted `(tile-type index, tiles)` pairs — the
/// canonical demand encoding (region *names* are deliberately excluded, so a
/// renamed but otherwise identical region fingerprints the same).
pub fn region_demand(spec: &RegionSpec) -> Vec<(usize, u32)> {
    let mut req: Vec<(usize, u32)> =
        spec.tile_req().iter().map(|&(ty, n)| (ty.index(), n)).collect();
    req.sort_unstable();
    req
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a accumulator. `std`'s `DefaultHasher` is explicitly not
/// guaranteed stable across releases; a cache key that must be comparable
/// across processes (and, later, across machines) needs a pinned algorithm.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        // `to_bits` keeps -0.0 and 0.0 distinct; that is fine for a cache
        // key (a spurious miss, never a wrong hit).
        self.u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A stable fingerprint of a floorplanning problem, split into the three
/// axes a cache wants to reason about independently.
///
/// Equality of the full fingerprint means the problems are interchangeable
/// for solving (up to region names). [`ProblemFingerprint::distance`] orders
/// near-matches on the same device so a cache can pick the closest warm
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemFingerprint {
    /// Digest of the device structure: rows, per-column `(type, frames)`,
    /// forbidden rectangles.
    device: u64,
    /// Digest of the demand: per-region requirements (in region order),
    /// connections and relocation requests.
    demand: u64,
    /// Digest of the objective configuration (weights `q_1..q_4`).
    config: u64,
    /// Number of regions — kept in the clear for the distance metric.
    pub n_regions: usize,
    /// Total frames required by all regions — kept in the clear for the
    /// distance metric.
    pub total_required_frames: u64,
}

impl ProblemFingerprint {
    /// Fingerprints a problem.
    pub fn of(problem: &FloorplanProblem) -> ProblemFingerprint {
        let p = &problem.partition;

        let mut device = Fnv::new();
        device.u64(u64::from(p.rows));
        if p.is_columnar_legacy() {
            // Legacy columnar devices keep the original per-column encoding,
            // so every fingerprint persisted before the fabric refactor is
            // unchanged.
            for (ty, frames) in device_columns(p) {
                device.u64(ty as u64);
                device.u64(u64::from(frames));
            }
        } else {
            // Heterogeneous fabrics (or columnar devices with die
            // boundaries) hash the full effective cell grid plus the
            // boundary rows. The leading column count domain-separates this
            // encoding from the per-column one above.
            device.u64(u64::from(p.cols));
            for (ty, frames) in device_cells(p) {
                device.u64(ty as u64);
                device.u64(u64::from(frames));
            }
            device.u64(p.die_boundaries.len() as u64);
            for &b in &p.die_boundaries {
                device.u64(u64::from(b));
            }
        }
        for (x, y, w, h) in forbidden_rects(p) {
            device.u64(u64::from(x));
            device.u64(u64::from(y));
            device.u64(u64::from(w));
            device.u64(u64::from(h));
        }

        let mut demand = Fnv::new();
        demand.u64(problem.regions.len() as u64);
        for region in &problem.regions {
            let req = region_demand(region);
            demand.u64(req.len() as u64);
            for (ty, n) in req {
                demand.u64(ty as u64);
                demand.u64(u64::from(n));
            }
        }
        demand.u64(problem.connections.len() as u64);
        for c in &problem.connections {
            demand.u64(c.a as u64);
            demand.u64(c.b as u64);
            demand.f64(c.weight);
        }
        demand.u64(problem.relocation.len() as u64);
        for r in &problem.relocation {
            demand.u64(r.region as u64);
            demand.u64(u64::from(r.count));
            match r.mode {
                RelocationMode::Constraint => demand.u64(0),
                RelocationMode::Metric { weight } => {
                    demand.u64(1);
                    demand.f64(weight);
                }
            }
        }

        let mut config = Fnv::new();
        config.f64(problem.weights.wirelength);
        config.f64(problem.weights.perimeter);
        config.f64(problem.weights.resources);
        config.f64(problem.weights.relocation);

        ProblemFingerprint {
            device: device.finish(),
            demand: demand.finish(),
            config: config.finish(),
            n_regions: problem.regions.len(),
            total_required_frames: problem.total_required_frames(),
        }
    }

    /// Whether the two fingerprints describe the same device structure.
    pub fn same_device(&self, other: &ProblemFingerprint) -> bool {
        self.device == other.device
    }

    /// Whether the two fingerprints describe the same resource demand.
    pub fn same_demand(&self, other: &ProblemFingerprint) -> bool {
        self.demand == other.demand
    }

    /// Whether the two fingerprints describe the same objective
    /// configuration.
    pub fn same_config(&self, other: &ProblemFingerprint) -> bool {
        self.config == other.config
    }

    /// A single combined digest, e.g. for logging or sharding.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.device);
        h.u64(self.demand);
        h.u64(self.config);
        h.finish()
    }

    /// How far `other` is from `self` for warm-start purposes. `None` when
    /// the devices differ (a floorplan for another device is useless as a
    /// warm start); `Some(0)` for an exact match; otherwise a heuristic
    /// penalty that grows with the demand gap, so a cache can rank its
    /// entries and warm-start from the nearest one.
    pub fn distance(&self, other: &ProblemFingerprint) -> Option<u64> {
        if !self.same_device(other) {
            return None;
        }
        let mut d = 0u64;
        if !self.same_config(other) {
            d += 1;
        }
        if !self.same_demand(other) {
            d += 16;
            d += 4 * self.n_regions.abs_diff(other.n_regions) as u64;
            d = d.saturating_add(self.total_required_frames.abs_diff(other.total_required_frames));
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ObjectiveWeights, RegionSpec, RelocationRequest};
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};

    fn problem(frames: u32) -> (FloorplanProblem, rfp_device::TileTypeId) {
        let mut b = DeviceBuilder::new("fp-test");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), frames);
        b.rows(4).repeat_column(clb, 6);
        let p = columnar_partition(&b.build().unwrap()).unwrap();
        let mut problem = FloorplanProblem::new(p);
        problem.add_region(RegionSpec::new("a", vec![(clb, 3)]));
        problem.add_region(RegionSpec::new("b", vec![(clb, 2)]));
        problem.connect(0, 1, 8.0);
        (problem, clb)
    }

    #[test]
    fn equal_problems_fingerprint_equal() {
        let (a, _) = problem(36);
        let (b, _) = problem(36);
        assert_eq!(ProblemFingerprint::of(&a), ProblemFingerprint::of(&b));
        assert_eq!(ProblemFingerprint::of(&a).distance(&ProblemFingerprint::of(&b)), Some(0));
    }

    #[test]
    fn region_names_do_not_affect_the_fingerprint() {
        let (a, clb) = problem(36);
        let (mut b, _) = problem(36);
        b.regions[0] = RegionSpec::new("renamed", vec![(clb, 3)]);
        assert_eq!(ProblemFingerprint::of(&a), ProblemFingerprint::of(&b));
    }

    #[test]
    fn each_axis_changes_its_own_digest() {
        let (base, clb) = problem(36);
        let fp = ProblemFingerprint::of(&base);

        // Device change.
        let (dev, _) = problem(30);
        let fp_dev = ProblemFingerprint::of(&dev);
        assert!(!fp.same_device(&fp_dev));
        assert!(fp.same_demand(&fp_dev));
        assert_eq!(fp.distance(&fp_dev), None);

        // Demand change.
        let (mut dem, _) = problem(36);
        dem.request_relocation(RelocationRequest::constraint(0, 1));
        let fp_dem = ProblemFingerprint::of(&dem);
        assert!(fp.same_device(&fp_dem));
        assert!(!fp.same_demand(&fp_dem));
        assert!(fp.distance(&fp_dem).unwrap() > 0);

        // Config change.
        let (mut cfg, _) = problem(36);
        cfg.weights = ObjectiveWeights::area_only();
        let fp_cfg = ProblemFingerprint::of(&cfg);
        assert!(fp.same_device(&fp_cfg) && fp.same_demand(&fp_cfg));
        assert!(!fp.same_config(&fp_cfg));
        assert_eq!(fp.distance(&fp_cfg), Some(1));

        // A bigger demand gap ranks farther than a config tweak.
        let (mut big, _) = problem(36);
        big.add_region(RegionSpec::new("c", vec![(clb, 4)]));
        let fp_big = ProblemFingerprint::of(&big);
        assert!(fp.distance(&fp_big).unwrap() > fp.distance(&fp_cfg).unwrap());
    }

    #[test]
    fn fnv_digest_is_pinned() {
        // The exact FNV-1a value of "rfp" — pins the algorithm so a future
        // refactor cannot silently change every persisted fingerprint.
        let mut h = Fnv::new();
        for b in b"rfp" {
            h.byte(*b);
        }
        assert_eq!(h.finish(), 0x89f3_bc19_60fd_133b_u64);
    }
}
