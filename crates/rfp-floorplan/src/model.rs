//! The MILP floorplanning formulation.
//!
//! This module generates the mixed-integer linear program at the core of the
//! paper: the base floorplanning model of [10] restricted to columnar
//! devices (Section III), extended with
//!
//! * forbidden-area avoidance — Equations (1) and (2);
//! * the portion-offset variables `o_{n,p}` — Equations (4) and (5);
//! * relocation as a constraint — Equations (6), (7), (9) and the tightened
//!   (10);
//! * relocation as a metric — Equations (11), (12) and the cost terms (13)
//!   and (15);
//! * the composite objective — Equation (14).
//!
//! ## Variables
//!
//! For every *entity* (a reconfigurable region of set `N` or a
//! free-compatible pseudo-region of set `FC ⊂ N`):
//!
//! | paper | here | kind | meaning |
//! |-------|------|------|---------|
//! | `x_n` | `x[e]` | integer ≥ 1 | leftmost column |
//! | `w_n` | `w[e]` | integer ≥ 1 | width in columns |
//! | —     | `y[e]` | continuous | topmost row (integrality implied) |
//! | `h_n` | `h[e]` | continuous | height in rows (integrality implied) |
//! | —     | `a[e][r]` | binary | entity covers row `r` |
//! | —     | `cov[e][c]` | binary | entity covers column `c` |
//! | `k_{n,p}` | `k[e][p]` | continuous [0,1] | x-projection intersects portion `p` |
//! | `o_{n,p}` | `o[e][p]` | continuous [0,1] | `p` is the first covered portion |
//! | `l_{n,p,r}` | `l[e][p][r]` | continuous | tiles covered in portion `p` on row `r` |
//! | `q_{n,a}` | `q[e][a]` | binary | entity not left of forbidden area `a` |
//! | `v_c` | `v[c]` | binary | free-compatible area `c` violated (metric mode) |
//!
//! The column-coverage binaries `cov` are an implementation detail not named
//! in the paper: they pin the per-portion intersection widths exactly, which
//! the relocation equalities of Equation (9) require (the paper inherits this
//! machinery from the base model of [10]).
//!
//! Note on Equations (10)/(12): the paper's text states that the constraint
//! must forbid `o_{c,pc} = o_{n,pn} = k_{n,pn+i} = 1` **when the two tile
//! types differ**; the inequality as printed carries an `=` guard, which we
//! read as the evident typo for `≠` and implement accordingly.
//!
//! ## Heterogeneous fabrics
//!
//! The portion machinery above assumes a columnar device. On a fabric with
//! no columnar view — or a columnar device with die boundaries, whose
//! relocation rules the portion equations cannot express —
//! [`FloorplanMilp::build`] instead generates a **candidate-assignment**
//! model: one binary per (region, candidate rectangle) from the irredundant
//! enumeration of [`crate::candidates`], an exactly-one constraint per
//! region, pairwise mutual exclusion between overlapping candidates, and the
//! same composite objective expressed over the (constant) per-candidate
//! waste, half-perimeter and centre coordinates. Requested free-compatible
//! areas are reserved by a greedy pass at extraction time using the
//! fabric-aware compatibility check (which rejects die-crossing targets); a
//! constraint-mode request the greedy pass cannot satisfy surfaces as a
//! validation failure, never as a silently dropped constraint.

use crate::candidates::{enumerate_candidates, Candidate, CandidateConfig};
use crate::placement::{FcPlacement, Floorplan};
use crate::problem::{FloorplanProblem, RelocationMode};
use crate::sequence_pair::{PairRelation, Relation};
use rfp_device::compat::enumerate_free_compatible;
use rfp_device::{ColumnarPartition, FabricPartition, PortionId, Rect};
use rfp_milp::{ConOp, LinExpr, Model, Sense, Solution, VarId};
use serde::{Deserialize, Serialize};

/// Which algorithm variant the model is built for.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MilpBuildConfig {
    /// HO mode: pairwise relations extracted from a heuristic solution; each
    /// fixes the corresponding relative-position binary, shrinking the search
    /// space (Section II-A). `None` builds the full O model.
    pub ho_relations: Option<Vec<PairRelation>>,
}

impl MilpBuildConfig {
    /// Builds the full (O) model.
    pub fn optimal() -> Self {
        MilpBuildConfig { ho_relations: None }
    }

    /// Builds the HO model constrained by the given pairwise relations.
    pub fn heuristic_optimal(relations: Vec<PairRelation>) -> Self {
        MilpBuildConfig { ho_relations: Some(relations) }
    }
}

/// Handles to every variable of the generated model, used for extraction and
/// by the white-box tests.
#[derive(Debug, Clone)]
pub struct ModelVars {
    /// Leftmost column per entity.
    pub x: Vec<VarId>,
    /// Width per entity.
    pub w: Vec<VarId>,
    /// Topmost row per entity.
    pub y: Vec<VarId>,
    /// Height per entity.
    pub h: Vec<VarId>,
    /// Row-coverage binaries `a[e][r-1]`.
    pub a: Vec<Vec<VarId>>,
    /// Column-coverage binaries `cov[e][c-1]`.
    pub cov: Vec<Vec<VarId>>,
    /// Portion-intersection indicators `k[e][p]`.
    pub k: Vec<Vec<VarId>>,
    /// First-portion offsets `o[e][p]`.
    pub o: Vec<Vec<VarId>>,
    /// Per-portion per-row intersection `l[e][p][r-1]`.
    pub l: Vec<Vec<Vec<VarId>>>,
    /// Violation binaries `v` per free-compatible entity (index into the FC
    /// list), only present in metric mode.
    pub v: Vec<Option<VarId>>,
    /// Forbidden-area binaries `q[e][a]`, aligned with `partition.forbidden`.
    pub q: Vec<Vec<VarId>>,
    /// Pairwise relative-position binaries
    /// `(i, j, [left_ij, left_ji, below_ij, below_ji])` for every `i < j`.
    pub pair_rel: Vec<(usize, usize, [VarId; 4])>,
    /// Wire-length auxiliaries `(dx, dy)` per connection (empty when the
    /// wire-length weight is zero).
    pub wl: Vec<(VarId, VarId)>,
}

/// Statistics of a generated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of entities (regions + free-compatible areas).
    pub entities: usize,
    /// Number of variables.
    pub n_vars: usize,
    /// Number of integer/binary variables.
    pub n_int_vars: usize,
    /// Number of constraints.
    pub n_cons: usize,
    /// Number of non-zero coefficients.
    pub n_nonzeros: usize,
}

/// Which formulation [`FloorplanMilp::build`] generated.
#[derive(Debug, Clone)]
enum ModelKind {
    /// Portion-based model (Equations 1-15); legacy columnar devices.
    Portion,
    /// Candidate-assignment model; heterogeneous or die-bounded fabrics.
    Assignment(AssignmentModel),
}

/// Bookkeeping of the candidate-assignment formulation.
#[derive(Debug, Clone)]
struct AssignmentModel {
    /// The fabric, kept for the greedy free-compatible reservation pass.
    partition: FabricPartition,
    /// Candidate rectangles per region.
    candidates: Vec<Vec<Candidate>>,
    /// Assignment binaries, aligned with `candidates`.
    assign: Vec<Vec<VarId>>,
}

/// A generated floorplanning MILP together with the handles needed to read a
/// floorplan back out of a solution.
#[derive(Debug, Clone)]
pub struct FloorplanMilp {
    /// The generated mixed-integer linear program.
    pub milp: Model,
    /// Variable handles. Only populated by the portion model; the
    /// candidate-assignment model keeps its binaries in its own bookkeeping
    /// (all vectors except `wl` stay empty).
    pub vars: ModelVars,
    n_regions: usize,
    /// `(request index, source region, mode)` per FC entity.
    fc_meta: Vec<(usize, usize, RelocationMode)>,
    kind: ModelKind,
}

impl FloorplanMilp {
    /// Generates the MILP for a problem.
    ///
    /// Legacy columnar devices get the portion-based formulation of the
    /// paper; heterogeneous fabrics (and columnar devices with die
    /// boundaries, whose relocation rules the portion equations cannot
    /// express) get the candidate-assignment formulation.
    pub fn build(problem: &FloorplanProblem, config: &MilpBuildConfig) -> FloorplanMilp {
        if problem.partition.is_columnar_legacy() {
            Self::build_portion(problem, config)
        } else {
            Self::build_assignment(problem, config)
        }
    }

    /// The portion-offset formulation (Equations 1-15) for columnar devices.
    fn build_portion(problem: &FloorplanProblem, config: &MilpBuildConfig) -> FloorplanMilp {
        let partition: &ColumnarPartition =
            problem.partition.columnar().expect("portion model requires a columnar device");
        let cols = partition.cols as f64;
        let rows = partition.rows as f64;
        let max_w = partition.cols;
        let n_rows = partition.rows;
        let n_portions = partition.n_portions();
        let n_regions = problem.regions.len();
        let fc_meta = problem.fc_areas();
        let entities = n_regions + fc_meta.len();

        let mut m = Model::new(format!("floorplan-{}", partition.device_name), Sense::Minimize);

        let entity_name = |e: usize| -> String {
            if e < n_regions {
                problem.regions[e].name.clone()
            } else {
                let (_, region, _) = fc_meta[e - n_regions];
                format!("fc{}_{}", e - n_regions, problem.regions[region].name)
            }
        };

        // ------------------------------------------------------------------
        // Variables.
        // ------------------------------------------------------------------
        let mut vars = ModelVars {
            x: Vec::new(),
            w: Vec::new(),
            y: Vec::new(),
            h: Vec::new(),
            a: Vec::new(),
            cov: Vec::new(),
            k: Vec::new(),
            o: Vec::new(),
            l: Vec::new(),
            v: vec![None; fc_meta.len()],
            q: Vec::new(),
            pair_rel: Vec::new(),
            wl: Vec::new(),
        };
        for e in 0..entities {
            let name = entity_name(e);
            vars.x.push(m.int_var(format!("x[{name}]"), 1.0, cols));
            vars.w.push(m.int_var(format!("w[{name}]"), 1.0, cols));
            vars.y.push(m.cont_var(format!("y[{name}]"), 1.0, rows));
            vars.h.push(m.cont_var(format!("h[{name}]"), 1.0, rows));
            vars.a.push((1..=n_rows).map(|r| m.bin_var(format!("a[{name}][{r}]"))).collect());
            vars.cov.push((1..=max_w).map(|c| m.bin_var(format!("cov[{name}][{c}]"))).collect());
            vars.k.push(
                (0..n_portions)
                    .map(|p| m.cont_var(format!("k[{name}][{}]", p + 1), 0.0, 1.0))
                    .collect(),
            );
            vars.o.push(
                (0..n_portions)
                    .map(|p| m.cont_var(format!("o[{name}][{}]", p + 1), 0.0, 1.0))
                    .collect(),
            );
            let mut l_e = Vec::with_capacity(n_portions);
            for p in 0..n_portions {
                let wp = partition.portion(PortionId(p)).width() as f64;
                l_e.push(
                    (1..=n_rows)
                        .map(|r| m.cont_var(format!("l[{name}][{}][{r}]", p + 1), 0.0, wp))
                        .collect::<Vec<_>>(),
                );
            }
            vars.l.push(l_e);
        }
        // Violation binaries for metric-mode FC areas (Section V).
        for (c, &(_, region, mode)) in fc_meta.iter().enumerate() {
            if matches!(mode, RelocationMode::Metric { .. }) {
                let name = format!("v[fc{c}_{}]", problem.regions[region].name);
                vars.v[c] = Some(m.bin_var(name));
            }
        }

        // Soft-constraint helper: the `+ v_c * M` term for entities that are
        // metric-mode FC areas.
        let soft_term = |e: usize, big_m: f64| -> LinExpr {
            if e >= n_regions {
                if let Some(v) = vars.v[e - n_regions] {
                    return LinExpr::term(v, big_m);
                }
            }
            LinExpr::zero()
        };

        // ------------------------------------------------------------------
        // Geometry of every entity.
        // ------------------------------------------------------------------
        for e in 0..entities {
            let name = entity_name(e);
            // x + w <= maxW + 1 ; y + h <= |R| + 1.
            m.add_con(
                format!("xw_bound[{name}]"),
                LinExpr::from(vars.x[e]) + vars.w[e],
                ConOp::Le,
                cols + 1.0,
            );
            m.add_con(
                format!("yh_bound[{name}]"),
                LinExpr::from(vars.y[e]) + vars.h[e],
                ConOp::Le,
                rows + 1.0,
            );
            // Row window: sum_r a = h ; a_r = 1 <=> y <= r <= y + h - 1.
            m.add_con(
                format!("row_count[{name}]"),
                LinExpr::weighted_sum(vars.a[e].iter().map(|&v| (v, 1.0))) - vars.h[e],
                ConOp::Eq,
                0.0,
            );
            for r in 1..=n_rows {
                let a = vars.a[e][(r - 1) as usize];
                m.add_con(
                    format!("row_lo[{name}][{r}]"),
                    LinExpr::from(vars.y[e]) + LinExpr::term(a, rows),
                    ConOp::Le,
                    r as f64 + rows,
                );
                m.add_con(
                    format!("row_hi[{name}][{r}]"),
                    LinExpr::from(vars.y[e]) + vars.h[e] - LinExpr::term(a, rows),
                    ConOp::Ge,
                    r as f64 + 1.0 - rows,
                );
            }
            // Column window: sum_c cov = w ; cov_c = 1 <=> x <= c <= x + w - 1.
            m.add_con(
                format!("col_count[{name}]"),
                LinExpr::weighted_sum(vars.cov[e].iter().map(|&v| (v, 1.0))) - vars.w[e],
                ConOp::Eq,
                0.0,
            );
            for c in 1..=max_w {
                let cv = vars.cov[e][(c - 1) as usize];
                m.add_con(
                    format!("col_lo[{name}][{c}]"),
                    LinExpr::from(vars.x[e]) + LinExpr::term(cv, cols),
                    ConOp::Le,
                    c as f64 + cols,
                );
                m.add_con(
                    format!("col_hi[{name}][{c}]"),
                    LinExpr::from(vars.x[e]) + vars.w[e] - LinExpr::term(cv, cols),
                    ConOp::Ge,
                    c as f64 + 1.0 - cols,
                );
            }
            // Portion intersection indicator k and per-row intersection l.
            for p in 0..n_portions {
                let portion = partition.portion(PortionId(p));
                let wp = portion.width() as f64;
                let cov_in_p: Vec<VarId> =
                    (portion.x1..=portion.x2).map(|c| vars.cov[e][(c - 1) as usize]).collect();
                let ow_expr = LinExpr::weighted_sum(cov_in_p.iter().map(|&v| (v, 1.0)));
                // k >= cov_c for every column of the portion.
                for &cv in &cov_in_p {
                    m.add_con(
                        format!("k_lo[{name}][{}]", p + 1),
                        LinExpr::from(vars.k[e][p]) - cv,
                        ConOp::Ge,
                        0.0,
                    );
                }
                // k <= sum of cov over the portion.
                m.add_con(
                    format!("k_hi[{name}][{}]", p + 1),
                    LinExpr::from(vars.k[e][p]) - ow_expr.clone(),
                    ConOp::Le,
                    0.0,
                );
                // l[p][r] = (overlap width) * a_r, linearised exactly.
                for r in 1..=n_rows {
                    let l = vars.l[e][p][(r - 1) as usize];
                    let a = vars.a[e][(r - 1) as usize];
                    m.add_con(
                        format!("l_row[{name}][{}][{r}]", p + 1),
                        LinExpr::from(l) - LinExpr::term(a, wp),
                        ConOp::Le,
                        0.0,
                    );
                    m.add_con(
                        format!("l_ow_hi[{name}][{}][{r}]", p + 1),
                        LinExpr::from(l) - ow_expr.clone(),
                        ConOp::Le,
                        0.0,
                    );
                    m.add_con(
                        format!("l_ow_lo[{name}][{}][{r}]", p + 1),
                        LinExpr::from(l) - ow_expr.clone() - LinExpr::term(a, wp),
                        ConOp::Ge,
                        -wp,
                    );
                }
            }
            // Offset variables (Equations 4 and 5).
            m.add_con(
                format!("offset_sum[{name}]"),
                LinExpr::weighted_sum(vars.o[e].iter().map(|&v| (v, 1.0))),
                ConOp::Eq,
                1.0,
            );
            m.add_con(
                format!("offset_first[{name}]"),
                LinExpr::from(vars.o[e][0]) - vars.k[e][0],
                ConOp::Eq,
                0.0,
            );
            for p in 1..n_portions {
                m.add_con(
                    format!("offset_step[{name}][{}]", p + 1),
                    LinExpr::from(vars.o[e][p]) - vars.k[e][p] + vars.k[e][p - 1],
                    ConOp::Ge,
                    0.0,
                );
            }
            // Forbidden areas (Equations 1 and 2).
            vars.q.push(Vec::with_capacity(partition.forbidden.len()));
            for (ai, fa) in partition.forbidden.iter().enumerate() {
                let q = m.bin_var(format!("q[{name}][{}]", fa.name));
                vars.q[e].push(q);
                m.add_con(
                    format!("forbidden_left[{name}][{}]", fa.name),
                    LinExpr::from(vars.x[e]) + vars.w[e] - LinExpr::term(q, cols),
                    ConOp::Le,
                    fa.xa1() as f64,
                );
                for r in 1..=n_rows {
                    if !fa.lies_on_row(r) {
                        continue;
                    }
                    let a = vars.a[e][(r - 1) as usize];
                    m.add_con(
                        format!("forbidden_right[{name}][{}][{r}]", fa.name),
                        LinExpr::from(vars.x[e]) - LinExpr::term(q, cols) - LinExpr::term(a, cols),
                        ConOp::Ge,
                        fa.xa2() as f64 + 1.0 - 2.0 * cols,
                    );
                }
                let _ = ai;
            }
        }

        // ------------------------------------------------------------------
        // Resource coverage (reconfigurable regions only, Section IV-A).
        // ------------------------------------------------------------------
        for (e, spec) in problem.regions.iter().enumerate() {
            for &(ty, need) in spec.tile_req() {
                let mut expr = LinExpr::zero();
                for p in 0..n_portions {
                    if partition.portion(PortionId(p)).tile_type != ty {
                        continue;
                    }
                    for r in 0..n_rows as usize {
                        expr.add_term(vars.l[e][p][r], 1.0);
                    }
                }
                m.add_con(format!("coverage[{}][{ty}]", spec.name), expr, ConOp::Ge, need as f64);
            }
        }

        // ------------------------------------------------------------------
        // Pairwise non-overlap (soft for metric-mode FC areas, Section V).
        // ------------------------------------------------------------------
        let relation_of = |i: usize, j: usize| -> Option<Relation> {
            config.ho_relations.as_ref().and_then(|rels| {
                rels.iter().find_map(|r| {
                    if r.a == i && r.b == j {
                        Some(r.relation)
                    } else if r.a == j && r.b == i {
                        Some(match r.relation {
                            Relation::LeftOf => Relation::RightOf,
                            Relation::RightOf => Relation::LeftOf,
                            Relation::Above => Relation::Below,
                            Relation::Below => Relation::Above,
                        })
                    } else {
                        None
                    }
                })
            })
        };
        // Soft entities (metric-mode FC areas) may legally overlap when their
        // violation binary fires, so only *hard* pairs admit the pairwise
        // mutual-exclusion structure below.
        let is_soft = |e: usize| e >= n_regions && vars.v[e - n_regions].is_some();
        for i in 0..entities {
            for j in (i + 1)..entities {
                let ni = entity_name(i);
                let nj = entity_name(j);
                let fixed = relation_of(i, j);
                let mut left_ij = m.bin_var(format!("left[{ni}][{nj}]"));
                let mut left_ji = m.bin_var(format!("left[{nj}][{ni}]"));
                let mut below_ij = m.bin_var(format!("above[{ni}][{nj}]"));
                let mut below_ji = m.bin_var(format!("above[{nj}][{ni}]"));
                vars.pair_rel.push((i, j, [left_ij, left_ji, below_ij, below_ji]));
                if !is_soft(i) && !is_soft(j) {
                    // Structural hint for the MILP cut separator: widths and
                    // heights are >= 1, so "i left of j" and "j left of i"
                    // (resp. above) are mutually exclusive cliques. The LP
                    // relaxation routinely splits these 0.5/0.5; the clique
                    // cuts close that gap.
                    m.add_mutex_group(format!("left_mutex[{ni}][{nj}]"), vec![left_ij, left_ji]);
                    m.add_mutex_group(format!("above_mutex[{ni}][{nj}]"), vec![below_ij, below_ji]);
                }
                if let Some(rel) = fixed {
                    // HO: pin the binary corresponding to the seed relation.
                    let pin = |m: &mut Model, var: &mut VarId| m.set_bounds(*var, 1.0, 1.0);
                    match rel {
                        Relation::LeftOf => pin(&mut m, &mut left_ij),
                        Relation::RightOf => pin(&mut m, &mut left_ji),
                        Relation::Above => pin(&mut m, &mut below_ij),
                        Relation::Below => pin(&mut m, &mut below_ji),
                    }
                }
                let soft = soft_term(i, cols.max(rows)) + soft_term(j, cols.max(rows));
                m.add_con(
                    format!("no_overlap[{ni}][{nj}]"),
                    LinExpr::from(left_ij) + left_ji + below_ij + below_ji,
                    ConOp::Ge,
                    1.0,
                );
                m.add_con(
                    format!("left_sep[{ni}][{nj}]"),
                    LinExpr::from(vars.x[i]) + vars.w[i] - vars.x[j] + LinExpr::term(left_ij, cols)
                        - soft.clone(),
                    ConOp::Le,
                    cols,
                );
                m.add_con(
                    format!("left_sep[{nj}][{ni}]"),
                    LinExpr::from(vars.x[j]) + vars.w[j] - vars.x[i] + LinExpr::term(left_ji, cols)
                        - soft.clone(),
                    ConOp::Le,
                    cols,
                );
                m.add_con(
                    format!("above_sep[{ni}][{nj}]"),
                    LinExpr::from(vars.y[i]) + vars.h[i] - vars.y[j]
                        + LinExpr::term(below_ij, rows)
                        - soft.clone(),
                    ConOp::Le,
                    rows,
                );
                m.add_con(
                    format!("above_sep[{nj}][{ni}]"),
                    LinExpr::from(vars.y[j]) + vars.h[j] - vars.y[i]
                        + LinExpr::term(below_ji, rows)
                        - soft,
                    ConOp::Le,
                    rows,
                );
            }
        }

        // ------------------------------------------------------------------
        // Relocation constraints (Sections IV-C and V).
        // ------------------------------------------------------------------
        let big_m_tiles = cols * rows;
        for (c_idx, &(_, region, mode)) in fc_meta.iter().enumerate() {
            let ec = n_regions + c_idx; // entity index of the FC area
            let en = region; // entity index of the source region
            let name_c = entity_name(ec);
            let name_n = entity_name(en);
            let v_term = |scale: f64| -> LinExpr {
                match (mode, vars.v[c_idx]) {
                    (RelocationMode::Metric { .. }, Some(v)) => LinExpr::term(v, scale),
                    _ => LinExpr::zero(),
                }
            };
            // Equation 6: equal heights.
            m.add_con(
                format!("reloc_height[{name_c}]"),
                LinExpr::from(vars.h[ec]) - vars.h[en],
                ConOp::Eq,
                0.0,
            );
            // Equation 7: equal number of covered portions.
            m.add_con(
                format!("reloc_portions[{name_c}]"),
                LinExpr::weighted_sum(vars.k[ec].iter().map(|&v| (v, 1.0)))
                    - LinExpr::weighted_sum(vars.k[en].iter().map(|&v| (v, 1.0))),
                ConOp::Eq,
                0.0,
            );
            // Equations 9/11 and 10/12, enumerated over (pc, pn, i).
            for pc in 0..n_portions {
                for pn in 0..n_portions {
                    let i_lo = -(pc.min(pn) as i64);
                    let i_hi = (n_portions - 1 - pc.max(pn)) as i64;
                    for i in i_lo..=i_hi {
                        let pci = (pc as i64 + i) as usize;
                        let pni = (pn as i64 + i) as usize;
                        let tid_c = partition.tid(PortionId(pci));
                        let tid_n = partition.tid(PortionId(pni));
                        let gate = LinExpr::term(vars.o[ec][pc], 1.0)
                            + LinExpr::term(vars.o[en][pn], 1.0)
                            + LinExpr::term(vars.k[en][pni], 1.0);
                        if tid_c != tid_n {
                            // Tightened Equation 10 (Equation 12 in metric mode).
                            m.add_con(
                                format!("reloc_type[{name_c}][{}][{}][{i}]", pc + 1, pn + 1),
                                gate.clone() - v_term(1.0),
                                ConOp::Le,
                                2.0,
                            );
                        }
                        // Equation 9 (Equation 11 in metric mode): equal tiles
                        // in aligned portions when the gate is fully active.
                        let sum_l_c = LinExpr::weighted_sum(
                            (0..n_rows as usize).map(|r| (vars.l[ec][pci][r], 1.0)),
                        );
                        let sum_l_n = LinExpr::weighted_sum(
                            (0..n_rows as usize).map(|r| (vars.l[en][pni][r], 1.0)),
                        );
                        let diff = sum_l_c - sum_l_n;
                        // diff <= M (3 - gate + v)
                        m.add_con(
                            format!("reloc_tiles_ub[{name_c}][{}][{}][{i}]", pc + 1, pn + 1),
                            diff.clone() + gate.clone() * big_m_tiles - v_term(big_m_tiles),
                            ConOp::Le,
                            3.0 * big_m_tiles,
                        );
                        // diff >= -M (3 - gate + v)
                        m.add_con(
                            format!("reloc_tiles_lb[{name_c}][{}][{}][{i}]", pc + 1, pn + 1),
                            diff - gate * big_m_tiles + v_term(big_m_tiles),
                            ConOp::Ge,
                            -3.0 * big_m_tiles,
                        );
                    }
                }
            }
            let _ = name_n;
        }

        // ------------------------------------------------------------------
        // Objective (Equation 14).
        // ------------------------------------------------------------------
        let weights = &problem.weights;
        let mut objective = LinExpr::zero();

        // Wire-length cost.
        if weights.wirelength != 0.0 && !problem.connections.is_empty() {
            let scale = weights.wirelength / problem.wl_max();
            for (ci, conn) in problem.connections.iter().enumerate() {
                let dx = m.cont_var(format!("wl_dx[{ci}]"), 0.0, cols);
                let dy = m.cont_var(format!("wl_dy[{ci}]"), 0.0, rows);
                vars.wl.push((dx, dy));
                // Centre coordinates: x + (w - 1)/2 and y + (h - 1)/2.
                let cx_a = LinExpr::from(vars.x[conn.a]) + LinExpr::term(vars.w[conn.a], 0.5);
                let cx_b = LinExpr::from(vars.x[conn.b]) + LinExpr::term(vars.w[conn.b], 0.5);
                let cy_a = LinExpr::from(vars.y[conn.a]) + LinExpr::term(vars.h[conn.a], 0.5);
                let cy_b = LinExpr::from(vars.y[conn.b]) + LinExpr::term(vars.h[conn.b], 0.5);
                m.add_con(
                    format!("wl_dx_pos[{ci}]"),
                    LinExpr::from(dx) - cx_a.clone() + cx_b.clone(),
                    ConOp::Ge,
                    0.0,
                );
                m.add_con(
                    format!("wl_dx_neg[{ci}]"),
                    LinExpr::from(dx) + cx_a - cx_b,
                    ConOp::Ge,
                    0.0,
                );
                m.add_con(
                    format!("wl_dy_pos[{ci}]"),
                    LinExpr::from(dy) - cy_a.clone() + cy_b.clone(),
                    ConOp::Ge,
                    0.0,
                );
                m.add_con(
                    format!("wl_dy_neg[{ci}]"),
                    LinExpr::from(dy) + cy_a - cy_b,
                    ConOp::Ge,
                    0.0,
                );
                objective +=
                    LinExpr::term(dx, conn.weight * scale) + LinExpr::term(dy, conn.weight * scale);
            }
        }

        // Perimeter cost.
        if weights.perimeter != 0.0 {
            let scale = weights.perimeter / problem.p_max();
            for e in 0..n_regions {
                objective += LinExpr::term(vars.w[e], scale) + LinExpr::term(vars.h[e], scale);
            }
        }

        // Resource (wasted frames) cost.
        if weights.resources != 0.0 {
            let scale = weights.resources / problem.r_max();
            for e in 0..n_regions {
                for p in 0..n_portions {
                    let frames =
                        partition.frames_per_tile(partition.portion(PortionId(p)).tile_type) as f64;
                    for r in 0..n_rows as usize {
                        objective += LinExpr::term(vars.l[e][p][r], frames * scale);
                    }
                }
            }
            // Constant shift so the objective reports *wasted* frames rather
            // than covered frames; purely cosmetic for comparisons.
            objective += LinExpr::constant(-(problem.total_required_frames() as f64) * scale);
        }

        // Relocation cost (Equations 13 and 15).
        if weights.relocation != 0.0 {
            let scale = weights.relocation / problem.rl_max();
            for (c_idx, &(req_idx, _, mode)) in fc_meta.iter().enumerate() {
                if let (RelocationMode::Metric { weight }, Some(v)) = (mode, vars.v[c_idx]) {
                    objective += LinExpr::term(v, weight * scale);
                }
                let _ = req_idx;
            }
        }

        m.set_objective(objective);

        FloorplanMilp { milp: m, vars, n_regions, fc_meta, kind: ModelKind::Portion }
    }

    /// The candidate-assignment formulation for heterogeneous fabrics.
    ///
    /// One binary per (region, candidate) from the irredundant enumeration,
    /// an exactly-one constraint per region and pairwise mutual exclusion
    /// between overlapping candidates. Waste and half-perimeter are constant
    /// per candidate; wire length reuses the `dx`/`dy` auxiliaries over the
    /// linear centre expressions. Free-compatible areas are *not* variables
    /// of this model: they are reserved greedily at extraction time with the
    /// fabric-aware compatibility check, so the relocation term of Equation
    /// (14) is priced by the validator rather than the solver. For a region
    /// with a **constraint-mode** relocation request, candidates spanning a
    /// die boundary are pruned up front — a boundary-crossing source has no
    /// compatible target anywhere, so such an assignment can never satisfy
    /// the constraint. HO relations are ignored (the assignment space is
    /// already discrete and small).
    fn build_assignment(problem: &FloorplanProblem, _config: &MilpBuildConfig) -> FloorplanMilp {
        let partition = &problem.partition;
        let n_regions = problem.regions.len();
        let fc_meta = problem.fc_areas();
        let cols = partition.cols as f64;
        let rows = partition.rows as f64;

        let mut m = Model::new(format!("floorplan-{}", partition.device_name), Sense::Minimize);

        let must_not_cross: Vec<bool> = (0..n_regions)
            .map(|n| {
                fc_meta
                    .iter()
                    .any(|&(_, region, mode)| region == n && matches!(mode, RelocationMode::Constraint))
            })
            .collect();
        let cand_cfg = CandidateConfig::default();
        let candidates: Vec<Vec<Candidate>> = problem
            .regions
            .iter()
            .enumerate()
            .map(|(n, spec)| {
                let mut cands = enumerate_candidates(partition, spec, &cand_cfg);
                if must_not_cross[n] {
                    cands.retain(|c| !partition.rect_crosses_die_boundary(&c.rect));
                }
                cands
            })
            .collect();

        let mut assign: Vec<Vec<VarId>> = Vec::with_capacity(n_regions);
        for (n, spec) in problem.regions.iter().enumerate() {
            let row: Vec<VarId> = (0..candidates[n].len())
                .map(|k| m.bin_var(format!("asg[{}][{k}]", spec.name)))
                .collect();
            if row.is_empty() {
                // No candidate fits the region anywhere: force infeasibility
                // instead of silently dropping the region.
                let stub = m.bin_var(format!("infeasible[{}]", spec.name));
                m.add_con(
                    format!("no_candidate[{}]", spec.name),
                    LinExpr::from(stub),
                    ConOp::Ge,
                    2.0,
                );
            } else {
                m.add_con(
                    format!("assign_one[{}]", spec.name),
                    LinExpr::weighted_sum(row.iter().map(|&v| (v, 1.0))),
                    ConOp::Eq,
                    1.0,
                );
            }
            assign.push(row);
        }

        // Pairwise mutual exclusion between overlapping candidates.
        for i in 0..n_regions {
            for j in (i + 1)..n_regions {
                for (ki, ci) in candidates[i].iter().enumerate() {
                    for (kj, cj) in candidates[j].iter().enumerate() {
                        if ci.rect.overlaps(&cj.rect) {
                            m.add_con(
                                format!(
                                    "sep[{}][{ki}][{}][{kj}]",
                                    problem.regions[i].name, problem.regions[j].name
                                ),
                                LinExpr::from(assign[i][ki]) + assign[j][kj],
                                ConOp::Le,
                                1.0,
                            );
                        }
                    }
                }
            }
        }

        let mut vars = ModelVars {
            x: Vec::new(),
            w: Vec::new(),
            y: Vec::new(),
            h: Vec::new(),
            a: Vec::new(),
            cov: Vec::new(),
            k: Vec::new(),
            o: Vec::new(),
            l: Vec::new(),
            v: vec![None; fc_meta.len()],
            q: Vec::new(),
            pair_rel: Vec::new(),
            wl: Vec::new(),
        };

        let weights = &problem.weights;
        let mut objective = LinExpr::zero();
        let centre_x = |c: &Candidate| f64::from(c.rect.x) + f64::from(c.rect.w) * 0.5;
        let centre_y = |c: &Candidate| f64::from(c.rect.y) + f64::from(c.rect.h) * 0.5;

        // Wire-length cost over linear centre expressions.
        if weights.wirelength != 0.0 && !problem.connections.is_empty() {
            let scale = weights.wirelength / problem.wl_max();
            for (ci, conn) in problem.connections.iter().enumerate() {
                let dx = m.cont_var(format!("wl_dx[{ci}]"), 0.0, cols);
                let dy = m.cont_var(format!("wl_dy[{ci}]"), 0.0, rows);
                vars.wl.push((dx, dy));
                let centre_expr = |region: usize, f: &dyn Fn(&Candidate) -> f64| -> LinExpr {
                    LinExpr::weighted_sum(
                        candidates[region].iter().zip(&assign[region]).map(|(c, &v)| (v, f(c))),
                    )
                };
                let cx_a = centre_expr(conn.a, &centre_x);
                let cx_b = centre_expr(conn.b, &centre_x);
                let cy_a = centre_expr(conn.a, &centre_y);
                let cy_b = centre_expr(conn.b, &centre_y);
                m.add_con(
                    format!("wl_dx_pos[{ci}]"),
                    LinExpr::from(dx) - cx_a.clone() + cx_b.clone(),
                    ConOp::Ge,
                    0.0,
                );
                m.add_con(format!("wl_dx_neg[{ci}]"), LinExpr::from(dx) + cx_a - cx_b, ConOp::Ge, 0.0);
                m.add_con(
                    format!("wl_dy_pos[{ci}]"),
                    LinExpr::from(dy) - cy_a.clone() + cy_b.clone(),
                    ConOp::Ge,
                    0.0,
                );
                m.add_con(format!("wl_dy_neg[{ci}]"), LinExpr::from(dy) + cy_a - cy_b, ConOp::Ge, 0.0);
                objective +=
                    LinExpr::term(dx, conn.weight * scale) + LinExpr::term(dy, conn.weight * scale);
            }
        }

        // Perimeter and wasted-frames costs are constants per candidate.
        if weights.perimeter != 0.0 {
            let scale = weights.perimeter / problem.p_max();
            for n in 0..n_regions {
                for (k, c) in candidates[n].iter().enumerate() {
                    objective += LinExpr::term(
                        assign[n][k],
                        (f64::from(c.rect.w) + f64::from(c.rect.h)) * scale,
                    );
                }
            }
        }
        if weights.resources != 0.0 {
            let scale = weights.resources / problem.r_max();
            for n in 0..n_regions {
                for (k, c) in candidates[n].iter().enumerate() {
                    objective += LinExpr::term(assign[n][k], c.waste as f64 * scale);
                }
            }
        }

        m.set_objective(objective);

        let kind = ModelKind::Assignment(AssignmentModel {
            partition: partition.clone(),
            candidates,
            assign,
        });
        FloorplanMilp { milp: m, vars, n_regions, fc_meta, kind }
    }

    /// Statistics of the generated model.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            entities: self.n_entities(),
            n_vars: self.milp.n_vars(),
            n_int_vars: self.milp.n_integer_vars(),
            n_cons: self.milp.n_cons(),
            n_nonzeros: self.milp.n_nonzeros(),
        }
    }

    /// Number of entities (regions plus free-compatible areas).
    pub fn n_entities(&self) -> usize {
        self.n_regions + self.fc_meta.len()
    }

    /// Reads a floorplan out of a MILP solution.
    pub fn extract(&self, solution: &Solution) -> Floorplan {
        let am = match &self.kind {
            ModelKind::Portion => return self.extract_portion(solution),
            ModelKind::Assignment(am) => am,
        };
        let regions: Vec<Rect> = am
            .assign
            .iter()
            .zip(&am.candidates)
            .map(|(row, cands)| {
                row.iter()
                    .position(|&v| solution.bool_value(v))
                    .and_then(|k| cands.get(k))
                    .or_else(|| cands.first())
                    .map(|c| c.rect)
                    .unwrap_or_else(|| Rect::new(1, 1, 1, 1))
            })
            .collect();
        // Greedy reservation of the requested free-compatible areas with the
        // fabric-aware (die-boundary-rejecting) compatibility check. A
        // constraint-mode request the pass cannot satisfy is left empty and
        // surfaces as a validation failure downstream.
        let mut occupied = regions.clone();
        let mut fc_areas = Vec::with_capacity(self.fc_meta.len());
        for &(request, region, mode) in &self.fc_meta {
            let rect =
                enumerate_free_compatible(&am.partition, &regions[region], &occupied)
                    .into_iter()
                    .next();
            if let Some(r) = rect {
                occupied.push(r);
            }
            fc_areas.push(FcPlacement { request, region, mode, rect });
        }
        Floorplan { regions, fc_areas }
    }

    /// [`FloorplanMilp::extract`] for the portion model.
    fn extract_portion(&self, solution: &Solution) -> Floorplan {
        let rect_of = |e: usize| -> Rect {
            let x = solution.value(self.vars.x[e]).round().max(1.0) as u32;
            let y = solution.value(self.vars.y[e]).round().max(1.0) as u32;
            let w = solution.value(self.vars.w[e]).round().max(1.0) as u32;
            let h = solution.value(self.vars.h[e]).round().max(1.0) as u32;
            Rect::new(x, y, w, h)
        };
        let regions: Vec<Rect> = (0..self.n_regions).map(rect_of).collect();
        let mut fc_areas = Vec::with_capacity(self.fc_meta.len());
        for (c_idx, &(request, region, mode)) in self.fc_meta.iter().enumerate() {
            let violated = self
                .vars
                .v
                .get(c_idx)
                .and_then(|v| *v)
                .map(|v| solution.bool_value(v))
                .unwrap_or(false);
            let rect = if violated { None } else { Some(rect_of(self.n_regions + c_idx)) };
            fc_areas.push(FcPlacement { request, region, mode, rect });
        }
        Floorplan { regions, fc_areas }
    }

    /// Adds a no-good cut to `milp` banning this solution's exact candidate
    /// assignment (assignment models only).
    ///
    /// The assignment formulation keeps free-compatible areas out of the
    /// model, so an optimal assignment may pack the fabric too tightly for
    /// the greedy reservation pass to satisfy a constraint-mode request. The
    /// engine then bans the failing assignment and re-solves: each cut
    /// removes exactly one point of the assignment space, so the loop is
    /// sound and terminates. Returns `false` (and adds nothing) for portion
    /// models or when the solution selects no candidates.
    pub fn ban_assignment(&self, solution: &Solution, milp: &mut Model) -> bool {
        let ModelKind::Assignment(am) = &self.kind else { return false };
        let chosen: Vec<VarId> = am
            .assign
            .iter()
            .filter_map(|row| row.iter().copied().find(|&v| solution.bool_value(v)))
            .collect();
        if chosen.is_empty() {
            return false;
        }
        let k = chosen.len() as f64;
        let name = format!("fc_nogood[{}]", milp.n_cons());
        milp.add_con(
            name,
            LinExpr::weighted_sum(chosen.into_iter().map(|v| (v, 1.0))),
            ConOp::Le,
            k - 1.0,
        );
        true
    }

    /// Encodes a floorplan as a full variable assignment of this model, for
    /// use as a MILP warm start (the inverse of [`FloorplanMilp::extract`]).
    ///
    /// A metric-mode area the floorplan could not reserve is encoded on top
    /// of its source region with its violation binary set — exactly the
    /// relaxation the soft constraints permit. Returns `None` when the
    /// floorplan cannot be expressed in this model (wrong problem, or a
    /// missing constraint-mode area).
    pub fn encode(&self, problem: &FloorplanProblem, floorplan: &Floorplan) -> Option<Vec<f64>> {
        if floorplan.regions.len() != self.n_regions
            || floorplan.fc_areas.len() != self.fc_meta.len()
        {
            return None;
        }
        let partition = match &self.kind {
            ModelKind::Portion => {
                problem.partition.columnar().expect("portion model requires a columnar device")
            }
            ModelKind::Assignment(am) => {
                return self.encode_assignment(problem, am, floorplan);
            }
        };
        let vars = &self.vars;
        // Effective rectangle per entity: regions first, then FC areas.
        let mut rects: Vec<Rect> = floorplan.regions.clone();
        let mut violated = vec![false; self.fc_meta.len()];
        for (c_idx, fcp) in floorplan.fc_areas.iter().enumerate() {
            match (fcp.rect, self.fc_meta[c_idx].2) {
                (Some(rect), _) => rects.push(rect),
                (None, RelocationMode::Metric { .. }) => {
                    violated[c_idx] = true;
                    rects.push(floorplan.regions[self.fc_meta[c_idx].1]);
                }
                (None, RelocationMode::Constraint) => return None,
            }
        }

        // Every rectangle must lie on this device's grid, or the coverage
        // indexing below would reach past the per-row/column variable arrays.
        if rects
            .iter()
            .any(|r| r.x < 1 || r.y < 1 || r.x2() > partition.cols || r.y2() > partition.rows)
        {
            return None;
        }

        let mut values = vec![0.0; self.milp.n_vars()];
        let mut set = |id: VarId, value: f64| values[id.index()] = value;

        for (e, rect) in rects.iter().enumerate() {
            let (x1, x2) = (rect.x, rect.x2());
            let (y1, y2) = (rect.y, rect.y2());
            set(vars.x[e], f64::from(rect.x));
            set(vars.w[e], f64::from(rect.w));
            set(vars.y[e], f64::from(rect.y));
            set(vars.h[e], f64::from(rect.h));
            for r in y1..=y2 {
                set(vars.a[e][(r - 1) as usize], 1.0);
            }
            for c in x1..=x2 {
                set(vars.cov[e][(c - 1) as usize], 1.0);
            }
            let mut first_covered = true;
            for p in 0..partition.n_portions() {
                let portion = partition.portion(PortionId(p));
                let overlap = (x2.min(portion.x2) + 1).saturating_sub(x1.max(portion.x1)) as f64;
                if overlap <= 0.0 {
                    continue;
                }
                set(vars.k[e][p], 1.0);
                if first_covered {
                    set(vars.o[e][p], 1.0);
                    first_covered = false;
                }
                for r in y1..=y2 {
                    set(vars.l[e][p][(r - 1) as usize], overlap);
                }
            }
            for (ai, fa) in partition.forbidden.iter().enumerate() {
                // q = 0 encodes "entirely left of the area"; anything else
                // needs q = 1 (and a legal floorplan guarantees the entity is
                // then right of the area on every shared row).
                set(vars.q[e][ai], if x2 < fa.xa1() { 0.0 } else { 1.0 });
            }
        }

        for (c_idx, &is_violated) in violated.iter().enumerate() {
            if let (true, Some(v)) = (is_violated, vars.v[c_idx]) {
                set(v, 1.0);
            }
        }

        for &(i, j, [left_ij, left_ji, below_ij, below_ji]) in &vars.pair_rel {
            let (ri, rj) = (rects[i], rects[j]);
            let mut any = false;
            let mut rel = |id: VarId, holds: bool| {
                if holds {
                    set(id, 1.0);
                    any = true;
                }
            };
            rel(left_ij, ri.x + ri.w <= rj.x);
            rel(left_ji, rj.x + rj.w <= ri.x);
            rel(below_ij, ri.y + ri.h <= rj.y);
            rel(below_ji, rj.y + rj.h <= ri.y);
            if !any {
                // Overlapping pair: only legal for a violated metric-mode
                // area, whose separation constraints are soft.
                set(left_ij, 1.0);
            }
        }

        for (ci, conn) in problem.connections.iter().enumerate() {
            if ci >= vars.wl.len() {
                break;
            }
            let centre_x = |r: &Rect| f64::from(r.x) + f64::from(r.w) * 0.5;
            let centre_y = |r: &Rect| f64::from(r.y) + f64::from(r.h) * 0.5;
            let (dx, dy) = vars.wl[ci];
            set(dx, (centre_x(&rects[conn.a]) - centre_x(&rects[conn.b])).abs());
            set(dy, (centre_y(&rects[conn.a]) - centre_y(&rects[conn.b])).abs());
        }

        // Respect pinned bounds (HO relation binaries): the relations were
        // extracted from this very floorplan, so raising a variable to a
        // pinned lower bound keeps the assignment consistent.
        for (idx, def) in self.milp.vars().iter().enumerate() {
            values[idx] = values[idx].clamp(def.lb, def.ub);
        }
        Some(values)
    }

    /// [`FloorplanMilp::encode`] for the candidate-assignment model: every
    /// region rectangle must be one of its enumerated candidates, otherwise
    /// the floorplan is outside this model's search space and `None` is
    /// returned. Free-compatible areas carry no variables here (they are
    /// re-derived at extraction), so only a missing constraint-mode area is
    /// disqualifying.
    fn encode_assignment(
        &self,
        problem: &FloorplanProblem,
        am: &AssignmentModel,
        floorplan: &Floorplan,
    ) -> Option<Vec<f64>> {
        for (c_idx, fcp) in floorplan.fc_areas.iter().enumerate() {
            if fcp.rect.is_none() && matches!(self.fc_meta[c_idx].2, RelocationMode::Constraint) {
                return None;
            }
        }
        let mut values = vec![0.0; self.milp.n_vars()];
        for (n, rect) in floorplan.regions.iter().enumerate() {
            let k = am.candidates[n].iter().position(|c| c.rect == *rect)?;
            values[am.assign[n][k].index()] = 1.0;
        }
        for (ci, conn) in problem.connections.iter().enumerate() {
            if ci >= self.vars.wl.len() {
                break;
            }
            let centre_x = |r: &Rect| f64::from(r.x) + f64::from(r.w) * 0.5;
            let centre_y = |r: &Rect| f64::from(r.y) + f64::from(r.h) * 0.5;
            let (ra, rb) = (&floorplan.regions[conn.a], &floorplan.regions[conn.b]);
            let (dx, dy) = self.vars.wl[ci];
            values[dx.index()] = (centre_x(ra) - centre_x(rb)).abs();
            values[dy.index()] = (centre_y(ra) - centre_y(rb)).abs();
        }
        for (idx, def) in self.milp.vars().iter().enumerate() {
            values[idx] = values[idx].clamp(def.lb, def.ub);
        }
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorial::{solve_combinatorial, CombinatorialConfig};
    use crate::problem::{ObjectiveWeights, RegionSpec, RelocationRequest};
    use rfp_device::{columnar_partition, DeviceBuilder, ResourceVec};
    use rfp_milp::{Solver, SolverConfig};

    /// A tiny device: 5 columns (C C B C C), 3 rows.
    fn tiny_problem() -> (FloorplanProblem, rfp_device::TileTypeId, rfp_device::TileTypeId) {
        let mut b = DeviceBuilder::new("tiny");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        let bram = b.tile_type("BRAM", ResourceVec::new(0, 1, 0), 30);
        b.rows(3).columns(&[clb, clb, bram, clb, clb]);
        let p = columnar_partition(&b.build().unwrap()).unwrap();
        (FloorplanProblem::new(p), clb, bram)
    }

    fn milp_solver() -> Solver {
        Solver::new(SolverConfig {
            max_nodes: 200_000,
            time_limit: Some(std::time::Duration::from_secs(60)),
            ..SolverConfig::default()
        })
    }

    #[test]
    fn model_statistics_scale_with_entities() {
        let (mut p, clb, bram) = tiny_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 2)]));
        let one = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        p.add_region(RegionSpec::new("B", vec![(bram, 1)]));
        let two = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        assert_eq!(one.n_entities(), 1);
        assert_eq!(two.n_entities(), 2);
        assert!(two.stats().n_vars > one.stats().n_vars);
        assert!(two.stats().n_cons > one.stats().n_cons);
        assert!(two.stats().n_int_vars > one.stats().n_int_vars);
    }

    #[test]
    fn fc_areas_become_pseudo_regions() {
        let (mut p, clb, _) = tiny_problem();
        let a = p.add_region(RegionSpec::new("A", vec![(clb, 2)]));
        p.request_relocation(RelocationRequest::constraint(a, 2));
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        assert_eq!(model.n_entities(), 3, "FC ⊂ N: one entity per requested area");
    }

    #[test]
    fn o_model_matches_combinatorial_on_waste() {
        let (mut p, clb, bram) = tiny_problem();
        p.weights = ObjectiveWeights::area_only();
        p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
        p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        let comb = solve_combinatorial(&p, &CombinatorialConfig::default()).unwrap();
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        let sol = milp_solver().solve(&model.milp);
        assert!(sol.status.has_solution(), "status {:?}", sol.status);
        let fp = model.extract(&sol);
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
        let milp_waste = fp.metrics(&p).wasted_frames;
        assert_eq!(Some(milp_waste), comb.best_waste, "O and the combinatorial engine agree");
    }

    #[test]
    fn relocation_as_constraint_yields_a_compatible_area() {
        let (mut p, clb, bram) = tiny_problem();
        p.weights = ObjectiveWeights::area_only();
        let a = p.add_region(RegionSpec::new("A", vec![(clb, 1), (bram, 1)]));
        p.request_relocation(RelocationRequest::constraint(a, 1));
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        let sol = milp_solver().solve(&model.milp);
        assert!(sol.status.has_solution(), "status {:?}", sol.status);
        let fp = model.extract(&sol);
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
        assert_eq!(fp.fc_found(), 1);
    }

    #[test]
    fn relocation_as_metric_allows_violation_when_impossible() {
        let (mut p, clb, bram) = tiny_problem();
        p.weights = ObjectiveWeights::area_only().with_relocation(1.0);
        // The region occupies 2 of the 3 BRAM tiles of the single BRAM
        // column; a compatible copy would need 2 more -> impossible, so the
        // metric-mode area must be reported violated while the floorplan
        // stays feasible.
        let a = p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 2)]));
        p.request_relocation(RelocationRequest::metric(a, 1, 1.0));
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        let sol = milp_solver().solve(&model.milp);
        assert!(sol.status.has_solution(), "status {:?}", sol.status);
        let fp = model.extract(&sol);
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
        assert_eq!(fp.fc_found(), 0);
        assert!(fp.metrics(&p).relocation_cost > 0.0);
    }

    #[test]
    fn ho_relations_restrict_but_preserve_feasibility() {
        let (mut p, clb, bram) = tiny_problem();
        p.weights = ObjectiveWeights::area_only();
        p.add_region(RegionSpec::new("A", vec![(clb, 2), (bram, 1)]));
        p.add_region(RegionSpec::new("B", vec![(clb, 2)]));
        // Seed: A on the left block, B on the right block.
        let seed = crate::heuristic::greedy_floorplan(&p).unwrap();
        let relations = crate::sequence_pair::extract_relations(&seed.occupied());
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::heuristic_optimal(relations));
        let sol = milp_solver().solve(&model.milp);
        assert!(sol.status.has_solution(), "status {:?}", sol.status);
        let fp = model.extract(&sol);
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
        // HO explores a subset of the O space, so its waste can only be >= O's.
        let comb = solve_combinatorial(&p, &CombinatorialConfig::default()).unwrap();
        assert!(fp.metrics(&p).wasted_frames >= comb.best_waste.unwrap());
    }

    #[test]
    fn forbidden_areas_are_avoided_by_the_milp() {
        let mut b = DeviceBuilder::new("fb");
        let clb = b.tile_type("CLB", ResourceVec::new(1, 0, 0), 36);
        b.rows(3).repeat_column(clb, 4);
        // Column 2, rows 1-2 are off limits.
        b.forbidden("blk", rfp_device::Rect::new(2, 1, 1, 2));
        let part = columnar_partition(&b.build().unwrap()).unwrap();
        let mut p = FloorplanProblem::new(part);
        p.weights = ObjectiveWeights::area_only();
        p.add_region(RegionSpec::new("A", vec![(clb, 2)]));
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        let sol = milp_solver().solve(&model.milp);
        assert!(sol.status.has_solution());
        let fp = model.extract(&sol);
        assert!(fp.validate(&p).is_empty(), "{:?}", fp.validate(&p));
        assert!(!fp.regions[0].contains(2, 1) && !fp.regions[0].contains(2, 2));
    }

    #[test]
    fn lp_format_export_of_a_floorplanning_model_is_well_formed() {
        let (mut p, clb, _) = tiny_problem();
        p.add_region(RegionSpec::new("A", vec![(clb, 1)]));
        let model = FloorplanMilp::build(&p, &MilpBuildConfig::optimal());
        let text = rfp_milp::io::to_lp_format(&model.milp);
        assert!(text.contains("Minimize"));
        assert!(text.contains("x[A]"));
        assert!(text.contains("Binaries"));
    }
}
